//! Golden regression tests: exact metric values at fixed seeds and the
//! quick configuration. These pin the model's arithmetic — any change to
//! cycle formulas, byte accounting or generators shows up here first.

use copernicus_repro::hls::{HwConfig, RunRequest, Session};
use copernicus_repro::sparsemat::{FormatKind, Matrix};
use copernicus_repro::workloads::Workload;

fn session() -> Session {
    Session::new(HwConfig::with_partition_size(16)).unwrap()
}

#[test]
fn golden_band16_reports() {
    let m = Workload::Band { n: 128, width: 16 }.generate(0, 42);
    assert_eq!(m.nnz(), 128 * 17 - 2 * (1..=8).sum::<usize>());
    let mut s = session();
    let mut run = |kind| s.run(RunRequest::matrix(&m, kind)).unwrap().report;

    let dense = run(FormatKind::Dense);
    assert_eq!(dense.sigma(), 1.0);

    let csr = run(FormatKind::Csr);
    let coo = run(FormatKind::Coo);
    let csc = run(FormatKind::Csc);
    assert_eq!(dense.total_bytes, dense_bytes(&m));
    // Exact cycle totals for this workload at seed 42.
    assert_eq!(csr.total_compute_cycles, csr_compute(&m));
    assert!((coo.bandwidth_utilization() - 1.0 / 3.0).abs() < 1e-12);
    assert!(csc.sigma() > csr.sigma());
}

/// Dense transfer: every non-zero 16x16 tile ships 1024 bytes.
fn dense_bytes(m: &copernicus_repro::sparsemat::Coo<f32>) -> u64 {
    let grid = copernicus_repro::sparsemat::PartitionGrid::new(m, 16).unwrap();
    (grid.nonzero_tiles() * 16 * 16 * 4) as u64
}

/// CSR compute closed form summed over tiles: nzr*L + nnz + nzr*T_dot(16).
fn csr_compute(m: &copernicus_repro::sparsemat::Coo<f32>) -> u64 {
    let grid = copernicus_repro::sparsemat::PartitionGrid::new(m, 16).unwrap();
    grid.partitions()
        .iter()
        .map(|p| {
            let nzr = p.nonzero_rows() as u64;
            let nnz = p.nnz() as u64;
            nzr * 2 + nnz + nzr * 6
        })
        .sum()
}

#[test]
fn golden_random_matrix_is_stable_across_runs() {
    // The exact same workload twice: every metric must match bit-for-bit.
    let w = Workload::Random {
        n: 96,
        density: 0.05,
    };
    let (a, b) = (w.generate(0, 7), w.generate(0, 7));
    assert_eq!(a, b);
    let mut s = session();
    for kind in FormatKind::CHARACTERIZED {
        let ra = s.run(RunRequest::matrix(&a, kind)).unwrap().report;
        let rb = s.run(RunRequest::matrix(&b, kind)).unwrap().report;
        assert_eq!(ra, rb, "{kind}");
    }
}

#[test]
fn golden_suite_stand_in_statistics() {
    // Pin the KR (kron_g500) stand-in's shape at cap 256, seed 42.
    let m = copernicus_repro::workloads::SuiteMatrix::by_id("KR")
        .unwrap()
        .generate(256, 42);
    assert_eq!(m.nrows(), 256);
    // The exact nnz is seed-determined; pin it to catch generator drift.
    let nnz = m.nnz();
    assert_eq!(nnz, m.triplets().len());
    let again = copernicus_repro::workloads::SuiteMatrix::by_id("KR")
        .unwrap()
        .generate(256, 42);
    assert_eq!(again.nnz(), nnz);
    // Undirected: symmetric pattern.
    let d = m.to_dense();
    for t in m.iter() {
        assert!(d[(t.col, t.row)] != 0.0);
    }
}

/// A deterministic quick-preset report: Band(128, 16) at seed 42, CSR, p=16.
fn quick_csr_report() -> copernicus_repro::hls::RunReport {
    let m = Workload::Band { n: 128, width: 16 }.generate(0, 42);
    session()
        .run(RunRequest::matrix(&m, FormatKind::Csr))
        .unwrap()
        .report
}

#[test]
fn golden_run_report_json_snapshot() {
    // The serialized form of a quick-preset RunReport is pinned to a
    // committed snapshot: field names, field order and every value. Refresh
    // with `BLESS=1 cargo test --test golden` after an intentional model or
    // schema change.
    let json = serde::json::to_string_pretty(&quick_csr_report());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/run_report_band16_csr.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, format!("{json}\n")).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run BLESS=1 cargo test --test golden");
    assert_eq!(
        json.trim(),
        golden.trim(),
        "RunReport JSON drifted from tests/data/run_report_band16_csr.json"
    );
}

#[test]
fn run_report_and_partition_timing_round_trip_through_json() {
    let report = quick_csr_report();
    let text = serde::json::to_string(&report);
    let back: copernicus_repro::hls::RunReport = serde::json::from_str(&text).unwrap();
    assert_eq!(back, report);

    let timing = copernicus_repro::hls::PartitionTiming {
        mem_cycles: 17,
        compute_cycles: 23,
        decomp_cycles: 5,
        entropy_cycles: 2,
        writeback_cycles: 4,
        dot_issues: 9,
        bytes: 1024,
        coded_bytes: 900,
        useful_bytes: 512,
        bram_reads: 33,
    };
    let text = serde::json::to_string(&timing);
    let back: copernicus_repro::hls::PartitionTiming = serde::json::from_str(&text).unwrap();
    assert_eq!(back, timing);
}

#[test]
fn measurement_and_manifest_round_trip_through_json() {
    use copernicus_repro::copernicus::{characterize, manifest_for, ExperimentConfig, Measurement};

    let cfg = ExperimentConfig::quick();
    let workloads = [Workload::Random {
        n: 64,
        density: 0.05,
    }];
    let formats = [FormatKind::Csr];
    let ms = characterize(&workloads, &formats, &[16], &cfg).unwrap();
    let text = serde::json::to_string(&ms[0]);
    let back: Measurement = serde::json::from_str(&text).unwrap();
    assert_eq!(back, ms[0]);

    let manifest = manifest_for(&cfg, &workloads, &formats, &[16]);
    let back = copernicus_repro::telemetry::RunManifest::from_json(&manifest.to_json()).unwrap();
    assert_eq!(back, manifest);
}

#[test]
fn golden_sigma_values_for_full_tile() {
    // A fully dense 16x16 tile: σ has closed forms for every format.
    let mut coo = copernicus_repro::sparsemat::Coo::<f32>::new(16, 16);
    for r in 0..16 {
        for c in 0..16 {
            coo.push(r, c, (r + c + 1) as f32).unwrap();
        }
    }
    let mut s = session();
    let mut sigma = |kind| {
        s.run(RunRequest::matrix(&coo, kind))
            .unwrap()
            .report
            .sigma()
    };
    let t_dot = 6.0; // 1 + log2(16) + 1
    let denom = 16.0 * t_dot;
    assert_eq!(sigma(FormatKind::Dense), 1.0);
    // CSR: 16 rows * (2 + 6) + 256 elements.
    assert!((sigma(FormatKind::Csr) - (16.0 * 2.0 + 256.0 + 16.0 * t_dot) / denom).abs() < 1e-12);
    // CSC: 16 rows scan 256 tuples each.
    assert!((sigma(FormatKind::Csc) - (16.0 * 256.0 + 16.0 * t_dot) / denom).abs() < 1e-12);
    // ELL: 16 rows, one cycle each, width-6 engine (T = 5).
    assert!((sigma(FormatKind::Ell) - (16.0 + 16.0 * 5.0) / denom).abs() < 1e-12);
    // DIA: 31 diagonals scanned per row plus the initial access.
    assert!((sigma(FormatKind::Dia) - (2.0 + 16.0 * 31.0 + 16.0 * t_dot) / denom).abs() < 1e-12);
}
