//! MatrixMarket interop: matrices survive a disk round trip and feed the
//! characterization identically to their in-memory originals.

use copernicus_repro::hls::{HwConfig, RunRequest, Session};
use copernicus_repro::sparsemat::{FormatKind, Matrix};
use copernicus_repro::workloads::{mtx, seeded_rng, Workload, SUITE};
use std::io::Cursor;

#[test]
fn every_suite_stand_in_round_trips_through_mtx() {
    for suite in SUITE.iter().take(8) {
        let m = suite.generate(128, 5);
        let mut buf = Vec::new();
        mtx::write_mtx(&mut buf, &m).unwrap();
        let back = mtx::read_mtx(Cursor::new(&buf)).unwrap();
        assert!(
            m.to_dense().structurally_eq(&back),
            "{} changed across the mtx round trip",
            suite.id
        );
    }
}

#[test]
fn characterization_is_identical_for_loaded_matrices() {
    let m = Workload::Band { n: 96, width: 16 }.generate(0, 7);
    let mut buf = Vec::new();
    mtx::write_mtx(&mut buf, &m).unwrap();
    let loaded = mtx::read_mtx(Cursor::new(&buf)).unwrap();

    let mut session = Session::new(HwConfig::with_partition_size(16)).unwrap();
    for kind in FormatKind::CHARACTERIZED {
        let a = session.run(RunRequest::matrix(&m, kind)).unwrap().report;
        let b = session
            .run(RunRequest::matrix(&loaded, kind))
            .unwrap()
            .report;
        assert_eq!(a, b, "{kind} report changed after mtx round trip");
    }
}

fn fixture(name: &str) -> std::io::BufReader<std::fs::File> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    std::io::BufReader::new(std::fs::File::open(&path).unwrap())
}

#[test]
fn truncated_fixture_fails_with_count_mismatch() {
    let e = mtx::read_mtx(fixture("invalid_truncated_nnz.mtx")).unwrap_err();
    match e {
        mtx::MtxError::CountMismatch { declared, found } => {
            assert_eq!(declared, 4);
            assert_eq!(found, 2);
        }
        other => panic!("expected CountMismatch, got {other:?}"),
    }
}

#[test]
fn symmetric_upper_triangle_fixture_fails_with_bad_line() {
    let e = mtx::read_mtx(fixture("invalid_symmetric_upper.mtx")).unwrap_err();
    match e {
        mtx::MtxError::BadLine { line, message } => {
            assert_eq!(line, 4);
            assert!(message.contains("above the diagonal"), "{message}");
        }
        other => panic!("expected BadLine, got {other:?}"),
    }
}

#[test]
fn skew_symmetric_diagonal_fixture_fails_with_bad_line() {
    let e = mtx::read_mtx(fixture("invalid_skew_diagonal.mtx")).unwrap_err();
    match e {
        mtx::MtxError::BadLine { line, message } => {
            assert_eq!(line, 5);
            assert!(message.contains("diagonal"), "{message}");
        }
        other => panic!("expected BadLine, got {other:?}"),
    }
}

#[test]
fn mtx_files_written_to_disk_are_readable() {
    let dir = std::env::temp_dir().join("copernicus_mtx_interop");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("band.mtx");

    let m = copernicus_repro::workloads::band::band(32, 4, &mut seeded_rng(1));
    let mut file = std::fs::File::create(&path).unwrap();
    mtx::write_mtx(&mut file, &m).unwrap();
    drop(file);

    let back = mtx::read_mtx(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    assert_eq!(back.nnz(), m.nnz());
    assert!(m.to_dense().structurally_eq(&back));
    std::fs::remove_dir_all(&dir).ok();
}
