//! Cross-crate integration: workload generation → partitioning → encoding →
//! decompression → metrics → figure drivers, end to end.

use copernicus_repro::copernicus::{characterize, ExperimentConfig};
use copernicus_repro::hls::{HwConfig, RunRequest, Session};
use copernicus_repro::sparsemat::{FormatKind, Matrix, PartitionGrid};
use copernicus_repro::workloads::Workload;

fn small_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.suite_max_dim = 192;
    cfg.sweep_dim = 96;
    cfg
}

#[test]
fn full_campaign_is_deterministic() {
    let cfg = small_cfg();
    let workloads = [
        Workload::Random {
            n: 96,
            density: 0.05,
        },
        Workload::Band { n: 96, width: 16 },
    ];
    let a = characterize(&workloads, &FormatKind::CHARACTERIZED, &[8, 16], &cfg).unwrap();
    let b = characterize(&workloads, &FormatKind::CHARACTERIZED, &[8, 16], &cfg).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.len(), 2 * 8 * 2);
}

#[test]
fn every_figure_driver_produces_rows_on_one_config() {
    use copernicus_repro::copernicus::experiments as ex;
    let cfg = small_cfg();
    assert_eq!(ex::fig03::run(&cfg).unwrap().len(), 60);
    assert_eq!(ex::fig04::run(&cfg).unwrap().len(), 160);
    assert_eq!(ex::fig05::run(&cfg).unwrap().len(), 64);
    assert_eq!(ex::fig06::run(&cfg).unwrap().len(), 48);
    assert_eq!(ex::fig07::run(&cfg).unwrap().len(), 72);
    assert!(!ex::fig08::run(&cfg).unwrap().is_empty());
    assert_eq!(ex::fig09::run(&cfg).unwrap().len(), 192);
    assert_eq!(ex::fig10::run(&cfg).unwrap().len(), 64);
    assert_eq!(ex::fig11::run(&cfg).unwrap().len(), 48);
    assert_eq!(ex::fig12::run(&cfg).unwrap().len(), 72);
    assert_eq!(ex::fig13::run(&[8, 16, 32]).len(), 24);
    assert_eq!(ex::fig14::run(&cfg).unwrap().len(), 24);
    assert_eq!(ex::table1::run().len(), 20);
    assert_eq!(ex::table2::run(&[8, 16, 32]).len(), 24);
}

#[test]
fn suite_stand_ins_flow_through_the_whole_platform() {
    let mut session = Session::new(HwConfig::with_partition_size(16)).unwrap();
    for suite in copernicus_repro::workloads::SUITE.iter().take(6) {
        let m = suite.generate(256, 1);
        let x: Vec<f32> = (0..m.ncols()).map(|i| (i % 3) as f32).collect();
        let expect = m.spmv(&x).unwrap();
        for kind in [FormatKind::Csr, FormatKind::Coo, FormatKind::Ell] {
            let outcome = session
                .run(RunRequest::matrix(&m, kind).consume_spmv(&x))
                .unwrap();
            assert_eq!(outcome.y.unwrap(), expect, "{} via {kind}", suite.id);
            assert!(outcome.report.total_cycles > 0);
        }
    }
}

#[test]
fn partition_grid_is_shared_consistently_across_formats() {
    // Running from a pre-built grid must agree with running from the matrix.
    let m = Workload::Band { n: 128, width: 4 }.generate(0, 3);
    let mut session = Session::new(HwConfig::with_partition_size(16)).unwrap();
    let grid = PartitionGrid::new(&m, 16).unwrap();
    for kind in FormatKind::CHARACTERIZED {
        let from_grid = session.run(RunRequest::grid(&grid, kind)).unwrap().report;
        let from_matrix = session.run(RunRequest::matrix(&m, kind)).unwrap().report;
        assert_eq!(from_grid, from_matrix, "{kind}");
    }
}

#[test]
fn umbrella_crate_re_exports_work() {
    // The root crate exposes all four member crates.
    let coo = copernicus_repro::sparsemat::Coo::<f32>::new(4, 4);
    assert_eq!(coo.nnz(), 0);
    assert_eq!(copernicus_repro::workloads::SUITE.len(), 20);
    let cfg = copernicus_repro::hls::HwConfig::default();
    assert_eq!(cfg.partition_size, 16);
    let _ = copernicus_repro::copernicus::ExperimentConfig::quick();
}
