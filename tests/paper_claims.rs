//! Integration-level assertions of the paper's headline claims (§6, §8),
//! checked on the quick-preset campaign.

use copernicus_repro::copernicus::experiments::fig07::all_class_workloads;
use copernicus_repro::copernicus::{characterize, ExperimentConfig, Measurement};
use copernicus_repro::sparsemat::FormatKind;
use copernicus_repro::workloads::WorkloadClass;
use std::sync::OnceLock;

fn campaign() -> &'static [Measurement] {
    static CAMPAIGN: OnceLock<Vec<Measurement>> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        let cfg = ExperimentConfig::quick();
        characterize(
            &all_class_workloads(&cfg),
            &FormatKind::CHARACTERIZED,
            &[8, 16, 32],
            &cfg,
        )
        .expect("campaign runs")
    })
}

fn mean<F: Fn(&&Measurement) -> bool>(filter: F, metric: fn(&Measurement) -> f64) -> f64 {
    let v: Vec<f64> = campaign().iter().filter(filter).map(metric).collect();
    assert!(!v.is_empty());
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn claim_memory_bandwidth_is_not_always_the_bottleneck() {
    // §8 insight 1: "Unlike a common belief, the memory bandwidth is not
    // always the bottleneck" — compute-bound configurations (balance < 1)
    // must be common among the sparse formats.
    let compute_bound = campaign()
        .iter()
        .filter(|m| m.format != FormatKind::Dense && m.balance_ratio() < 1.0)
        .count();
    let total = campaign()
        .iter()
        .filter(|m| m.format != FormatKind::Dense)
        .count();
    assert!(
        compute_bound * 2 > total,
        "only {compute_bound}/{total} sparse configurations are compute-bound"
    );
}

#[test]
fn claim_csr_needs_less_memory_bandwidth_than_dense() {
    // §8 insight 1 (continued): "when using a format such as CSR to
    // efficiently use storage, a lower-bandwidth low-cost memory is
    // sufficient."
    let csr = mean(|m| m.format == FormatKind::Csr, |m| m.mem_cycles() as f64);
    let dense = mean(|m| m.format == FormatKind::Dense, |m| m.mem_cycles() as f64);
    assert!(csr < dense, "CSR mem {csr} >= dense mem {dense}");
}

#[test]
fn claim_generic_coo_beats_specialized_dia_on_suitesparse() {
    // §8 insight 2: "a nonspecialized format such as COO performs faster
    // and better utilizes the memory bandwidth compared to a specialized
    // format such as DIA" on scientific/graph workloads.
    let coo_time = mean(
        |m| m.class == WorkloadClass::SuiteSparse && m.format == FormatKind::Coo,
        |m| m.total_seconds(),
    );
    let dia_time = mean(
        |m| m.class == WorkloadClass::SuiteSparse && m.format == FormatKind::Dia,
        |m| m.total_seconds(),
    );
    assert!(coo_time < dia_time, "COO {coo_time} vs DIA {dia_time}");

    let coo_util = mean(
        |m| m.class == WorkloadClass::SuiteSparse && m.format == FormatKind::Coo,
        Measurement::bandwidth_utilization,
    );
    let dia_util = mean(
        |m| m.class == WorkloadClass::SuiteSparse && m.format == FormatKind::Dia,
        Measurement::bandwidth_utilization,
    );
    assert!(coo_util > dia_util, "COO {coo_util} vs DIA {dia_util}");
}

#[test]
fn claim_dia_near_perfect_utilization_on_diagonals_improving_with_p() {
    // §8 insight 3: on structured band matrices DIA "near-perfectly
    // utilizes the memory bandwidth and does it better as the partition
    // size increases" — sharpest on the pure diagonal workload.
    let diag_util = |p: usize| {
        campaign()
            .iter()
            .find(|m| {
                m.class == WorkloadClass::Band
                    && m.workload == "w=1"
                    && m.format == FormatKind::Dia
                    && m.partition_size == p
            })
            .expect("diagonal workload present")
            .bandwidth_utilization()
    };
    assert!(diag_util(32) > diag_util(8));
    assert!(
        diag_util(32) > 0.9,
        "DIA diagonal utilization {}",
        diag_util(32)
    );
}

#[test]
fn claim_csc_is_the_computation_worst_case() {
    // §6.1: the format/hardware orientation mismatch makes CSC the worst σ
    // in every class.
    for class in [
        WorkloadClass::SuiteSparse,
        WorkloadClass::Random,
        WorkloadClass::Band,
    ] {
        let csc = mean(
            |m| m.class == class && m.format == FormatKind::Csc,
            Measurement::sigma,
        );
        for format in FormatKind::CHARACTERIZED {
            let other = mean(
                |m| m.class == class && m.format == format,
                Measurement::sigma,
            );
            assert!(csc >= other, "{class}: CSC {csc} < {format} {other}");
        }
    }
}

#[test]
fn claim_sparse_formats_always_transfer_less_than_dense() {
    // §6.2: "the latency to transmit data and metadata for all sparse
    // formats is much lower than that for the dense format" — on the
    // extremely sparse SuiteSparse class.
    let dense = mean(
        |m| m.class == WorkloadClass::SuiteSparse && m.format == FormatKind::Dense,
        |m| m.mem_cycles() as f64,
    );
    for format in [
        FormatKind::Csr,
        FormatKind::Csc,
        FormatKind::Coo,
        FormatKind::Lil,
        FormatKind::Ell,
        FormatKind::Dia,
    ] {
        let sparse = mean(
            |m| m.class == WorkloadClass::SuiteSparse && m.format == format,
            |m| m.mem_cycles() as f64,
        );
        assert!(sparse < dense, "{format}: {sparse} >= {dense}");
    }
}

#[test]
fn claim_coo_offers_reasonable_balance_across_densities() {
    // §6.2: "COO seems to offer a reasonable balance for various densities
    // as well as the varieties of band matrices."
    let coo = mean(
        |m| m.format == FormatKind::Coo && m.class != WorkloadClass::SuiteSparse,
        |m| m.balance_ratio().max(1e-9).ln().abs(),
    );
    // COO's log-distance from perfect balance beats the sparse formats the
    // paper finds skewed (CSC deeply compute-bound, ELL and DIA drifting
    // with structure). Dense is excluded: §6.2 notes dense itself sits
    // close to balance because zeros inflate both sides.
    for format in [FormatKind::Csc, FormatKind::Ell, FormatKind::Dia] {
        let other = mean(
            |m| m.format == format && m.class != WorkloadClass::SuiteSparse,
            |m| m.balance_ratio().max(1e-9).ln().abs(),
        );
        assert!(coo < other, "COO imbalance {coo} vs {format} {other}");
    }
}
