//! Derive macros for the offline `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! two shapes this workspace uses:
//!
//! * structs with named fields, with zero or more plain type parameters
//!   (`struct Coo<T> { .. }`) — every parameter is bounded by the derived
//!   trait, exactly like real serde's default bound inference;
//! * enums whose variants are all units (`enum FormatKind { Dense, .. }`),
//!   serialized as their variant-name string.
//!
//! `syn`/`quote` are unavailable offline, so parsing walks the raw
//! `proc_macro::TokenStream` and code generation formats plain strings.
//! Unsupported shapes (tuple structs, data-carrying enums) fail the build
//! with a clear `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Unit variants, in declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    /// Plain type-parameter names (`T`), lifetimes excluded.
    generics: Vec<String>,
    shape: Shape,
}

fn err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Err(msg) => err(&msg),
        Ok(item) => {
            let (impl_generics, ty_generics) = item.generics_for("::serde::Serialize");
            let body = match &item.shape {
                Shape::Struct(fields) => {
                    let pushes: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "__m.push((::std::string::String::from({f:?}), \
                                 ::serde::Serialize::serialize(&self.{f})));\n"
                            )
                        })
                        .collect();
                    format!(
                        "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                         ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(__m)"
                    )
                }
                Shape::Enum(variants) => {
                    let arms: String = variants
                        .iter()
                        .map(|v| format!("{}::{v} => {v:?},\n", item.name))
                        .collect();
                    format!(
                        "::serde::Value::Str(::std::string::String::from(match self {{\n{arms}}}))"
                    )
                }
            };
            format!(
                "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
                name = item.name
            )
            .parse()
            .expect("generated Serialize impl parses")
        }
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Err(msg) => err(&msg),
        Ok(item) => {
            let (impl_generics, ty_generics) = item.generics_for("::serde::Deserialize");
            let body = match &item.shape {
                Shape::Struct(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(__v, {f:?})?,\n"))
                        .collect();
                    format!(
                        "::core::result::Result::Ok({name} {{\n{inits}}})",
                        name = item.name
                    )
                }
                Shape::Enum(variants) => {
                    let arms: String = variants
                        .iter()
                        .map(|v| {
                            format!(
                                "::core::option::Option::Some({v:?}) => \
                                 ::core::result::Result::Ok({}::{v}),\n",
                                item.name
                            )
                        })
                        .collect();
                    format!(
                        "match __v.as_str() {{\n{arms}__other => \
                         ::core::result::Result::Err(::serde::Error::custom(::std::format!(\
                         \"unknown {name} variant {{:?}}\", __other))),\n}}",
                        name = item.name
                    )
                }
            };
            format!(
                "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
                 fn deserialize(__v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n",
                name = item.name
            )
            .parse()
            .expect("generated Deserialize impl parses")
        }
    }
}

impl Item {
    /// `(impl generics with bounds, bare type generics)` for the impl header.
    fn generics_for(&self, bound: &str) -> (String, String) {
        if self.generics.is_empty() {
            (String::new(), String::new())
        } else {
            let bounded: Vec<String> = self
                .generics
                .iter()
                .map(|g| format!("{g}: {bound}"))
                .collect();
            (
                format!("<{}>", bounded.join(", ")),
                format!("<{}>", self.generics.join(", ")),
            )
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            i += 1;
            tokens[i - 1].to_string()
        }
        other => return Err(format!("derive expects a struct or enum, found {other:?}")),
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected type name, found {other:?}")),
    };
    let generics = parse_generics(&tokens, &mut i)?;
    // `where` clauses never occur on the workspace's derived types.
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "derive supports only brace-bodied {keyword}s (named fields / unit variants), \
                 found {other:?}"
            ))
        }
    };

    let shape = if keyword == "struct" {
        Shape::Struct(parse_named_fields(body)?)
    } else {
        Shape::Enum(parse_unit_variants(body)?)
    };
    Ok(Item {
        name,
        generics,
        shape,
    })
}

/// Skips leading `#[..]` attributes (incl. doc comments) and a `pub` /
/// `pub(..)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[..]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // '(crate)' etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `<..>` after the type name, returning the plain type-parameter
/// names. Lifetimes, const parameters and defaulted/bounded parameters do
/// not occur on the workspace's derived types; bounds are tolerated and
/// skipped.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Ok(Vec::new()),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut at_param_start = true;
    while depth > 0 {
        match tokens.get(*i) {
            None => return Err("unbalanced generics".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                // Lifetime: consume the following ident, not a type param.
                *i += 1;
                at_param_start = false;
            }
            Some(TokenTree::Ident(id)) => {
                if at_param_start {
                    params.push(id.to_string());
                }
                at_param_start = false;
            }
            Some(_) => at_param_start = false,
        }
        *i += 1;
    }
    Ok(params)
}

/// Extracts field names from a named-field struct body, skipping each
/// field's type by tracking `<`/`>` depth so commas inside generic types
/// don't split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected a named field, found {other:?}")),
        }
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field name, found {other:?}")),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0usize;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Extracts variant names from an enum body, requiring every variant to be
/// a unit (no payload, no discriminant surprises beyond `= expr`).
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected a variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(name);
                i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next top-level comma.
                while let Some(tok) = tokens.get(i) {
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                variants.push(name);
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "the serde stand-in derives only unit enum variants; \
                     variant {name} carries data — implement Serialize/Deserialize by hand"
                ))
            }
            other => return Err(format!("unexpected token after variant {name}: {other:?}")),
        }
    }
    Ok(variants)
}
