//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset the workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::bench_with_input`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark body is timed over a
//! fixed number of batches and the per-iteration mean and minimum are
//! printed. Under `cargo test` (bench targets default to `test = true`)
//! every body runs exactly once as a smoke test, mirroring real criterion's
//! `--test` behavior, so the benches stay compile- and run-verified without
//! slowing the test suite down.

use std::time::{Duration, Instant};

/// Opaque value barrier: keeps the optimizer from deleting a benchmark
/// body's work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A label with an explicit function name and parameter rendering.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// A label carrying only the parameter (the group provides the name).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Drives one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    smoke: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `body`, collecting per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let batches = if self.smoke { 1 } else { 15 };
        for _ in 0..batches {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    smoke: bool,
}

impl Criterion {
    /// Builds a harness, detecting smoke-test mode (`cargo test` executes
    /// bench targets with no relevant arguments; real criterion uses
    /// `--test`, which is honored too).
    pub fn new_from_env() -> Self {
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CARGO_BENCH").is_none()
                && !std::env::args().any(|a| a == "--bench");
        Criterion { smoke }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, |b| f(b))
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input))
    }

    /// Opens a named benchmark group; member benchmarks print as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            smoke: self.smoke,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.smoke {
            println!("bench {name}: ok (smoke)");
        } else if bencher.samples.is_empty() {
            println!("bench {name}: no samples");
        } else {
            let total: Duration = bencher.samples.iter().sum();
            let mean = total / bencher.samples.len() as u32;
            let min = bencher.samples.iter().min().expect("non-empty");
            println!(
                "bench {name}: mean {mean:?} / min {min:?} over {} iterations",
                bencher.samples.len()
            );
        }
        self
    }
}

/// A named collection of related benchmarks sharing a `group/` prefix.
///
/// The tuning knobs (`warm_up_time`, `measurement_time`, `sample_size`)
/// are accepted for source compatibility with real criterion but ignored:
/// this stand-in's sampling is fixed (see the crate docs).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (fixed sampling).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored (fixed sampling).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored (fixed sampling).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark under the group's prefix.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let id = format!("{}/{name}", self.name);
        self.criterion.run_one(&id, |b| f(b));
        self
    }

    /// Runs one benchmark over a borrowed input under the group's prefix.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{id}", self.name);
        self.criterion.run_one(&id, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group: a function that runs each listed benchmark
/// function against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new_from_env();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        c.bench_with_input(BenchmarkId::from_parameter(16), &16usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion { smoke: true };
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("spmv", 42).to_string(), "spmv/42");
        assert_eq!(BenchmarkId::from_parameter("csr").to_string(), "csr");
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }

    #[test]
    fn benchmark_groups_prefix_their_members() {
        let mut c = Criterion { smoke: true };
        let mut group = c.benchmark_group("demo");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(1));
        group.sample_size(10);
        group.bench_function("one", |b| b.iter(|| black_box(1)));
        group.bench_with_input(BenchmarkId::from_parameter(2), &2usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
