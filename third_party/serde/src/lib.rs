//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the small serde subset the workspace actually uses:
//!
//! * `#[derive(serde::Serialize, serde::Deserialize)]` on structs with
//!   named fields (optionally one type parameter) and on enums with unit
//!   variants (via the sibling `serde_derive` stub),
//! * a self-describing [`Value`] tree as the data model,
//! * a [`json`] module that renders and parses that tree.
//!
//! The design intentionally collapses serde's `Serializer`/`Deserializer`
//! traits into direct `Value` conversion: every serializable type maps to a
//! `Value`, and JSON is one textual projection of it. That keeps the derive
//! macro implementable without `syn`/`quote` (also unavailable offline)
//! while preserving the call sites (`derive` attributes, round-trip tests,
//! JSON export) unchanged.

/// A self-describing serialized value — the crate's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative numerics parse into this).
    Int(i64),
    /// An unsigned integer (non-negative numerics parse into this).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` when `self` is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64` when losslessly possible.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The numeric payload as `i64` when losslessly possible.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The sequence payload.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The map payload.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn serialize(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the data model.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Looks up and deserializes a struct field — the helper the derive macro
/// expands to.
///
/// # Errors
///
/// Returns [`Error`] when the field is missing or mistyped.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(inner) => {
            T::deserialize(inner).map_err(|e| Error::custom(format!("field {name:?}: {e}")))
        }
        None => Err(Error::custom(format!("missing field {name:?}"))),
    }
}

// ---- Serialize implementations -----------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}
impl Serialize for f32 {
    fn serialize(&self) -> Value {
        (*self as f64).serialize()
    }
}
impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}
impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---- Deserialize implementations ---------------------------------------

macro_rules! de_int {
    ($($t:ty: $kind:ident),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .$kind()
                    .ok_or_else(|| Error::custom(format!(
                        "expected {}, got {v:?}", stringify!($t)
                    )))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8: as_i64, i16: as_i64, i32: as_i64, i64: as_i64, isize: as_i64);
de_int!(u8: as_u64, u16: as_u64, u32: as_u64, u64: as_u64, usize: as_u64);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, got {v:?}")))
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, got {v:?}"))),
        }
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = String::deserialize(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}
/// Deserializing into `&'static str` leaks the parsed string. The only such
/// field in the workspace is the static stream-name label of
/// `copernicus_hls::Stream`, deserialized exclusively by tests, so the leak
/// is bounded and deliberate.
impl Deserialize for &'static str {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        String::deserialize(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| Error::custom(format!("expected tuple, got {v:?}")))?;
                if seq.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of {}, got {} elements", $len, seq.len()
                    )));
                }
                Ok(($($t::deserialize(&seq[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod json {
    //! JSON rendering and parsing of [`Value`](super::Value) trees.

    use super::{Deserialize, Error, Serialize, Value};

    /// Serializes `v` as compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(v: &T) -> String {
        let mut out = String::new();
        write_value(&v.serialize(), &mut out, None, 0);
        out
    }

    /// Serializes `v` as two-space-indented JSON.
    pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> String {
        let mut out = String::new();
        write_value(&v.serialize(), &mut out, Some(2), 0);
        out
    }

    /// Parses JSON text into a typed value.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on malformed JSON or a shape mismatch.
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
        T::deserialize(&parse(text)?)
    }

    /// Parses JSON text into the generic [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on malformed JSON.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::custom(format!("trailing data at byte {pos}")));
        }
        Ok(v)
    }

    fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trippable rendering and
                    // always keeps a decimal point or exponent, so floats
                    // re-parse as floats.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(s, out),
            Value::Seq(items) => write_items(
                out,
                indent,
                depth,
                ('[', ']'),
                items.iter(),
                |item, out, d| {
                    write_value(item, out, indent, d);
                },
            ),
            Value::Map(entries) => {
                write_items(
                    out,
                    indent,
                    depth,
                    ('{', '}'),
                    entries.iter(),
                    |(k, val), out, d| {
                        write_string(k, out);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        write_value(val, out, indent, d);
                    },
                );
            }
        }
    }

    fn write_items<I: ExactSizeIterator>(
        out: &mut String,
        indent: Option<usize>,
        depth: usize,
        (open, close): (char, char),
        items: I,
        mut write_item: impl FnMut(I::Item, &mut String, usize),
    ) {
        out.push(open);
        let empty = items.len() == 0;
        for (i, item) in items.enumerate() {
            if i > 0 {
                out.push(',');
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * (depth + 1)));
            }
            write_item(item, out, depth + 1);
        }
        if let (Some(step), false) = (indent, empty) {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
        out.push(close);
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {lit:?} at byte {pos}",
                pos = *pos
            )))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
            Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected , or ] at byte {pos}",
                                pos = *pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, ":")?;
                    entries.push((key, parse_value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected , or }} at byte {pos}",
                                pos = *pos
                            )))
                        }
                    }
                }
            }
            Some(_) => parse_number(b, pos),
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
        expect(b, pos, "\"")?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&b[*pos..])
                .map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err(Error::custom("unterminated string")),
                Some((_, '"')) => {
                    *pos += 1;
                    return Ok(out);
                }
                Some((_, '\\')) => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error::custom(format!("bad \\u escape: {e}")))?;
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error::custom("surrogate \\u escape unsupported")
                            })?);
                            *pos += 4;
                        }
                        other => return Err(Error::custom(format!("bad escape {other:?}"))),
                    }
                    *pos += 1;
                }
                Some((_, c)) => {
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).expect("ascii");
        if text.is_empty() {
            return Err(Error::custom(format!("expected a value at byte {start}")));
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scalar_round_trips() {
            for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
                let v = parse(text).unwrap();
                assert_eq!(to_string(&v), text, "{text}");
            }
        }

        #[test]
        fn nested_round_trip() {
            let text = r#"{"a":[1,2.5,{"b":"x\ny"}],"c":null}"#;
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v), text);
        }

        #[test]
        fn pretty_output_reparses() {
            let v = parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
            let pretty = to_string_pretty(&v);
            assert!(pretty.contains('\n'));
            assert_eq!(parse(&pretty).unwrap(), v);
        }

        #[test]
        fn float_values_keep_their_type() {
            let v = parse("[1.0, 0.5]").unwrap();
            assert_eq!(v, Value::Seq(vec![Value::Float(1.0), Value::Float(0.5)]));
            // 1.0 renders with the decimal point so it re-parses as a float.
            assert_eq!(to_string(&v), "[1.0,0.5]");
        }

        #[test]
        fn typed_round_trip_via_traits() {
            let xs = vec![(1usize, -2i32), (3, 4)];
            let text = to_string(&xs);
            let back: Vec<(usize, i32)> = from_str(&text).unwrap();
            assert_eq!(back, xs);
        }

        #[test]
        fn malformed_inputs_error() {
            for text in ["", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "[] []"] {
                assert!(parse(text).is_err(), "{text:?} parsed");
            }
        }

        #[test]
        fn nan_serializes_as_null_and_reads_back_as_nan() {
            let text = to_string(&f64::NAN);
            assert_eq!(text, "null");
            let back: f64 = from_str(&text).unwrap();
            assert!(back.is_nan());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup_reports_missing_and_mistyped() {
        let v = Value::Map(vec![("a".into(), Value::UInt(3))]);
        assert_eq!(field::<u64>(&v, "a").unwrap(), 3);
        assert!(field::<u64>(&v, "b").is_err());
        assert!(field::<String>(&v, "a").is_err());
    }

    #[test]
    fn int_conversions_check_range() {
        assert!(u8::deserialize(&Value::UInt(300)).is_err());
        assert_eq!(i64::deserialize(&Value::UInt(5)).unwrap(), 5);
        assert!(u64::deserialize(&Value::Int(-1)).is_err());
    }

    #[test]
    fn options_map_to_null() {
        assert_eq!(None::<u32>.serialize(), Value::Null);
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::deserialize(&Value::UInt(1)).unwrap(),
            Some(1)
        );
    }
}
