//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest 1.x the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//!   `boxed`, implemented for integer and float ranges, tuples and
//!   [`strategy::Just`],
//! * [`collection::vec`] and [`collection::btree_map`] with exact or ranged
//!   sizes,
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`), and
//!   `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`/
//!   [`prop_oneof!`].
//!
//! Differences from the real crate, deliberately accepted: inputs are drawn
//! from a seed derived deterministically from the test's module path and
//! name (fully reproducible runs, no `PROPTEST_` env handling), and there
//! is **no shrinking** — a failing case panics with the generated inputs'
//! `Debug` rendering via the ordinary `assert!` machinery instead.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy so heterogeneous strategies of one
        /// value type can be mixed (see [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased strategies — the engine behind
    /// [`prop_oneof!`](crate::prop_oneof).
    #[derive(Debug, Clone)]
    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(
                !self.0.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            let pick = rng.0.gen_range(0..self.0.len());
            self.0[pick].generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Sampling the half-open range is indistinguishable in
                    // practice; the inclusive bound is a measure-zero point.
                    rng.0.gen_range(*self.start()..*self.end())
                }
            }
        )*};
    }
    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::collections::BTreeMap;

    /// Anything usable as a collection size: an exact `usize` or a range.
    pub trait SizeRange {
        /// Draws a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }
    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }
    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    /// A `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeMap` with `size` *distinct* keys from `key` mapped to values
    /// from `value`. If the key space is too small to reach the drawn size,
    /// the map is as large as the draws allowed (bounded retries), matching
    /// real proptest's best-effort behavior for saturated key domains.
    pub fn btree_map<K: Strategy, V: Strategy, Z: SizeRange>(
        key: K,
        value: V,
        size: Z,
    ) -> BTreeMapStrategy<K, V, Z> {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V, Z> {
        key: K,
        value: V,
        size: Z,
    }

    impl<K, V, Z> Strategy for BTreeMapStrategy<K, V, Z>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        Z: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target && attempts < target * 10 + 100 {
                let k = self.key.generate(rng);
                let v = self.value.generate(rng);
                map.insert(k, v);
                attempts += 1;
            }
            map
        }
    }
}

/// Runner configuration (the accepted subset: case count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; that is affordable for every
        // property in this workspace and keeps coverage comparable.
        ProptestConfig { cases: 256 }
    }
}

/// The runner's RNG, deterministic per `(test name, case index)`.
#[derive(Debug, Clone)]
pub struct TestRng(pub SmallRng);

/// Builds the RNG for one case of one property test.
///
/// FNV-1a over the fully qualified test name, mixed with the case index, so
/// every test sees a distinct but fully reproducible stream.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng(SmallRng::seed_from_u64(
        hash ^ ((case as u64) << 32 | case as u64),
    ))
}

/// Declares property tests: functions whose arguments are drawn from
/// strategies via `pattern in strategy` clauses.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    // One closure per case so prop_assume! can skip by
                    // returning early.
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                    })();
                }
            }
        )*
    };
}

/// Uniform choice between strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::Strategy::boxed($alt)),+])
    };
}

/// Asserts a condition inside a property (panics with the formatted
/// message; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::strategy::Strategy;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = super::test_rng("ranges", 0);
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let strat = prop_oneof![-50i32..0, 1i32..=50];
        let mut rng = super::test_rng("oneof", 0);
        let vals: Vec<i32> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&v| v < 0));
        assert!(vals.iter().any(|&v| v > 0));
        assert!(vals.iter().all(|&v| v != 0));
    }

    #[test]
    fn btree_map_sizes_are_exactly_the_distinct_key_count() {
        let strat = super::collection::btree_map(0usize..1000, 0i32..5, 40..=40);
        let mut rng = super::test_rng("map", 1);
        let m = strat.generate(&mut rng);
        assert_eq!(m.len(), 40);
    }

    #[test]
    fn btree_map_saturates_small_key_spaces_gracefully() {
        let strat = super::collection::btree_map(0usize..3, 0i32..5, 3..=3);
        let mut rng = super::test_rng("map-small", 1);
        let m = strat.generate(&mut rng);
        assert!(m.len() <= 3);
        assert!(m.keys().all(|&k| k < 3));
    }

    #[test]
    fn flat_map_builds_dependent_values() {
        let strat = (1usize..=5).prop_flat_map(|n| (Just(n), super::collection::vec(0u8..10, n)));
        let mut rng = super::test_rng("dep", 2);
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn streams_are_deterministic_per_name_and_case() {
        let a = (0u64..u64::MAX).generate(&mut super::test_rng("x", 3));
        let b = (0u64..u64::MAX).generate(&mut super::test_rng("x", 3));
        let c = (0u64..u64::MAX).generate(&mut super::test_rng("x", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_draws_and_asserts(x in 1usize..=20, (lo, hi) in (0i32..5, 10i32..15)) {
            prop_assume!(x != 13);
            prop_assert!((1..=20).contains(&x));
            prop_assert!(lo < hi, "{} vs {}", lo, hi);
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(lo, hi);
        }
    }

    #[test]
    fn macro_generated_test_runs() {
        macro_draws_and_asserts();
    }
}
