//! Offline stand-in for the [rand](https://crates.io/crates/rand) crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of rand 0.8's API the workspace uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! family rand's 64-bit `SmallRng` uses. Streams are NOT bit-compatible
//! with the real crate; nothing in the workspace pins exact rand output,
//! only self-consistency under a fixed seed, which this crate guarantees.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32 bits of the stream (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // seeding scheme the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Uniform sampling of a value from a range — the bound on
/// [`Rng::gen_range`] arguments.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_ranges!(f32, f64);

/// Types drawable uniformly from their full domain ([`Rng::gen`]), the
/// stand-in for rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_ints {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from a type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-4.0f32..4.0);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 9];
        for _ in 0..500 {
            seen[rng.gen_range(1usize..=9) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
