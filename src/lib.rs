//! Umbrella crate for the Copernicus reproduction workspace.
//!
//! Re-exports the public APIs of the member crates so examples and
//! integration tests can reach everything through one dependency:
//!
//! * [`sparsemat`] — the sparse-format substrate,
//! * `workloads` ([`copernicus_workloads`]) — workload generators and the
//!   Table-1 registry,
//! * `hls` ([`copernicus_hls`]) — the cycle-level hardware model,
//! * `solvers` ([`copernicus_solvers`]) — the application kernels §3.3
//!   motivates (CG/BiCGSTAB, PageRank/BFS, sparse NN inference),
//! * `telemetry` ([`copernicus_telemetry`]) — trace sinks, metrics and run
//!   manifests,
//! * [`copernicus`] — metrics, the experiment runner and figure drivers.

pub use copernicus;
pub use copernicus_hls as hls;
pub use copernicus_solvers as solvers;
pub use copernicus_telemetry as telemetry;
pub use copernicus_workloads as workloads;
pub use sparsemat;
