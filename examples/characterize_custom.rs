//! Characterize your own matrix: pass a MatrixMarket file and get the
//! paper's metrics for every format and partition size.
//!
//! ```sh
//! cargo run --example characterize_custom -- path/to/matrix.mtx
//! # or, with no argument, a bundled demo matrix is generated:
//! cargo run --example characterize_custom
//! ```

use copernicus::table::{eng, f3, TextTable};
use copernicus_hls::{HwConfig, RunRequest, Session};
use copernicus_workloads::{mtx, seeded_rng};
use sparsemat::{Coo, FormatKind, Matrix, PartitionGrid};
use std::fs::File;
use std::io::BufReader;

fn load_matrix() -> Result<(String, Coo<f32>), Box<dyn std::error::Error>> {
    match std::env::args().nth(1) {
        Some(path) => {
            let file = File::open(&path)?;
            let coo = mtx::read_mtx(BufReader::new(file))?;
            Ok((path, coo))
        }
        None => {
            // Demo: a circuit-like matrix, as if freshly exported from a
            // simulator.
            let coo = copernicus_workloads::circuit::circuit(512, 5.0, 0.9, &mut seeded_rng(99));
            Ok(("<generated circuit demo>".to_string(), coo))
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (name, matrix) = load_matrix()?;
    println!(
        "matrix {name}: {}x{}, {} non-zeros ({:.4}% dense)",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz(),
        100.0 * matrix.density()
    );

    // Fig.-3-style partition statistics first.
    println!("\npartition statistics:");
    let mut stats_table = TextTable::new(&["p", "nz_tiles", "tile_density%", "nz_row_share%"]);
    for p in [8usize, 16, 32] {
        let stats = PartitionGrid::new(&matrix, p)?.stats();
        stats_table.row(&[
            p.to_string(),
            stats.nonzero_partitions.to_string(),
            f3(stats.partition_density_pct),
            f3(stats.nonzero_row_share_pct),
        ]);
    }
    println!("{}", stats_table.render());

    // Full format × partition characterization.
    println!("characterization (σ, balance, bandwidth utilization, throughput):");
    let mut table = TextTable::new(&["format", "p", "sigma", "balance", "bw_util", "throughput"]);
    for p in [8usize, 16, 32] {
        let mut session = Session::new(HwConfig::with_partition_size(p))?;
        for kind in FormatKind::CHARACTERIZED {
            let r = session.run(RunRequest::matrix(&matrix, kind))?.report;
            table.row(&[
                kind.to_string(),
                p.to_string(),
                f3(r.sigma()),
                f3(r.balance_ratio),
                f3(r.bandwidth_utilization()),
                format!("{}B/s", eng(r.throughput_bytes_per_sec())),
            ]);
        }
    }
    println!("{}", table.render());
    Ok(())
}
