//! Graph analytics on the accelerator model: PageRank as repeated SpMV
//! (§3.3 of the paper: graph algorithms "can be implemented as a sparse
//! matrix-vector operation").
//!
//! Generates an R-MAT web-like graph, runs PageRank where every iteration's
//! SpMV goes through the modeled datapath, and compares the cycle cost of
//! running the same algorithm with COO (the paper's recommendation for
//! graphs) against CSC (the paper's worst case).
//!
//! ```sh
//! cargo run --example graph_analytics
//! ```

use copernicus_hls::{HwConfig, RunRequest, Session};
use copernicus_workloads::rmat::{rmat, RmatParams};
use copernicus_workloads::seeded_rng;
use sparsemat::{Coo, FormatKind, Matrix};

/// Builds the column-stochastic PageRank transition matrix of a graph:
/// `M[j][i] = 1 / outdegree(i)` for each edge `i -> j`.
fn transition_matrix(graph: &Coo<f32>) -> Coo<f32> {
    let n = graph.nrows();
    let mut outdeg = vec![0usize; n];
    for t in graph.iter() {
        outdeg[t.row] += 1;
    }
    let mut m = Coo::with_capacity(n, n, graph.nnz());
    for t in graph.iter() {
        m.push(t.col, t.row, 1.0 / outdeg[t.row] as f32)
            .expect("within shape");
    }
    m
}

/// One PageRank sweep: `r' = (1-d)/n + d · (M·r + dangling_mass/n)`.
fn pagerank(
    session: &mut Session,
    m: &Coo<f32>,
    outdeg_zero: &[bool],
    format: FormatKind,
    iters: usize,
) -> Result<(Vec<f32>, u64), copernicus_hls::PlatformError> {
    let n = m.nrows();
    let d = 0.85f32;
    let mut rank = vec![1.0 / n as f32; n];
    let mut total_cycles = 0u64;
    for _ in 0..iters {
        let outcome = session.run(RunRequest::matrix(m, format).consume_spmv(&rank))?;
        let (mut next, report) = (outcome.y.unwrap_or_default(), outcome.report);
        total_cycles += report.total_cycles;
        let dangling: f32 = rank
            .iter()
            .zip(outdeg_zero)
            .filter(|&(_, &z)| z)
            .map(|(r, _)| r)
            .sum();
        for v in &mut next {
            *v = (1.0 - d) / n as f32 + d * (*v + dangling / n as f32);
        }
        rank = next;
    }
    Ok((rank, total_cycles))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 512-node web-like graph with a heavy-tailed degree distribution.
    let graph = rmat(9, 3000, RmatParams::GRAPH500, &mut seeded_rng(11));
    let n = graph.nrows();
    println!("graph: {n} nodes, {} edges", graph.nnz());

    let m = transition_matrix(&graph);
    let mut outdeg_zero = vec![true; n];
    for t in graph.iter() {
        outdeg_zero[t.row] = false;
    }

    let mut session = Session::new(HwConfig::with_partition_size(16))?;
    let iters = 20;

    let (rank_coo, cycles_coo) = pagerank(&mut session, &m, &outdeg_zero, FormatKind::Coo, iters)?;
    let (rank_csc, cycles_csc) = pagerank(&mut session, &m, &outdeg_zero, FormatKind::Csc, iters)?;

    // Same algorithm, same answer.
    assert_eq!(rank_coo, rank_csc);
    let mass: f32 = rank_coo.iter().sum();
    assert!((mass - 1.0).abs() < 1e-3, "rank mass {mass} drifted");

    let mut top: Vec<(usize, f32)> = rank_coo.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop 5 nodes by PageRank:");
    for (node, score) in top.iter().take(5) {
        println!("  node {node:>4}: {score:.5}");
    }

    println!("\naccelerator cycles for {iters} PageRank iterations:");
    println!("  COO: {cycles_coo:>12}");
    println!(
        "  CSC: {cycles_csc:>12}  ({:.1}x slower)",
        cycles_csc as f64 / cycles_coo as f64
    );
    println!(
        "\n§8 of the paper: a generic format like COO matches generic hardware;\n\
         the column-oriented CSC pays a {:.0}x decompression penalty on this graph.",
        cycles_csc as f64 / cycles_coo as f64
    );
    Ok(())
}
