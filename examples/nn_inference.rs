//! Sparse neural-network inference on the accelerator model — the
//! machine-learning domain of §3.3, with the §8 punchline about structured
//! pruning made concrete.
//!
//! Builds a pruned 3-layer MLP twice — once with unstructured (magnitude)
//! pruning, once with structured block pruning at the same density — runs
//! the same input through both (the math agrees), and compares what the
//! accelerator pays for each layer's SpMV.
//!
//! ```sh
//! cargo run -p copernicus-repro --example nn_inference
//! ```

use copernicus::table::{f3, TextTable};
use copernicus_hls::{HwConfig, RunRequest, Session};
use copernicus_solvers::{sparse_mlp_forward, SparseLayer};
use copernicus_workloads::{ml, seeded_rng};
use sparsemat::{Coo, FormatKind, Matrix, PartitionGrid};

const DIMS: [usize; 4] = [256, 192, 128, 64];
const DENSITY: f64 = 0.125;

fn build_mlp(structured: bool, seed: u64) -> Vec<(String, Coo<f32>)> {
    let mut rng = seeded_rng(seed);
    (0..3)
        .map(|l| {
            let (out, inp) = (DIMS[l + 1], DIMS[l]);
            let w = if structured {
                // 8x8 surviving blocks at the same overall density.
                ml::pruned_block(out, inp, 8, DENSITY, &mut rng)
            } else {
                ml::pruned_unstructured(out, inp, DENSITY, &mut rng)
            };
            (format!("fc{}", l + 1), w)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new(HwConfig::with_partition_size(8))?;
    let input: Vec<f32> = (0..DIMS[0]).map(|i| ((i % 11) as f32) / 11.0).collect();

    for (name, structured) in [("unstructured", false), ("block-structured", true)] {
        let weights = build_mlp(structured, 77);

        // Functional forward pass through the software kernels.
        let layers: Vec<SparseLayer> = weights
            .iter()
            .map(|(_, w)| SparseLayer::new(w, vec![0.0; w.nrows()], true))
            .collect::<Result<_, _>>()?;
        let logits = sparse_mlp_forward(&layers, &input)?;

        println!("\n== {name} pruning (density {DENSITY}) ==");
        println!("logit head: {:?}", &logits[..4.min(logits.len())]);

        let mut t = TextTable::new(&[
            "layer", "nnz", "nz_tiles", "format", "sigma", "bw_util", "cycles",
        ]);
        for (lname, w) in &weights {
            let tiles = PartitionGrid::new(w, 8)?.nonzero_tiles();
            for format in [FormatKind::Bcsr, FormatKind::Csr, FormatKind::Coo] {
                let r = session.run(RunRequest::matrix(w, format))?.report;
                t.row(&[
                    lname.clone(),
                    w.nnz().to_string(),
                    tiles.to_string(),
                    format.to_string(),
                    f3(r.sigma()),
                    f3(r.bandwidth_utilization()),
                    r.total_cycles.to_string(),
                ]);
            }
        }
        println!("{}", t.render());
    }

    println!(
        "§8: \"for less sparse (density > 0.1) applications such as the \n\
         inference of neural networks [...] extracting the non-zero \n\
         partitions can be done with the aid of structure pruning schemes\" \n\
         — block pruning leaves far fewer non-zero tiles, so every format \n\
         moves less data and finishes in fewer cycles at identical accuracy."
    );
    Ok(())
}
