//! Quickstart: build a sparse matrix, stream it through the modeled
//! accelerator in every characterized format, and read the metrics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use copernicus::table::{f3, TextTable};
use copernicus::{recommend, Goal};
use copernicus_hls::{HwConfig, RunRequest, Session};
use sparsemat::{Coo, FormatKind, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64x64 matrix with a tridiagonal band plus a few scattered entries —
    // the kind of mixed structure real workloads show.
    let mut a = Coo::<f32>::new(64, 64);
    for i in 0..64usize {
        a.push(i, i, 4.0)?;
        if i + 1 < 64 {
            a.push(i, i + 1, -1.0)?;
            a.push(i + 1, i, -1.0)?;
        }
    }
    for k in 0..12usize {
        a.push((k * 17) % 64, (k * 29) % 64, 1.0 + k as f32)?;
    }
    println!(
        "matrix: {}x{}, {} non-zeros ({:.2}% dense)\n",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        100.0 * a.density()
    );

    // The platform of the paper: 250 MHz, 16x16 partitions, 4x4 BCSR
    // blocks, width-6 ELL compute path.
    let mut session = Session::new(HwConfig::with_partition_size(16))?;

    // One SpMV through the modeled datapath, verified against the software
    // kernel.
    let x = vec![1.0f32; 64];
    let outcome = session.run(RunRequest::matrix(&a, FormatKind::Csr).consume_spmv(&x))?;
    assert_eq!(outcome.y.unwrap_or_default(), a.spmv(&x)?);
    println!("accelerator SpMV matches the software kernel ✓\n");

    // Characterize every format the paper studies.
    let mut table = TextTable::new(&["format", "sigma", "balance", "bw_util", "total_cycles"]);
    for kind in FormatKind::CHARACTERIZED {
        let r = session.run(RunRequest::matrix(&a, kind))?.report;
        table.row(&[
            kind.to_string(),
            f3(r.sigma()),
            f3(r.balance_ratio),
            f3(r.bandwidth_utilization()),
            r.total_cycles.to_string(),
        ]);
    }
    println!("{}", table.render());

    // And ask the paper's insights which format to pick.
    for goal in [Goal::Latency, Goal::Throughput, Goal::BandwidthUtilization] {
        let rec = recommend(&a, goal)?;
        println!(
            "{goal:?}: use {} at {}x{} partitions",
            rec.format, rec.partition_size, rec.partition_size
        );
    }
    Ok(())
}
