//! Scientific computation on the accelerator model: a conjugate-gradient
//! Poisson solve (§3.3 of the paper: "systems of linear equations with a
//! large symmetric positive-definite matrix A can be solved by iterative
//! algorithms such as conjugate gradient methods [...] the key sparse
//! kernel is SpMV").
//!
//! Discretizes a 2-D Poisson problem with the 5-point stencil, solves
//! `A·u = b` by CG where each SpMV streams through the modeled datapath,
//! and reports how the format choice changes the accelerator cycles spent.
//!
//! ```sh
//! cargo run --example pde_solver
//! ```

use copernicus_hls::{HwConfig, PlatformError, RunRequest, Session};
use copernicus_workloads::stencil::laplacian_2d;
use sparsemat::ops::{axpy, dot, norm2};
use sparsemat::{Coo, FormatKind, Matrix};

/// Conjugate gradient with the SpMV running on the modeled accelerator.
/// Returns `(solution, iterations, total accelerator cycles)`.
fn conjugate_gradient(
    session: &mut Session,
    a: &Coo<f32>,
    b: &[f32],
    format: FormatKind,
    tol: f64,
    max_iters: usize,
) -> Result<(Vec<f32>, usize, u64), PlatformError> {
    let n = b.len();
    let mut x = vec![0.0f32; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rr = dot(&r, &r);
    let mut cycles = 0u64;
    for k in 0..max_iters {
        if norm2(&r) < tol {
            return Ok((x, k, cycles));
        }
        let outcome = session.run(RunRequest::matrix(a, format).consume_spmv(&p))?;
        let (ap, report) = (outcome.y.unwrap_or_default(), outcome.report);
        cycles += report.total_cycles;
        let alpha = rr / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rr_next = dot(&r, &r);
        let beta = rr_next / rr;
        rr = rr_next;
        for (pi, &ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
    }
    Ok((x, max_iters, cycles))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 24x24 interior grid -> 576 unknowns; SPD 5-point Laplacian.
    let (nx, ny) = (24, 24);
    let a = laplacian_2d(nx, ny);
    let n = a.nrows();
    println!(
        "Poisson operator: {}x{} grid -> {n} unknowns, {} non-zeros",
        nx,
        ny,
        a.nnz()
    );

    // A smooth source term.
    let b: Vec<f32> = (0..n)
        .map(|i| {
            let (x, y) = (i / ny, i % ny);
            ((x as f32 / nx as f32) * std::f32::consts::PI).sin()
                * ((y as f32 / ny as f32) * std::f32::consts::PI).sin()
        })
        .collect();

    let mut session = Session::new(HwConfig::with_partition_size(16))?;

    println!("\nCG on the accelerator model, per operator format:");
    println!(
        "{:>8} {:>7} {:>14} {:>12}",
        "format", "iters", "cycles", "residual"
    );
    let mut reference: Option<Vec<f32>> = None;
    for format in [
        FormatKind::Csr,
        FormatKind::Dia,
        FormatKind::Coo,
        FormatKind::Bcsr,
    ] {
        let (u, iters, cycles) = conjugate_gradient(&mut session, &a, &b, format, 1e-4, 2000)?;
        // Residual check: ||b - A·u||.
        let au = a.spmv(&u)?;
        let res: Vec<f32> = b.iter().zip(&au).map(|(bi, ai)| bi - ai).collect();
        println!(
            "{:>8} {:>7} {:>14} {:>12.3e}",
            format.to_string(),
            iters,
            cycles,
            norm2(&res)
        );
        // Every format solves the same system to the same answer.
        match &reference {
            None => reference = Some(u),
            Some(r) => assert_eq!(r, &u, "{format} diverged from the reference solve"),
        }
    }

    println!(
        "\nThe 5-point Laplacian is a 5-diagonal band matrix, so DIA's \n\
         per-row diagonal scan stays cheap here. §8 of the paper warns the \n\
         DIA/row-engine mismatch becomes a compute bottleneck as non-zeros \n\
         scatter over many partial diagonals — see `cargo run -p \n\
         copernicus-bench --bin fig06` for that sweep."
    );
    Ok(())
}
