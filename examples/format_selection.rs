//! Format selection across workload types and optimization goals — the
//! paper's §8 "hints to architects", as an executable decision table.
//!
//! ```sh
//! cargo run --example format_selection
//! ```

use copernicus::table::TextTable;
use copernicus::{recommend, Goal};
use copernicus_workloads::rmat::{rmat, RmatParams};
use copernicus_workloads::{band, random, seeded_rng, stencil};
use sparsemat::{Coo, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workloads: Vec<(&str, Coo<f32>)> = vec![
        ("diagonal", band::diagonal(256, &mut seeded_rng(1))),
        ("band w=16", band::band(256, 16, &mut seeded_rng(2))),
        ("2D Poisson", stencil::laplacian_2d(16, 16)),
        (
            "web graph",
            rmat(8, 1500, RmatParams::GRAPH500, &mut seeded_rng(3)),
        ),
        (
            "NN weights d=0.3",
            random::uniform_square(128, 0.3, &mut seeded_rng(4)),
        ),
        (
            "extreme sparse",
            random::uniform_square(256, 0.001, &mut seeded_rng(5)),
        ),
    ];
    let goals = [
        Goal::Latency,
        Goal::Throughput,
        Goal::Power,
        Goal::Balance,
        Goal::BandwidthUtilization,
    ];

    let mut table = TextTable::new(&[
        "workload",
        "density",
        "latency",
        "throughput",
        "power",
        "balance",
        "bw_util",
    ]);
    for (name, matrix) in &workloads {
        let mut cells = vec![name.to_string(), format!("{:.4}", matrix.density())];
        for goal in goals {
            let rec = recommend(matrix, goal)?;
            cells.push(format!("{}@{}", rec.format, rec.partition_size));
        }
        table.row(&cells);
    }
    println!("recommended format@partition per goal:\n");
    println!("{}", table.render());

    // Show one full rationale.
    let rec = recommend(&workloads[0].1, Goal::BandwidthUtilization)?;
    println!(
        "why {} for a diagonal matrix?\n  {}",
        rec.format, rec.rationale
    );
    Ok(())
}
