//! Property-based tests of the workload generators.

use copernicus_workloads::rmat::RmatParams;
use copernicus_workloads::{band, circuit, ml, mtx, random, rmat, road, seeded_rng, stencil};
use proptest::prelude::*;
use sparsemat::{Coo, Dia, Matrix, Triplet};
use std::io::Cursor;

proptest! {
    #[test]
    fn uniform_hits_exact_nnz(n in 8usize..=96, density in 0.0f64..=0.6, seed in 0u64..1000) {
        let m = random::uniform_square(n, density, &mut seeded_rng(seed));
        let target = (density * (n * n) as f64).round() as usize;
        prop_assert_eq!(m.nnz(), target);
        prop_assert_eq!((m.nrows(), m.ncols()), (n, n));
    }

    #[test]
    fn uniform_is_deterministic(n in 8usize..=64, seed in 0u64..100) {
        let a = random::uniform_square(n, 0.1, &mut seeded_rng(seed));
        let b = random::uniform_square(n, 0.1, &mut seeded_rng(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn band_respects_width_bound(n in 4usize..=64, width in 1usize..=32, seed in 0u64..100) {
        let m = band::band(n, width, &mut seeded_rng(seed));
        let half = (width / 2) as isize;
        for t in m.iter() {
            let off = t.col as isize - t.row as isize;
            prop_assert!(off.abs() <= half, "offset {off} > half width {half}");
        }
        prop_assert_eq!(m.nnz(), band::band_nnz(n, width));
    }

    #[test]
    fn band_fills_every_band_cell(n in 4usize..=32, width in 1usize..=16) {
        let m = band::band(n, width, &mut seeded_rng(1)).to_dense();
        let half = (width / 2) as isize;
        for r in 0..n {
            for c in 0..n {
                let inside = (r as isize - c as isize).abs() <= half;
                prop_assert_eq!(m[(r, c)] != 0.0, inside, "({}, {})", r, c);
            }
        }
    }

    #[test]
    fn rmat_edges_are_unique_and_in_range(scale in 4u32..=9, edges in 1usize..=300, seed in 0u64..50) {
        let g = rmat::rmat(scale, edges, RmatParams::GRAPH500, &mut seeded_rng(seed));
        let n = 1usize << scale;
        prop_assert_eq!((g.nrows(), g.ncols()), (n, n));
        prop_assert!(g.nnz() <= edges);
        let mut coords: Vec<_> = g.iter().map(|t| (t.row, t.col)).collect();
        let before = coords.len();
        coords.sort_unstable();
        coords.dedup();
        prop_assert_eq!(coords.len(), before, "duplicate edges generated");
    }

    #[test]
    fn circuit_always_has_full_diagonal(n in 4usize..=128, deg in 1.0f64..6.0, seed in 0u64..50) {
        let m = circuit::circuit(n, deg, 0.8, &mut seeded_rng(seed));
        for i in 0..n {
            prop_assert!(m.get(i, i) != 0.0, "missing diagonal {i}");
        }
    }

    #[test]
    fn circuit_is_structurally_symmetric(n in 4usize..=64, seed in 0u64..50) {
        let m = circuit::circuit(n, 3.0, 0.7, &mut seeded_rng(seed));
        let d = m.to_dense();
        for t in m.iter() {
            prop_assert!(d[(t.col, t.row)] != 0.0, "({},{}) unmirrored", t.row, t.col);
        }
    }

    #[test]
    fn road_mesh_degree_is_bounded(nx in 3usize..=20, ny in 3usize..=20, seed in 0u64..50) {
        let m = road::road_mesh(nx, ny, 1.0, 0.1, &mut seeded_rng(seed));
        // Grid neighbours (4) + up to 2 diagonal shortcuts per vertex pair.
        let max_deg = m.row_counts().into_iter().max().unwrap_or(0);
        prop_assert!(max_deg <= 8, "degree {max_deg} too high for a road mesh");
    }

    #[test]
    fn stencil_2d_is_symmetric_banded(nx in 2usize..=12, ny in 2usize..=12) {
        let m = stencil::laplacian_2d(nx, ny);
        let d = m.to_dense();
        for r in 0..m.nrows() {
            for c in 0..m.ncols() {
                prop_assert_eq!(d[(r, c)], d[(c, r)]);
            }
        }
        let dia = Dia::from(&m);
        // 5-point stencil: at most 5 diagonals (fewer for degenerate grids).
        prop_assert!(dia.num_diagonals() <= 5);
    }

    #[test]
    fn suite_stand_ins_scale_with_cap(seed in 0u64..20) {
        let m = copernicus_workloads::SuiteMatrix::by_id("LJ").unwrap();
        let small = m.generate(128, seed);
        let large = m.generate(512, seed);
        prop_assert!(small.nrows() <= 128);
        prop_assert!(large.nrows() <= 512);
        prop_assert!(large.nrows() > small.nrows());
    }

    #[test]
    fn mtx_round_trip_is_lossless(
        entries in proptest::collection::btree_map(0usize..400, -1000i32..1000, 0..60)
    ) {
        let triplets: Vec<Triplet<f32>> = entries
            .into_iter()
            .filter(|&(_, v)| v != 0)
            .map(|(cell, v)| Triplet::new(cell / 20, cell % 20, v as f32 / 8.0))
            .collect();
        let coo = Coo::from_triplets(20, 20, triplets).unwrap();
        let mut buf = Vec::new();
        mtx::write_mtx(&mut buf, &coo).unwrap();
        let back = mtx::read_mtx(Cursor::new(&buf)).unwrap();
        prop_assert!(coo.to_dense().structurally_eq(&back));
        prop_assert_eq!(back.nnz(), coo.nnz());
    }

    #[test]
    fn pruned_block_density_is_respected(
        out in 8usize..=48, inp in 8usize..=48, seed in 0u64..50
    ) {
        let m = ml::pruned_block(out, inp, 4, 0.5, &mut seeded_rng(seed));
        // Kept blocks are clipped at the edges, so density can only come in
        // at or under the full-block estimate.
        let blocks = out.div_ceil(4) * inp.div_ceil(4);
        let kept = (0.5 * blocks as f64).round() as usize;
        prop_assert!(m.nnz() <= kept * 16);
        prop_assert!(m.nnz() > 0 || kept == 0);
    }

    #[test]
    fn embedding_lookup_counts_hold(batch in 1usize..=24, per in 1usize..=12, seed in 0u64..50) {
        let m = ml::embedding_access(batch, 256, per, 0.5, &mut seeded_rng(seed));
        for count in m.row_counts() {
            prop_assert_eq!(count, per);
        }
    }
}
