//! Robustness contract for the MatrixMarket reader: whatever bytes come in
//! — truncated files, garbage headers, mutated entries, wrong counts — the
//! reader returns a typed [`MtxError`] and never panics. The fuzz loops use
//! a fixed-seed PRNG so every run exercises the same corpus.

use copernicus_workloads::mtx::{read_mtx, MtxError};
use std::panic::{catch_unwind, AssertUnwindSafe};

const BASE: &str = "\
%%MatrixMarket matrix coordinate real general
% a comment line
4 4 6
1 1 1.5
1 2 -2.0
2 2 3.25
3 1 4.0
3 4 -0.5
4 4 6.0
";

/// A tiny splitmix64 so the fuzz corpus is identical on every run.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Feeds `bytes` to the reader under a panic guard; a panic fails the test.
fn parse(bytes: &[u8]) -> Result<(), MtxError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| read_mtx(bytes).map(|_| ())));
    match outcome {
        Ok(result) => result,
        Err(_) => panic!(
            "read_mtx panicked on input: {:?}",
            String::from_utf8_lossy(bytes)
        ),
    }
}

#[test]
fn the_base_document_parses() {
    assert!(parse(BASE.as_bytes()).is_ok());
}

#[test]
fn every_byte_truncation_yields_a_typed_error_or_parses() {
    for len in 0..BASE.len() {
        // Any prefix is either still a complete document or a typed error;
        // the point is the guard inside `parse`: no prefix may panic.
        let _ = parse(&BASE.as_bytes()[..len]);
    }
}

#[test]
fn truncated_entry_lists_report_a_count_mismatch() {
    // Keep the header + size line + first three entries: 3 of 6 declared.
    let doc: String = BASE.lines().take(6).map(|l| format!("{l}\n")).collect();
    match parse(doc.as_bytes()) {
        Err(MtxError::CountMismatch { declared, found }) => {
            assert_eq!((declared, found), (6, 3));
        }
        other => panic!("expected CountMismatch, got {other:?}"),
    }
}

#[test]
fn garbage_headers_are_rejected_not_panicked() {
    let cases: &[&str] = &[
        "",
        "\n",
        "%%MatrixMarket\n1 1 0\n",
        "%%MatrixMarket matrix array real general\n",
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
        "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
        "totally not a header\n1 1 1\n1 1 1\n",
    ];
    for case in cases {
        assert!(
            parse(case.as_bytes()).is_err(),
            "accepted garbage header: {case:?}"
        );
    }
}

#[test]
fn malformed_size_and_entry_lines_are_typed_errors() {
    let cases: &[&str] = &[
        // Size line with too few fields, non-numeric fields, and overflow.
        "%%MatrixMarket matrix coordinate real general\n4 4\n",
        "%%MatrixMarket matrix coordinate real general\nfour four six\n",
        "%%MatrixMarket matrix coordinate real general\n1 1 99999999999999999999\n",
        // Entries out of the declared shape, zero-based, or non-numeric.
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 not-a-number\n",
        // More entries than declared.
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 2.0\n",
    ];
    for case in cases {
        let err = parse(case.as_bytes()).expect_err("malformed input accepted");
        assert!(
            matches!(
                err,
                MtxError::BadLine { .. } | MtxError::CountMismatch { .. }
            ),
            "wrong error class for {case:?}: {err:?}"
        );
    }
}

#[test]
fn random_byte_mutations_never_panic() {
    let mut rng = Prng(0x5eed_0001);
    for _ in 0..500 {
        let mut doc = BASE.as_bytes().to_vec();
        for _ in 0..=rng.below(4) {
            let pos = rng.below(doc.len());
            // Stay in printable ASCII so the mutation hits the parser, not
            // just UTF-8 validation inside `lines()`.
            doc[pos] = 0x20 + (rng.next() % 0x5f) as u8;
        }
        let _ = parse(&doc);
    }
}

#[test]
fn random_garbage_documents_never_panic() {
    let mut rng = Prng(0x5eed_0002);
    for _ in 0..500 {
        let len = rng.below(256);
        let doc: Vec<u8> = (0..len).map(|_| (rng.next() % 256) as u8).collect();
        let _ = parse(&doc);
    }
}

#[test]
fn random_line_shuffles_never_panic_and_fail_typed() {
    let mut rng = Prng(0x5eed_0003);
    let lines: Vec<&str> = BASE.lines().collect();
    for _ in 0..200 {
        let mut order: Vec<usize> = (0..lines.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i + 1));
        }
        let doc: String = order.iter().map(|&i| format!("{}\n", lines[i])).collect();
        // A shuffle that happens to keep the document valid is fine; what
        // is not fine is a panic, which `parse` turns into a test failure.
        let _ = parse(doc.as_bytes());
    }
}
