//! Circuit-simulation matrix generator — stand-in for Freescale2, rajat31
//! and hcircuit in Table 1.
//!
//! Modified-nodal-analysis matrices have a characteristic shape: a full
//! diagonal (every node has a self-conductance), strong locality from
//! consecutive node numbering (components connect nearby nodes), and a thin
//! tail of long-range connections (supply rails, clock nets). The generator
//! reproduces exactly that mix.

use crate::nonzero_value;
use rand::Rng;
use sparsemat::Coo;
use std::collections::HashSet;

/// Generates an `n × n` circuit-like matrix with roughly
/// `avg_degree` off-diagonal entries per row.
///
/// * every diagonal cell is populated (self conductance),
/// * `locality` of the off-diagonals land within a ±32 window around the
///   diagonal (component neighbourhoods),
/// * the rest are uniform long-range couplings (rails/clock),
/// * the pattern is symmetrized, as nodal-analysis stamps are.
///
/// # Panics
///
/// Panics if `locality` is outside `[0, 1]`.
pub fn circuit<R: Rng>(n: usize, avg_degree: f64, locality: f64, rng: &mut R) -> Coo<f32> {
    assert!(
        (0.0..=1.0).contains(&locality),
        "locality {locality} outside [0, 1]"
    );
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut coo = Coo::with_capacity(n, n, n + (n as f64 * avg_degree) as usize);
    for i in 0..n {
        seen.insert((i, i));
        coo.push(i, i, nonzero_value(rng)).expect("in range");
    }
    // Each accepted off-diagonal stamps two entries (i,j) and (j,i).
    let target_offdiag = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = target_offdiag.saturating_mul(16).max(64);
    while placed < target_offdiag && attempts < max_attempts {
        attempts += 1;
        let i = rng.gen_range(0..n);
        let j = if rng.gen_bool(locality) {
            // Local window around i.
            let w = 32.min(n.saturating_sub(1)).max(1);
            let lo = i.saturating_sub(w);
            let hi = (i + w).min(n - 1);
            rng.gen_range(lo..=hi)
        } else {
            rng.gen_range(0..n)
        };
        if i == j || seen.contains(&(i, j)) {
            continue;
        }
        let v = nonzero_value(rng);
        seen.insert((i, j));
        seen.insert((j, i));
        coo.push(i, j, v).expect("in range");
        coo.push(j, i, v).expect("in range");
        placed += 1;
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use sparsemat::{Matrix, Scalar as _};

    #[test]
    fn diagonal_is_full() {
        let m = circuit(100, 3.0, 0.9, &mut seeded_rng(0));
        for i in 0..100 {
            assert!(!m.get(i, i).is_zero(), "missing diagonal at {i}");
        }
    }

    #[test]
    fn pattern_is_symmetric() {
        let m = circuit(80, 4.0, 0.8, &mut seeded_rng(1));
        let d = m.to_dense();
        for t in m.iter() {
            assert!(!d[(t.col, t.row)].is_zero());
        }
    }

    #[test]
    fn degree_is_near_target() {
        let m = circuit(200, 4.0, 0.9, &mut seeded_rng(2));
        // diagonal n + ~avg_degree*n off-diagonals.
        let offdiag = m.nnz() - 200;
        assert!(
            (offdiag as f64 - 800.0).abs() < 160.0,
            "off-diagonal count {offdiag} far from 800"
        );
    }

    #[test]
    fn high_locality_concentrates_near_diagonal() {
        let m = circuit(400, 4.0, 1.0, &mut seeded_rng(3));
        for t in m.iter() {
            let d = (t.row as isize - t.col as isize).unsigned_abs();
            assert!(d <= 32, "entry at offset {d} breaks the local window");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = circuit(64, 3.0, 0.7, &mut seeded_rng(4));
        let b = circuit(64, 3.0, 0.7, &mut seeded_rng(4));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_locality() {
        circuit(10, 2.0, 1.5, &mut seeded_rng(5));
    }
}
