//! Road-network / mesh graph generator — stand-in for roadNet-TX,
//! road_central, europe_osm and hugebubbles in Table 1.
//!
//! Road networks are near-planar graphs with tiny, tightly bounded degree
//! (average ≈ 2.5, max ≈ 5) and extreme spatial locality. The generator lays
//! vertices on a 2-D grid, connects each to its right/down neighbours with
//! high probability (the road mesh), and sprinkles a few diagonal shortcuts
//! (ramps/bridges).

use crate::nonzero_value;
use rand::Rng;
use sparsemat::Coo;

/// Generates the symmetric adjacency matrix of a road-like mesh over an
/// `nx × ny` vertex grid (`n = nx·ny` rows).
///
/// `keep` is the probability each mesh edge exists (1.0 = full grid);
/// `shortcut` is the probability a vertex gains one diagonal shortcut.
///
/// # Panics
///
/// Panics if `keep` or `shortcut` is outside `[0, 1]`.
pub fn road_mesh<R: Rng>(nx: usize, ny: usize, keep: f64, shortcut: f64, rng: &mut R) -> Coo<f32> {
    assert!((0.0..=1.0).contains(&keep), "keep {keep} outside [0, 1]");
    assert!(
        (0.0..=1.0).contains(&shortcut),
        "shortcut {shortcut} outside [0, 1]"
    );
    let n = nx * ny;
    let idx = |x: usize, y: usize| x * ny + y;
    let mut coo = Coo::with_capacity(n, n, 5 * n);
    let put = |coo: &mut Coo<f32>, a: usize, b: usize, rng: &mut R| {
        let v = nonzero_value(rng);
        coo.push(a, b, v).expect("in range");
        coo.push(b, a, v).expect("in range");
    };
    for x in 0..nx {
        for y in 0..ny {
            let i = idx(x, y);
            if x + 1 < nx && rng.gen_bool(keep) {
                put(&mut coo, i, idx(x + 1, y), rng);
            }
            if y + 1 < ny && rng.gen_bool(keep) {
                put(&mut coo, i, idx(x, y + 1), rng);
            }
            if x + 1 < nx && y + 1 < ny && rng.gen_bool(shortcut) {
                put(&mut coo, i, idx(x + 1, y + 1), rng);
            }
        }
    }
    let mut compressed = coo;
    compressed.compress();
    compressed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use sparsemat::Matrix;

    #[test]
    fn full_mesh_degree_is_bounded() {
        let m = road_mesh(20, 20, 1.0, 0.0, &mut seeded_rng(0));
        let max_deg = m.row_counts().into_iter().max().unwrap();
        assert!(max_deg <= 4, "grid degree {max_deg} > 4");
    }

    #[test]
    fn symmetric_adjacency() {
        let m = road_mesh(10, 10, 0.9, 0.1, &mut seeded_rng(1));
        let d = m.to_dense();
        for t in m.iter() {
            assert_eq!(d[(t.row, t.col)], d[(t.col, t.row)]);
        }
    }

    #[test]
    fn locality_keeps_entries_near_diagonal() {
        let m = road_mesh(12, 12, 1.0, 0.2, &mut seeded_rng(2));
        for t in m.iter() {
            let off = (t.row as isize - t.col as isize).unsigned_abs();
            assert!(off <= 13, "offset {off} exceeds grid stride + 1");
        }
    }

    #[test]
    fn keep_probability_scales_edges() {
        let full = road_mesh(16, 16, 1.0, 0.0, &mut seeded_rng(3)).nnz();
        let half = road_mesh(16, 16, 0.5, 0.0, &mut seeded_rng(3)).nnz();
        assert!(half < full);
        assert!(half > full / 4);
    }

    #[test]
    fn average_degree_is_road_like() {
        let m = road_mesh(30, 30, 0.9, 0.05, &mut seeded_rng(4));
        let avg = m.nnz() as f64 / m.nrows() as f64;
        assert!(
            (1.5..=4.5).contains(&avg),
            "average degree {avg} not road-like"
        );
    }
}
