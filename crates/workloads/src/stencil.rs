//! PDE discretization stencils (§3.1): "To use digital computers for solving
//! PDEs, they are discretized into a 3D grid [...] the coefficient matrix A
//! is sparse."
//!
//! These Laplacian stencil matrices back the structural/thermal/
//! electromagnetics stand-ins of Table 1 (dwt_918, thermomech_dK,
//! 2cubes_sphere): symmetric positive-definite band-plus-fringe matrices
//! exactly like FEM/FDM discretizations produce.

use sparsemat::Coo;

/// The 5-point Laplacian of an `nx × ny` 2-D grid: an
/// `(nx·ny) × (nx·ny)` symmetric positive-definite matrix with 4 on the
/// diagonal and −1 toward each grid neighbour.
pub fn laplacian_2d(nx: usize, ny: usize) -> Coo<f32> {
    let n = nx * ny;
    let idx = |x: usize, y: usize| x * ny + y;
    let mut coo = Coo::with_capacity(n, n, 5 * n);
    for x in 0..nx {
        for y in 0..ny {
            let i = idx(x, y);
            coo.push(i, i, 4.0).expect("in range");
            if x > 0 {
                coo.push(i, idx(x - 1, y), -1.0).expect("in range");
            }
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), -1.0).expect("in range");
            }
            if y > 0 {
                coo.push(i, idx(x, y - 1), -1.0).expect("in range");
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), -1.0).expect("in range");
            }
        }
    }
    coo
}

/// The 7-point Laplacian of an `nx × ny × nz` 3-D grid (6 on the diagonal,
/// −1 toward each of the six neighbours) — the discretization §3.1
/// describes for physical phenomena in 3-D.
pub fn laplacian_3d(nx: usize, ny: usize, nz: usize) -> Coo<f32> {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (x * ny + y) * nz + z;
    let mut coo = Coo::with_capacity(n, n, 7 * n);
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                let i = idx(x, y, z);
                coo.push(i, i, 6.0).expect("in range");
                if x > 0 {
                    coo.push(i, idx(x - 1, y, z), -1.0).expect("in range");
                }
                if x + 1 < nx {
                    coo.push(i, idx(x + 1, y, z), -1.0).expect("in range");
                }
                if y > 0 {
                    coo.push(i, idx(x, y - 1, z), -1.0).expect("in range");
                }
                if y + 1 < ny {
                    coo.push(i, idx(x, y + 1, z), -1.0).expect("in range");
                }
                if z > 0 {
                    coo.push(i, idx(x, y, z - 1), -1.0).expect("in range");
                }
                if z + 1 < nz {
                    coo.push(i, idx(x, y, z + 1), -1.0).expect("in range");
                }
            }
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{Dia, Matrix};

    #[test]
    fn laplacian_2d_shape_and_count() {
        let m = laplacian_2d(4, 5);
        assert_eq!(m.nrows(), 20);
        // nnz = 5n - 2*(boundary deficits): n + 2*(edges in grid graph).
        // Grid 4x5 has 4*4 + 3*5 = 31 edges, each giving two off-diagonals.
        assert_eq!(m.nnz(), 20 + 2 * 31);
    }

    #[test]
    fn laplacian_2d_is_symmetric() {
        let m = laplacian_2d(3, 3).to_dense();
        for r in 0..9 {
            for c in 0..9 {
                assert_eq!(m[(r, c)], m[(c, r)]);
            }
        }
    }

    #[test]
    fn laplacian_2d_rows_sum_to_boundary_deficit() {
        // Interior rows sum to 0; boundary rows are positive (diagonally
        // dominant → positive definite).
        let m = laplacian_2d(5, 5).to_dense();
        for r in 0..25 {
            let sum: f32 = (0..25).map(|c| m[(r, c)]).sum();
            assert!(sum >= 0.0);
        }
        // Center row of the 5x5 grid is interior.
        let center = 2 * 5 + 2;
        let sum: f32 = (0..25).map(|c| m[(center, c)]).sum();
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn laplacian_2d_is_banded() {
        // With y-major indexing, neighbours sit at offsets ±1 and ±ny.
        let dia = Dia::from(&laplacian_2d(6, 4));
        assert_eq!(dia.offsets(), &[-4, -1, 0, 1, 4]);
    }

    #[test]
    fn laplacian_3d_shape_and_symmetry() {
        let m = laplacian_3d(3, 3, 3);
        assert_eq!(m.nrows(), 27);
        let d = m.to_dense();
        for r in 0..27 {
            for c in 0..27 {
                assert_eq!(d[(r, c)], d[(c, r)]);
            }
        }
        assert_eq!(d[(13, 13)], 6.0); // center cell
    }

    #[test]
    fn laplacian_3d_diagonal_structure() {
        let dia = Dia::from(&laplacian_3d(4, 3, 2));
        // Offsets: ±1 (z), ±nz (y), ±ny*nz (x).
        assert_eq!(dia.offsets(), &[-6, -2, -1, 0, 1, 2, 6]);
    }
}
