//! Uniformly random sparse matrices (§3.2, first group).
//!
//! "The first group includes randomly generated sparse matrices, the density
//! of which varies from 0.0001 to 0.5."

use crate::nonzero_value;
use rand::Rng;
use sparsemat::Coo;
use std::collections::HashSet;

/// The density sweep the paper uses for its random-matrix figures
/// (Figs. 5, 10): 0.0001 to 0.5.
pub const PAPER_DENSITIES: [f64; 8] = [0.0001, 0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5];

/// Generates an `nrows × ncols` matrix with `round(density · nrows · ncols)`
/// uniformly placed non-zero entries.
///
/// Placement uses rejection sampling over distinct cells when the target is
/// sparse and a Bernoulli sweep when it is dense, so generation stays
/// `O(nnz)`-ish at both extremes.
///
/// # Panics
///
/// Panics if `density` is not within `[0, 1]`.
pub fn uniform<R: Rng>(nrows: usize, ncols: usize, density: f64, rng: &mut R) -> Coo<f32> {
    assert!(
        (0.0..=1.0).contains(&density),
        "density {density} outside [0, 1]"
    );
    let cells = nrows * ncols;
    let target = (density * cells as f64).round() as usize;
    let mut coo = Coo::with_capacity(nrows, ncols, target);
    if cells == 0 || target == 0 {
        return coo;
    }
    if target * 3 < cells {
        // Sparse regime: sample distinct cells.
        let mut used = HashSet::with_capacity(target * 2);
        while used.len() < target {
            let cell = rng.gen_range(0..cells);
            if used.insert(cell) {
                coo.push(cell / ncols, cell % ncols, nonzero_value(rng))
                    .expect("cell in range");
            }
        }
    } else {
        // Dense regime: one Bernoulli draw per cell hits the expected count;
        // then top up / trim to the exact target for determinism of nnz.
        let mut placed: Vec<usize> = Vec::with_capacity(target + target / 4);
        for cell in 0..cells {
            if rng.gen_bool(density) {
                placed.push(cell);
            }
        }
        while placed.len() > target {
            let k = rng.gen_range(0..placed.len());
            placed.swap_remove(k);
        }
        if placed.len() < target {
            let mut used: HashSet<usize> = placed.iter().copied().collect();
            while used.len() < target {
                let cell = rng.gen_range(0..cells);
                used.insert(cell);
            }
            placed = used.into_iter().collect();
        }
        for cell in placed {
            coo.push(cell / ncols, cell % ncols, nonzero_value(rng))
                .expect("cell in range");
        }
    }
    coo
}

/// Square convenience wrapper around [`uniform`].
pub fn uniform_square<R: Rng>(n: usize, density: f64, rng: &mut R) -> Coo<f32> {
    uniform(n, n, density, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use sparsemat::Matrix;

    #[test]
    fn hits_exact_target_nnz_in_sparse_regime() {
        let mut rng = seeded_rng(1);
        let m = uniform_square(100, 0.01, &mut rng);
        assert_eq!(m.nnz(), 100);
        assert_eq!((m.nrows(), m.ncols()), (100, 100));
    }

    #[test]
    fn hits_exact_target_nnz_in_dense_regime() {
        let mut rng = seeded_rng(2);
        let m = uniform_square(64, 0.5, &mut rng);
        assert_eq!(m.nnz(), (0.5 * 64.0 * 64.0) as usize);
    }

    #[test]
    fn zero_density_gives_empty_matrix() {
        let mut rng = seeded_rng(3);
        assert_eq!(uniform_square(50, 0.0, &mut rng).nnz(), 0);
    }

    #[test]
    fn full_density_gives_full_matrix() {
        let mut rng = seeded_rng(4);
        let m = uniform_square(16, 1.0, &mut rng);
        assert_eq!(m.nnz(), 256);
    }

    #[test]
    fn rectangular_shapes_work() {
        let mut rng = seeded_rng(5);
        let m = uniform(10, 200, 0.05, &mut rng);
        assert_eq!(m.nnz(), 100);
        assert_eq!((m.nrows(), m.ncols()), (10, 200));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = uniform_square(40, 0.1, &mut seeded_rng(9));
        let b = uniform_square(40, 0.1, &mut seeded_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_density() {
        uniform_square(10, 1.5, &mut seeded_rng(0));
    }

    #[test]
    fn paper_densities_span_the_paper_range() {
        assert_eq!(PAPER_DENSITIES.first(), Some(&0.0001));
        assert_eq!(PAPER_DENSITIES.last(), Some(&0.5));
        assert!(PAPER_DENSITIES.windows(2).all(|w| w[0] < w[1]));
    }
}
