//! MatrixMarket (`.mtx`) I/O.
//!
//! The paper obtains its real-world workloads from the SuiteSparse matrix
//! collection, which distributes MatrixMarket files. This reader/writer lets
//! users of the reproduction drop in the real matrices; the bundled
//! experiments fall back to the synthesized stand-ins in [`crate::suite`].
//!
//! Supported: `matrix coordinate (real | integer | pattern)
//! (general | symmetric | skew-symmetric)`.

use sparsemat::{Coo, Matrix};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced by MatrixMarket parsing and serialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line was missing or malformed.
    BadHeader(String),
    /// The file declares a format this reader does not support (e.g. dense
    /// `array` storage or `complex` fields).
    Unsupported(String),
    /// An entry or size line failed to parse.
    BadLine {
        /// 1-based line number within the file.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The number of entry lines does not match the nnz declared on the
    /// size line (counted before symmetric expansion).
    CountMismatch {
        /// nnz declared on the size line.
        declared: usize,
        /// Entry lines actually present.
        found: usize,
    },
}

impl fmt::Display for MtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "i/o error: {e}"),
            MtxError::BadHeader(s) => write!(f, "malformed MatrixMarket header: {s}"),
            MtxError::Unsupported(s) => write!(f, "unsupported MatrixMarket variant: {s}"),
            MtxError::BadLine { line, message } => {
                write!(f, "line {line}: {message}")
            }
            MtxError::CountMismatch { declared, found } => {
                write!(
                    f,
                    "size line declares {declared} entries but the file has {found}"
                )
            }
        }
    }
}

impl std::error::Error for MtxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MtxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a MatrixMarket coordinate file into COO.
///
/// Symmetric and skew-symmetric files are expanded to their full (general)
/// entry set, matching how SuiteSparse matrices are consumed.
///
/// # Errors
///
/// Returns [`MtxError`] on I/O failure, malformed headers/lines, or
/// unsupported variants.
pub fn read_mtx<R: BufRead>(reader: R) -> Result<Coo<f32>, MtxError> {
    let mut lines = reader.lines().enumerate();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (_, header) = lines
        .next()
        .ok_or_else(|| MtxError::BadHeader("empty file".into()))?;
    let header = header?;
    let parts: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_ascii_lowercase())
        .collect();
    if parts.len() < 5 || parts[0] != "%%matrixmarket" || parts[1] != "matrix" {
        return Err(MtxError::BadHeader(header));
    }
    if parts[2] != "coordinate" {
        return Err(MtxError::Unsupported(format!("storage {:?}", parts[2])));
    }
    let field = match parts[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(MtxError::Unsupported(format!("field {other:?}"))),
    };
    let symmetry = match parts[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return Err(MtxError::Unsupported(format!("symmetry {other:?}"))),
    };

    // Size line: first non-comment, non-blank line.
    let mut size: Option<(usize, usize, usize)> = None;
    let mut coo: Option<Coo<f32>> = None;
    // Entry lines seen so far, counted before symmetric expansion so it is
    // directly comparable to the declared nnz.
    let mut entries = 0usize;
    for (i, line) in lines {
        let line = line?;
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        match size {
            None => {
                if fields.len() != 3 {
                    return Err(MtxError::BadLine {
                        line: line_no,
                        message: format!("expected 'rows cols nnz', got {trimmed:?}"),
                    });
                }
                let parse = |s: &str| {
                    s.parse::<usize>().map_err(|e| MtxError::BadLine {
                        line: line_no,
                        message: format!("bad size value {s:?}: {e}"),
                    })
                };
                let (r, c, n) = (parse(fields[0])?, parse(fields[1])?, parse(fields[2])?);
                size = Some((r, c, n));
                coo = Some(Coo::with_capacity(r, c, n));
            }
            Some(_) => {
                let coo = coo.as_mut().expect("allocated with size");
                let want = match field {
                    Field::Pattern => 2,
                    _ => 3,
                };
                if fields.len() < want {
                    return Err(MtxError::BadLine {
                        line: line_no,
                        message: format!("expected {want} fields, got {trimmed:?}"),
                    });
                }
                let parse_idx = |s: &str| {
                    s.parse::<usize>()
                        .ok()
                        .filter(|&v| v >= 1)
                        .ok_or_else(|| MtxError::BadLine {
                            line: line_no,
                            message: format!("bad 1-based index {s:?}"),
                        })
                };
                let r = parse_idx(fields[0])? - 1;
                let c = parse_idx(fields[1])? - 1;
                let v: f32 = match field {
                    Field::Pattern => 1.0,
                    _ => fields[2].parse().map_err(|e| MtxError::BadLine {
                        line: line_no,
                        message: format!("bad value {:?}: {e}", fields[2]),
                    })?,
                };
                // Symmetric variants store the lower triangle only; an
                // upper-triangle entry would silently double after
                // expansion, and a skew-symmetric diagonal must be zero
                // (and is therefore omitted by convention).
                if symmetry != Symmetry::General && r < c {
                    return Err(MtxError::BadLine {
                        line: line_no,
                        message: format!(
                            "entry ({}, {}) is above the diagonal in a {} file, \
                             which stores the lower triangle only",
                            r + 1,
                            c + 1,
                            if symmetry == Symmetry::Symmetric {
                                "symmetric"
                            } else {
                                "skew-symmetric"
                            },
                        ),
                    });
                }
                if symmetry == Symmetry::SkewSymmetric && r == c {
                    return Err(MtxError::BadLine {
                        line: line_no,
                        message: format!(
                            "diagonal entry ({}, {}) in a skew-symmetric file \
                             (the diagonal is identically zero and must be omitted)",
                            r + 1,
                            c + 1,
                        ),
                    });
                }
                entries += 1;
                coo.push(r, c, v).map_err(|e| MtxError::BadLine {
                    line: line_no,
                    message: e.to_string(),
                })?;
                if r != c {
                    match symmetry {
                        Symmetry::General => {}
                        Symmetry::Symmetric => {
                            coo.push(c, r, v).map_err(|e| MtxError::BadLine {
                                line: line_no,
                                message: e.to_string(),
                            })?;
                        }
                        Symmetry::SkewSymmetric => {
                            coo.push(c, r, -v).map_err(|e| MtxError::BadLine {
                                line: line_no,
                                message: e.to_string(),
                            })?;
                        }
                    }
                }
            }
        }
    }
    let coo = coo.ok_or_else(|| MtxError::BadHeader("file has no size line".into()))?;
    let declared = size.expect("size set alongside coo").2;
    if entries != declared {
        return Err(MtxError::CountMismatch {
            declared,
            found: entries,
        });
    }
    Ok(coo)
}

/// Writes a matrix as `matrix coordinate real general`, 1-based, row-major.
///
/// # Errors
///
/// Returns [`MtxError::Io`] on write failure.
pub fn write_mtx<W: Write, M: Matrix<f32>>(writer: &mut W, matrix: &M) -> Result<(), MtxError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(
        writer,
        "% written by the Copernicus reproduction workload crate"
    )?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz()
    )?;
    let mut ts = matrix.triplets();
    sparsemat::triplet::sort_row_major(&mut ts);
    for t in ts {
        writeln!(writer, "{} {} {}", t.row + 1, t.col + 1, t.val)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(s: &str) -> Result<Coo<f32>, MtxError> {
        read_mtx(Cursor::new(s))
    }

    #[test]
    fn round_trip_through_writer_and_reader() {
        let mut coo = Coo::<f32>::new(3, 4);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(2, 3, -2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let mut buf = Vec::new();
        write_mtx(&mut buf, &coo).unwrap();
        let back = read_mtx(Cursor::new(buf)).unwrap();
        assert!(coo.to_dense().structurally_eq(&back));
    }

    #[test]
    fn reads_general_real() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             % a comment\n\
             2 2 2\n\
             1 1 4.0\n\
             2 2 -1.0\n",
        )
        .unwrap();
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(1, 1), -1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn expands_symmetric() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             3 3 2\n\
             2 1 5.0\n\
             3 3 1.0\n",
        )
        .unwrap();
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn expands_skew_symmetric_with_negation() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n\
             2 2 1\n\
             2 1 3.0\n",
        )
        .unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(0, 1), -3.0);
    }

    #[test]
    fn pattern_entries_become_ones() {
        let m = parse(
            "%%MatrixMarket matrix coordinate pattern general\n\
             2 2 2\n\
             1 2\n\
             2 1\n",
        )
        .unwrap();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    fn integer_field_parses() {
        let m = parse(
            "%%MatrixMarket matrix coordinate integer general\n\
             1 1 1\n\
             1 1 7\n",
        )
        .unwrap();
        assert_eq!(m.get(0, 0), 7.0);
    }

    #[test]
    fn rejects_array_storage() {
        let e = parse("%%MatrixMarket matrix array real general\n1 1\n1.0\n").unwrap_err();
        assert!(matches!(e, MtxError::Unsupported(_)));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(parse("hello\n"), Err(MtxError::BadHeader(_))));
        assert!(matches!(parse(""), Err(MtxError::BadHeader(_))));
    }

    #[test]
    fn reports_line_numbers_on_bad_entries() {
        let e = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             2 2 1\n\
             0 1 3.0\n",
        )
        .unwrap_err();
        match e {
            MtxError::BadLine { line, .. } => assert_eq!(line, 3),
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_reports_count_mismatch() {
        let e = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             3 3 3\n\
             1 1 1.0\n\
             2 2 2.0\n",
        )
        .unwrap_err();
        match e {
            MtxError::CountMismatch { declared, found } => {
                assert_eq!(declared, 3);
                assert_eq!(found, 2);
            }
            other => panic!("expected CountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn surplus_entries_report_count_mismatch() {
        let e = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             3 3 1\n\
             1 1 1.0\n\
             2 2 2.0\n",
        )
        .unwrap_err();
        assert!(matches!(
            e,
            MtxError::CountMismatch {
                declared: 1,
                found: 2
            }
        ));
    }

    #[test]
    fn count_is_checked_before_symmetric_expansion() {
        // 2 stored entries expand to 3, but the declared nnz counts stored
        // entries, so this parses cleanly.
        let m = parse(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             3 3 2\n\
             2 1 5.0\n\
             3 3 1.0\n",
        )
        .unwrap();
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn symmetric_upper_triangle_entry_is_rejected() {
        let e = parse(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             3 3 1\n\
             1 2 5.0\n",
        )
        .unwrap_err();
        match e {
            MtxError::BadLine { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("above the diagonal"), "{message}");
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn skew_symmetric_upper_triangle_entry_is_rejected() {
        let e = parse(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n\
             3 3 1\n\
             1 3 5.0\n",
        )
        .unwrap_err();
        assert!(matches!(e, MtxError::BadLine { line: 3, .. }));
    }

    #[test]
    fn skew_symmetric_diagonal_entry_is_rejected() {
        let e = parse(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n\
             2 2 1\n\
             2 2 1.0\n",
        )
        .unwrap_err();
        match e {
            MtxError::BadLine { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("diagonal"), "{message}");
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn symmetric_diagonal_entries_are_allowed() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             2 2 1\n\
             1 1 4.0\n",
        )
        .unwrap();
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn out_of_bounds_entry_is_reported() {
        let e = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             2 2 1\n\
             3 1 1.0\n",
        )
        .unwrap_err();
        assert!(matches!(e, MtxError::BadLine { .. }));
    }
}
