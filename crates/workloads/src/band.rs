//! Band and diagonal matrices (§3.2, second group).
//!
//! "A band matrix is a sparse matrix, the non-zero entries of which are
//! confined to a diagonal band [...] The width of a band matrix is the
//! number k such that `a[i,j] = 0` if `|i − j| > k/2`. We generate and
//! evaluate band matrices of size 8000 with widths of 2, 4, 16, 32, and 64."

use crate::nonzero_value;
use rand::Rng;
use sparsemat::Coo;

/// The matrix size the paper's band experiments use.
pub const PAPER_SIZE: usize = 8000;

/// The band widths the paper sweeps in Figs. 6 and 11 (1 = pure diagonal).
pub const PAPER_WIDTHS: [usize; 6] = [1, 2, 4, 16, 32, 64];

/// Generates an `n × n` band matrix of width `k`: every cell with
/// `|i − j| ≤ k/2` holds a non-zero value.
///
/// With `k = 1` this degenerates to the pure diagonal matrix of §3.2
/// ("a type of band matrices consisting of only the main diagonal").
///
/// # Panics
///
/// Panics if `width == 0` (a width-0 band has no cells by the paper's
/// definition, which would make `nnz = 0`; ask for what you mean instead).
pub fn band<R: Rng>(n: usize, width: usize, rng: &mut R) -> Coo<f32> {
    assert!(width > 0, "band width must be positive (1 = diagonal)");
    let half = width / 2;
    let mut coo = Coo::with_capacity(n, n, n * (2 * half + 1));
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half).min(n.saturating_sub(1));
        for j in lo..=hi {
            coo.push(i, j, nonzero_value(rng)).expect("cell in range");
        }
    }
    coo
}

/// Generates the pure `n × n` diagonal matrix (band width 1).
pub fn diagonal<R: Rng>(n: usize, rng: &mut R) -> Coo<f32> {
    band(n, 1, rng)
}

/// Expected nnz of a full band of width `k` on an `n × n` matrix — used by
/// tests and by the suite registry when matching densities.
pub fn band_nnz(n: usize, width: usize) -> usize {
    let half = width / 2;
    (0..n)
        .map(|i| (i + half).min(n.saturating_sub(1)) - i.saturating_sub(half) + 1)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use sparsemat::{Dia, Matrix, Scalar as _};

    #[test]
    fn diagonal_has_exactly_n_entries() {
        let m = diagonal(64, &mut seeded_rng(0));
        assert_eq!(m.nnz(), 64);
        let dia = Dia::from(&m);
        assert!(dia.is_main_diagonal_only());
    }

    #[test]
    fn width_two_is_main_plus_lower_and_upper() {
        // k = 2 → half = 1 → tridiagonal occupancy.
        let m = band(10, 2, &mut seeded_rng(1));
        assert_eq!(m.nnz(), band_nnz(10, 2));
        assert_eq!(m.nnz(), 10 + 9 + 9);
        assert_eq!(Dia::from(&m).offsets(), &[-1, 0, 1]);
    }

    #[test]
    fn entries_respect_the_band_bound() {
        for width in PAPER_WIDTHS {
            let m = band(50, width, &mut seeded_rng(2));
            let half = (width / 2) as isize;
            for t in m.iter() {
                let d = t.col as isize - t.row as isize;
                assert!(d.abs() <= half, "width {width}: offset {d}");
            }
        }
    }

    #[test]
    fn band_fills_every_cell_in_band() {
        let m = band(20, 16, &mut seeded_rng(3));
        assert_eq!(m.nnz(), band_nnz(20, 16));
        let d = m.to_dense();
        for i in 0..20usize {
            for j in 0..20usize {
                let inside = (i as isize - j as isize).unsigned_abs() <= 8;
                assert_eq!(!d[(i, j)].is_zero(), inside, "({i},{j})");
            }
        }
    }

    #[test]
    fn bandwidth_grows_with_width() {
        let widths: Vec<usize> = PAPER_WIDTHS
            .iter()
            .map(|&w| Dia::from(&band(100, w, &mut seeded_rng(4))).bandwidth())
            .collect();
        assert!(widths.windows(2).all(|w| w[0] <= w[1]), "{widths:?}");
    }

    #[test]
    #[should_panic(expected = "band width must be positive")]
    fn zero_width_rejected() {
        band(8, 0, &mut seeded_rng(5));
    }
}
