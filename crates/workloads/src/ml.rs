//! Machine-learning sparsity generators — §3.1 of the paper: "Since after
//! training, close-to-zero values are assigned to several model
//! parameters, a common practice is to prune those values [...] The
//! recommendation system models are the other instance of sparse problems
//! [...] accesses to [embedding tables] are random and sparse."

use crate::{nonzero_value, random};
use rand::Rng;
use sparsemat::Coo;
use std::collections::HashSet;

/// A pruned weight matrix with *unstructured* sparsity: uniform random
/// surviving weights at the given density — the "random and varies case by
/// case" sparsity §3.1 ascribes to magnitude pruning.
pub fn pruned_unstructured<R: Rng>(
    out_features: usize,
    in_features: usize,
    density: f64,
    rng: &mut R,
) -> Coo<f32> {
    random::uniform(out_features, in_features, density, rng)
}

/// A pruned weight matrix with *structured block* sparsity: surviving
/// weights come in dense `block×block` tiles, the pattern §8 recommends
/// ("Extracting the non-zero partitions [...] can be done with the aid of
/// structure pruning schemes") because it keeps whole partitions non-zero.
///
/// `block_density` is the fraction of blocks kept; kept blocks are fully
/// dense.
///
/// # Panics
///
/// Panics if `block == 0` or `block_density` is outside `[0, 1]`.
pub fn pruned_block<R: Rng>(
    out_features: usize,
    in_features: usize,
    block: usize,
    block_density: f64,
    rng: &mut R,
) -> Coo<f32> {
    assert!(block > 0, "block size must be positive");
    assert!(
        (0.0..=1.0).contains(&block_density),
        "block density {block_density} outside [0, 1]"
    );
    let block_rows = out_features.div_ceil(block);
    let block_cols = in_features.div_ceil(block);
    let total_blocks = block_rows * block_cols;
    let keep = (block_density * total_blocks as f64).round() as usize;

    let mut kept: HashSet<usize> = HashSet::with_capacity(keep * 2);
    while kept.len() < keep {
        kept.insert(rng.gen_range(0..total_blocks));
    }
    // Emit blocks in sorted order so the generated matrix is deterministic
    // (hash iteration order is not).
    let mut kept_sorted: Vec<usize> = kept.into_iter().collect();
    kept_sorted.sort_unstable();
    let mut coo = Coo::with_capacity(out_features, in_features, kept_sorted.len() * block * block);
    for bid in kept_sorted {
        let (br, bc) = (bid / block_cols, bid % block_cols);
        for lr in 0..block {
            for lc in 0..block {
                let (r, c) = (br * block + lr, bc * block + lc);
                if r < out_features && c < in_features {
                    coo.push(r, c, nonzero_value(rng)).expect("in range");
                }
            }
        }
    }
    coo
}

/// An embedding-lookup access matrix for a recommendation model: each of
/// `batch` lookups gathers `indices_per_lookup` rows of a table with
/// `table_rows` entries. Row `i` of the result holds ones at the table
/// indices lookup `i` touches — multiplying it by the embedding table is
/// the "reduction operation (e.g., summation) that can also be implemented
/// using a dot-product engine" §3.3 describes.
///
/// `hot_fraction` of accesses concentrate on the 10 % hottest rows
/// (recommendation traffic is famously skewed).
///
/// # Panics
///
/// Panics if `table_rows == 0`, `indices_per_lookup == 0`, or
/// `hot_fraction` is outside `[0, 1]`.
pub fn embedding_access<R: Rng>(
    batch: usize,
    table_rows: usize,
    indices_per_lookup: usize,
    hot_fraction: f64,
    rng: &mut R,
) -> Coo<f32> {
    assert!(table_rows > 0, "table must have rows");
    assert!(indices_per_lookup > 0, "lookups must gather something");
    assert!(
        (0.0..=1.0).contains(&hot_fraction),
        "hot fraction {hot_fraction} outside [0, 1]"
    );
    let hot_rows = (table_rows / 10).max(1);
    let mut coo = Coo::with_capacity(batch, table_rows, batch * indices_per_lookup);
    for b in 0..batch {
        let mut used = HashSet::with_capacity(indices_per_lookup * 2);
        let mut attempts = 0;
        while used.len() < indices_per_lookup.min(table_rows) && attempts < table_rows * 4 {
            attempts += 1;
            let idx = if rng.gen_bool(hot_fraction) {
                rng.gen_range(0..hot_rows)
            } else {
                rng.gen_range(0..table_rows)
            };
            if used.insert(idx) {
                coo.push(b, idx, 1.0).expect("in range");
            }
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use sparsemat::{Matrix, PartitionGrid};

    #[test]
    fn block_pruning_keeps_dense_tiles() {
        let m = pruned_block(64, 64, 8, 0.25, &mut seeded_rng(1));
        // 64 blocks total, 16 kept, each 64 entries.
        assert_eq!(m.nnz(), 16 * 64);
        // Every 8x8 tile is either fully dense or fully empty.
        let grid = PartitionGrid::new(&m, 8).unwrap();
        for part in grid.partitions() {
            assert_eq!(
                part.nnz(),
                64,
                "partial tile at {:?}",
                (part.grid_row, part.grid_col)
            );
        }
    }

    #[test]
    fn block_pruning_beats_unstructured_on_partition_stats() {
        // The §8 argument: at equal density, block pruning leaves far fewer
        // non-zero partitions to transfer.
        let blocked = pruned_block(128, 128, 8, 0.1, &mut seeded_rng(2));
        let unstructured = pruned_unstructured(128, 128, blocked.density(), &mut seeded_rng(3));
        let gb = PartitionGrid::new(&blocked, 8).unwrap();
        let gu = PartitionGrid::new(&unstructured, 8).unwrap();
        assert!(
            gb.nonzero_tiles() < gu.nonzero_tiles() / 2,
            "blocked {} vs unstructured {}",
            gb.nonzero_tiles(),
            gu.nonzero_tiles()
        );
    }

    #[test]
    fn block_pruning_handles_edge_blocks() {
        let m = pruned_block(10, 13, 4, 1.0, &mut seeded_rng(4));
        assert_eq!((m.nrows(), m.ncols()), (10, 13));
        assert_eq!(m.nnz(), 10 * 13); // all blocks kept, clipped at edges
    }

    #[test]
    fn embedding_rows_have_exact_lookup_counts() {
        let m = embedding_access(32, 1000, 8, 0.5, &mut seeded_rng(5));
        assert_eq!((m.nrows(), m.ncols()), (32, 1000));
        for (row, count) in m.row_counts().into_iter().enumerate() {
            assert_eq!(count, 8, "row {row}");
        }
    }

    #[test]
    fn embedding_skew_concentrates_on_hot_rows() {
        let hot = embedding_access(200, 500, 4, 0.9, &mut seeded_rng(6));
        let cold = embedding_access(200, 500, 4, 0.0, &mut seeded_rng(6));
        let hot_mass =
            |m: &Coo<f32>| m.iter().filter(|t| t.col < 50).count() as f64 / m.nnz() as f64;
        assert!(hot_mass(&hot) > 0.8, "hot mass {}", hot_mass(&hot));
        assert!(hot_mass(&cold) < 0.3, "cold mass {}", hot_mass(&cold));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            pruned_block(32, 32, 4, 0.5, &mut seeded_rng(7)),
            pruned_block(32, 32, 4, 0.5, &mut seeded_rng(7))
        );
        assert_eq!(
            embedding_access(8, 64, 4, 0.5, &mut seeded_rng(8)),
            embedding_access(8, 64, 4, 0.5, &mut seeded_rng(8))
        );
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        pruned_block(8, 8, 0, 0.5, &mut seeded_rng(0));
    }
}
