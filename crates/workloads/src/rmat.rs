//! R-MAT (recursive matrix) graph generator — the stand-in for the paper's
//! power-law graphs (soc-LiveJournal1, web-Google, flickr, wiki-Talk,
//! kron_g500-logn21, …).
//!
//! R-MAT recursively descends into matrix quadrants with skewed
//! probabilities, producing the heavy-tailed degree distribution and
//! community block structure real web/social graphs show. kron_g500 *is* a
//! Kronecker/R-MAT graph, so the stand-in is exact in kind for it.

use crate::nonzero_value;
use rand::Rng;
use sparsemat::{Coo, Matrix as _};
use std::collections::HashSet;

/// Quadrant probabilities of the R-MAT recursion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters (a, b, c, d) =
    /// (0.57, 0.19, 0.19, 0.05).
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// The implied bottom-right probability `d = 1 − a − b − c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Validates that all four probabilities are non-negative and sum to 1.
    pub fn is_valid(&self) -> bool {
        self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d() >= -1e-12
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams::GRAPH500
    }
}

/// Generates the adjacency matrix of an R-MAT graph with `2^scale` vertices
/// and (up to) `edges` distinct directed edges.
///
/// Duplicate edge draws are re-rolled a bounded number of times, so the
/// produced edge count can fall slightly short of `edges` on very dense
/// requests — matching how Graph500 generators behave.
///
/// # Panics
///
/// Panics if `params` is not a valid probability split or `scale` exceeds
/// 30 (the matrix index would overflow practical memory long before).
pub fn rmat<R: Rng>(scale: u32, edges: usize, params: RmatParams, rng: &mut R) -> Coo<f32> {
    assert!(params.is_valid(), "invalid R-MAT probabilities: {params:?}");
    assert!(scale <= 30, "scale {scale} too large");
    let n = 1usize << scale;
    let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(edges * 2);
    let mut coo = Coo::with_capacity(n, n, edges);
    let max_attempts = edges.saturating_mul(8).max(64);
    let mut attempts = 0usize;
    while seen.len() < edges && attempts < max_attempts {
        attempts += 1;
        let (mut r0, mut r1) = (0usize, n);
        let (mut c0, mut c1) = (0usize, n);
        while r1 - r0 > 1 {
            let p: f64 = rng.gen();
            let (down, right) = if p < params.a {
                (false, false)
            } else if p < params.a + params.b {
                (false, true)
            } else if p < params.a + params.b + params.c {
                (true, false)
            } else {
                (true, true)
            };
            let rm = (r0 + r1) / 2;
            let cm = (c0 + c1) / 2;
            if down {
                r0 = rm;
            } else {
                r1 = rm;
            }
            if right {
                c0 = cm;
            } else {
                c1 = cm;
            }
        }
        if seen.insert((r0, c0)) {
            coo.push(r0, c0, nonzero_value(rng)).expect("in range");
        }
    }
    coo
}

/// Convenience: an undirected R-MAT graph (each generated edge mirrored,
/// self-loops kept single) — stand-in for the undirected SuiteSparse graphs.
pub fn rmat_symmetric<R: Rng>(
    scale: u32,
    edges: usize,
    params: RmatParams,
    rng: &mut R,
) -> Coo<f32> {
    let half = rmat(scale, edges.div_ceil(2), params, rng);
    let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(edges * 2);
    let mut coo = Coo::with_capacity(half.nrows(), half.ncols(), edges);
    for t in half.iter() {
        if seen.insert((t.row, t.col)) {
            coo.push(t.row, t.col, t.val).expect("in range");
        }
        if t.row != t.col && seen.insert((t.col, t.row)) {
            coo.push(t.col, t.row, t.val).expect("in range");
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use sparsemat::{Matrix, Scalar as _};

    #[test]
    fn generates_requested_edges() {
        let g = rmat(8, 500, RmatParams::GRAPH500, &mut seeded_rng(0));
        assert_eq!(g.nnz(), 500);
        assert_eq!(g.nrows(), 256);
    }

    #[test]
    fn edges_are_distinct() {
        let g = rmat(7, 400, RmatParams::GRAPH500, &mut seeded_rng(1));
        let mut coords: Vec<(usize, usize)> = g.iter().map(|t| (t.row, t.col)).collect();
        let before = coords.len();
        coords.sort_unstable();
        coords.dedup();
        assert_eq!(coords.len(), before);
    }

    #[test]
    fn skewed_parameters_produce_heavy_rows() {
        // With Graph500 skew, the max row degree should far exceed the mean.
        let g = rmat(9, 2000, RmatParams::GRAPH500, &mut seeded_rng(2));
        let counts = g.row_counts();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = g.nnz() as f64 / g.nrows() as f64;
        assert!(
            max > 4.0 * mean,
            "max degree {max} not heavy-tailed vs mean {mean}"
        );
    }

    #[test]
    fn uniform_parameters_produce_flat_rows() {
        let uniform = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = rmat(9, 2000, uniform, &mut seeded_rng(3));
        let counts = g.row_counts();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = g.nnz() as f64 / g.nrows() as f64;
        assert!(max < 6.0 * mean, "uniform RMAT unexpectedly skewed");
    }

    #[test]
    fn symmetric_variant_is_symmetric() {
        let g = rmat_symmetric(7, 300, RmatParams::GRAPH500, &mut seeded_rng(4));
        let d = g.to_dense();
        for t in g.iter() {
            assert!(
                !d[(t.col, t.row)].is_zero(),
                "missing mirror of ({},{})",
                t.row,
                t.col
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(6, 100, RmatParams::GRAPH500, &mut seeded_rng(5));
        let b = rmat(6, 100, RmatParams::GRAPH500, &mut seeded_rng(5));
        assert_eq!(a, b);
    }

    #[test]
    fn params_validation() {
        assert!(RmatParams::GRAPH500.is_valid());
        assert!((RmatParams::GRAPH500.d() - 0.05).abs() < 1e-12);
        let bad = RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.1,
        };
        assert!(!bad.is_valid());
    }
}
