//! The Table-1 SuiteSparse registry and its synthesized stand-ins.
//!
//! The paper characterizes 20 matrices from the SuiteSparse collection
//! (Table 1). Those files are not redistributable inside this repository
//! and several are far beyond laptop scale (europe_osm: 50.9 M rows, 108 M
//! non-zeros), so each entry here carries (a) the published dimensions for
//! the record and (b) a *generator family* that synthesizes a
//! structure-matched stand-in at a caller-chosen scale: same matrix kind,
//! same average row population, same locality regime.
//!
//! The characterization consumes only per-partition statistics (Fig. 3), so
//! a kind- and density-matched stand-in lands the experiments in the same
//! operating regime as the original. Real `.mtx` files can be substituted
//! via [`crate::mtx::read_mtx`].

use crate::rmat::RmatParams;
use crate::{circuit, nonzero_value, rmat, road, seeded_rng, stencil};
use rand::Rng;
use sparsemat::{Coo, Matrix};
use std::collections::HashSet;

/// Structural family used to synthesize a stand-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// Power-law directed graph (web / social / citation).
    PowerLawGraph {
        /// R-MAT top-left skew; higher = heavier tail.
        skew: f64,
    },
    /// Undirected power-law multigraph (Kronecker / kron_g500).
    PowerLawSymmetric,
    /// Road-style planar mesh with tiny bounded degree.
    RoadMesh,
    /// Modified-nodal-analysis circuit matrix.
    Circuit {
        /// Fraction of couplings within the local window.
        locality: f64,
    },
    /// 2-D FEM/FDM discretization (band plus fringe).
    Fem2d,
    /// 3-D FEM/FDM discretization (multi-band plus fringe).
    Fem3d,
    /// Unstructured uniform sparsity (LP constraint matrices, bio networks).
    Uniform,
}

/// One row of Table 1 plus its stand-in generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteMatrix {
    /// The two-letter ID the paper's figures use (e.g. `"KR"`).
    pub id: &'static str,
    /// SuiteSparse matrix name.
    pub name: &'static str,
    /// Published dimension, in millions of rows/columns.
    pub dim_millions: f64,
    /// Published non-zero count, in millions.
    pub nnz_millions: f64,
    /// The "Kind" column of Table 1.
    pub kind: &'static str,
    /// Generator family for the synthesized stand-in.
    pub family: Family,
}

/// The 20 matrices of Table 1, in the paper's order.
pub const SUITE: [SuiteMatrix; 20] = [
    SuiteMatrix {
        id: "2C",
        name: "2cubes_sphere",
        dim_millions: 0.101,
        nnz_millions: 1.647,
        kind: "Electromagnetics Problem",
        family: Family::Fem3d,
    },
    SuiteMatrix {
        id: "FR",
        name: "Freescale2",
        dim_millions: 2.9,
        nnz_millions: 14.3,
        kind: "Circuit Sim. Matrix",
        family: Family::Circuit { locality: 0.9 },
    },
    SuiteMatrix {
        id: "RE",
        name: "N_reactome",
        dim_millions: 0.016,
        nnz_millions: 0.043,
        kind: "Biochemical Network",
        family: Family::Uniform,
    },
    SuiteMatrix {
        id: "AM",
        name: "amazon0601",
        dim_millions: 0.4,
        nnz_millions: 3.3,
        kind: "Directed Graph",
        family: Family::PowerLawGraph { skew: 0.45 },
    },
    SuiteMatrix {
        id: "DW",
        name: "dwt_918",
        dim_millions: 0.000918,
        nnz_millions: 0.0073,
        kind: "Structural Problem",
        family: Family::Fem2d,
    },
    SuiteMatrix {
        id: "EO",
        name: "europe_osm",
        dim_millions: 50.9,
        nnz_millions: 108.0,
        kind: "Undirected Graph",
        family: Family::RoadMesh,
    },
    SuiteMatrix {
        id: "FL",
        name: "flickr",
        dim_millions: 0.82,
        nnz_millions: 9.8,
        kind: "Directed Graph",
        family: Family::PowerLawGraph { skew: 0.57 },
    },
    SuiteMatrix {
        id: "HC",
        name: "hcircuit",
        dim_millions: 0.1,
        nnz_millions: 0.51,
        kind: "Circuit Sim. Problem",
        family: Family::Circuit { locality: 0.85 },
    },
    SuiteMatrix {
        id: "HU",
        name: "hugebubbles",
        dim_millions: 18.3,
        nnz_millions: 54.9,
        kind: "Undirected Graph",
        family: Family::RoadMesh,
    },
    SuiteMatrix {
        id: "KR",
        name: "kron_g500-logn21",
        dim_millions: 2.0,
        nnz_millions: 182.0,
        kind: "Undirected Multigraph",
        family: Family::PowerLawSymmetric,
    },
    SuiteMatrix {
        id: "RL",
        name: "rail582",
        dim_millions: 0.056,
        nnz_millions: 0.4,
        kind: "Linear Prog. Problem",
        family: Family::Uniform,
    },
    SuiteMatrix {
        id: "RJ",
        name: "rajat31",
        dim_millions: 4.6,
        nnz_millions: 20.3,
        kind: "Circuit Sim. Problem",
        family: Family::Circuit { locality: 0.9 },
    },
    SuiteMatrix {
        id: "RO",
        name: "roadNet-TX",
        dim_millions: 1.3,
        nnz_millions: 3.8,
        kind: "Undirected Graph",
        family: Family::RoadMesh,
    },
    SuiteMatrix {
        id: "RC",
        name: "road_central",
        dim_millions: 14.0,
        nnz_millions: 33.8,
        kind: "Undirected Graph",
        family: Family::RoadMesh,
    },
    SuiteMatrix {
        id: "LJ",
        name: "soc-LiveJournal1",
        dim_millions: 4.8,
        nnz_millions: 68.9,
        kind: "Directed Graph",
        family: Family::PowerLawGraph { skew: 0.57 },
    },
    SuiteMatrix {
        id: "TH",
        name: "thermomech_dK",
        dim_millions: 0.2,
        nnz_millions: 2.8,
        kind: "Thermal Problem",
        family: Family::Fem3d,
    },
    SuiteMatrix {
        id: "WE",
        name: "wb-edu",
        dim_millions: 9.8,
        nnz_millions: 57.1,
        kind: "Directed Graph",
        family: Family::PowerLawGraph { skew: 0.57 },
    },
    SuiteMatrix {
        id: "WG",
        name: "web-Google",
        dim_millions: 0.91,
        nnz_millions: 5.1,
        kind: "Directed Graph",
        family: Family::PowerLawGraph { skew: 0.57 },
    },
    SuiteMatrix {
        id: "WT",
        name: "wiki-Talk",
        dim_millions: 2.3,
        nnz_millions: 5.0,
        kind: "Directed Graph",
        family: Family::PowerLawGraph { skew: 0.65 },
    },
    SuiteMatrix {
        id: "WI",
        name: "wikipedia",
        dim_millions: 3.5,
        nnz_millions: 45.0,
        kind: "Directed Graph",
        family: Family::PowerLawGraph { skew: 0.57 },
    },
];

impl SuiteMatrix {
    /// Looks up a suite entry by its two-letter ID (case-insensitive).
    pub fn by_id(id: &str) -> Option<&'static SuiteMatrix> {
        SUITE.iter().find(|m| m.id.eq_ignore_ascii_case(id))
    }

    /// The published average row population `nnz / dim`.
    pub fn avg_row_nnz(&self) -> f64 {
        self.nnz_millions / self.dim_millions
    }

    /// The published density `nnz / dim²`.
    pub fn density(&self) -> f64 {
        self.nnz_millions / (self.dim_millions * self.dim_millions * 1e6)
    }

    /// Synthesizes the stand-in at a dimension of (roughly, never more than)
    /// `max_dim`, preserving the published average row population.
    ///
    /// Matrices already smaller than `max_dim` are generated at their real
    /// dimension. Generation is deterministic for a given `(self, max_dim,
    /// seed)`.
    pub fn generate(&self, max_dim: usize, seed: u64) -> Coo<f32> {
        let real_dim = (self.dim_millions * 1e6).round() as usize;
        let n = real_dim.min(max_dim).max(8);
        let avg = self.avg_row_nnz();
        let mut rng = seeded_rng(seed ^ fxhash(self.id));
        match self.family {
            Family::PowerLawGraph { skew } => {
                let scale = (n as f64).log2().floor() as u32;
                let nodes = 1usize << scale;
                let params = RmatParams {
                    a: skew,
                    b: (1.0 - skew) / 2.2,
                    c: (1.0 - skew) / 2.2,
                };
                rmat::rmat(scale, (avg * nodes as f64) as usize, params, &mut rng)
            }
            Family::PowerLawSymmetric => {
                let scale = (n as f64).log2().floor() as u32;
                let nodes = 1usize << scale;
                rmat::rmat_symmetric(
                    scale,
                    (avg * nodes as f64) as usize,
                    RmatParams::GRAPH500,
                    &mut rng,
                )
            }
            Family::RoadMesh => {
                let side = (n as f64).sqrt().floor() as usize;
                // Full mesh averages ~4 entries/row; scale edge retention to
                // hit the published average.
                let keep = (avg / 4.0).clamp(0.05, 1.0);
                road::road_mesh(side.max(2), side.max(2), keep, 0.02, &mut rng)
            }
            Family::Circuit { locality } => circuit::circuit(n, avg - 1.0, locality, &mut rng),
            Family::Fem2d => {
                let side = (n as f64).sqrt().floor() as usize;
                let base = stencil::laplacian_2d(side.max(2), side.max(2));
                densify_fem(base, avg, &mut rng)
            }
            Family::Fem3d => {
                let side = (n as f64).cbrt().floor() as usize;
                let base = stencil::laplacian_3d(side.max(2), side.max(2), side.max(2));
                densify_fem(base, avg, &mut rng)
            }
            Family::Uniform => {
                let density = (avg / n as f64).min(1.0);
                crate::random::uniform(n, n, density, &mut rng)
            }
        }
    }
}

/// Adds symmetric near-diagonal couplings to a stencil matrix until the
/// average row population reaches `avg` — FEM matrices from real meshes have
/// denser element coupling than the pure 5/7-point Laplacian.
fn densify_fem<R: Rng>(base: Coo<f32>, avg: f64, rng: &mut R) -> Coo<f32> {
    let n = base.nrows();
    let target = (avg * n as f64) as usize;
    if base.nnz() >= target || n < 4 {
        return base;
    }
    let mut seen: HashSet<(usize, usize)> = base.iter().map(|t| (t.row, t.col)).collect();
    let mut coo = base;
    let missing = target - coo.nnz();
    let mut attempts = 0usize;
    let max_attempts = missing.saturating_mul(16).max(64);
    let mut placed = 0usize;
    while placed + 1 < missing && attempts < max_attempts {
        attempts += 1;
        let i = rng.gen_range(0..n);
        // FEM fringe stays local: couple within a ±(window) neighbourhood.
        let w = 48.min(n - 1).max(1);
        let j = rng.gen_range(i.saturating_sub(w)..=(i + w).min(n - 1));
        if i == j || seen.contains(&(i, j)) {
            continue;
        }
        let v = nonzero_value(rng);
        seen.insert((i, j));
        seen.insert((j, i));
        coo.push(i, j, v).expect("in range");
        coo.push(j, i, v).expect("in range");
        placed += 2;
    }
    coo
}

/// Deterministic tiny string hash so each suite entry gets a distinct
/// generation stream from the same user seed.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_1() {
        assert_eq!(SUITE.len(), 20);
        // Spot-check a few published numbers.
        let kr = SuiteMatrix::by_id("KR").unwrap();
        assert_eq!(kr.name, "kron_g500-logn21");
        assert_eq!(kr.nnz_millions, 182.0);
        let eo = SuiteMatrix::by_id("eo").unwrap();
        assert_eq!(eo.dim_millions, 50.9);
        assert!(SuiteMatrix::by_id("zz").is_none());
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = SUITE.iter().map(|m| m.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn all_stand_ins_generate_at_small_scale() {
        for m in &SUITE {
            let coo = m.generate(512, 1);
            assert!(coo.nnz() > 0, "{} generated empty", m.id);
            assert!(
                coo.nrows() <= 520,
                "{} ignored the dimension cap: {}",
                m.id,
                coo.nrows()
            );
        }
    }

    #[test]
    fn stand_ins_approximate_published_row_density() {
        // Average row population should land within 2x of the published one
        // (structural generators can't always hit it exactly at tiny scale).
        for m in &SUITE {
            let coo = m.generate(1024, 2);
            let got = coo.nnz() as f64 / coo.nrows() as f64;
            let want = m.avg_row_nnz();
            assert!(
                got > want / 2.5 && got < want * 2.5,
                "{}: got {got:.2} nnz/row, published {want:.2}",
                m.id
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for m in SUITE.iter().take(4) {
            assert_eq!(m.generate(256, 7), m.generate(256, 7), "{}", m.id);
        }
    }

    #[test]
    fn small_matrices_generate_at_real_size() {
        let dw = SuiteMatrix::by_id("DW").unwrap();
        let coo = dw.generate(100_000, 3);
        // dwt_918 is 918 rows; the 2-D stencil rounds to a square grid.
        assert!(coo.nrows() >= 850 && coo.nrows() <= 1000, "{}", coo.nrows());
    }

    #[test]
    fn density_helpers_are_consistent() {
        for m in &SUITE {
            assert!(m.avg_row_nnz() > 0.0);
            assert!(m.density() > 0.0 && m.density() < 1.0, "{}", m.id);
        }
    }
}
