//! Workload specifications — the `(class, parameters)` pairs the
//! characterization sweeps.

use crate::suite::SuiteMatrix;
use crate::{band, random, seeded_rng};
use sparsemat::Coo;

/// The three workload classes of the paper's evaluation (§6: "SuiteSparse,
/// random, and structured band matrices").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum WorkloadClass {
    /// Real-world matrices from Table 1 (synthesized stand-ins here).
    SuiteSparse,
    /// Uniformly random matrices over the density sweep.
    Random,
    /// Structured band and diagonal matrices.
    Band,
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorkloadClass::SuiteSparse => "SuiteSparse",
            WorkloadClass::Random => "Random",
            WorkloadClass::Band => "Band",
        })
    }
}

/// One concrete workload: a class plus its generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// A Table-1 matrix (stand-in generated at `max_dim`).
    Suite(&'static SuiteMatrix),
    /// Uniform random `n × n` matrix with the given density.
    Random {
        /// Matrix dimension.
        n: usize,
        /// Target density in `[0, 1]`.
        density: f64,
    },
    /// Band matrix of the given width (`width == 1` is the pure diagonal).
    Band {
        /// Matrix dimension.
        n: usize,
        /// Band width `k` (entries with `|i−j| > k/2` are zero).
        width: usize,
    },
}

impl Workload {
    /// The workload's class.
    pub fn class(&self) -> WorkloadClass {
        match self {
            Workload::Suite(_) => WorkloadClass::SuiteSparse,
            Workload::Random { .. } => WorkloadClass::Random,
            Workload::Band { .. } => WorkloadClass::Band,
        }
    }

    /// Short label used on figure axes (suite ID, density, or width).
    pub fn label(&self) -> String {
        match self {
            Workload::Suite(m) => m.id.to_string(),
            Workload::Random { density, .. } => format!("d={density}"),
            Workload::Band { width, .. } => format!("w={width}"),
        }
    }

    /// Canonical memoization key for the generated matrix:
    /// [`generate`](Workload::generate) is a pure function of
    /// `(spec, max_dim, seed)`, so this key captures every input that
    /// determines the matrix bytes. The `Debug` form is used instead of
    /// [`label`](Workload::label) because labels elide the dimension
    /// (`d=0.5` at two different `n` must not collide).
    pub fn cache_key(&self, max_dim: usize, seed: u64) -> String {
        format!("{self:?}|seed={seed}|cap={max_dim}")
    }

    /// Generates the matrix. `max_dim` caps the dimension of suite
    /// stand-ins; random and band workloads always use their own `n`.
    pub fn generate(&self, max_dim: usize, seed: u64) -> Coo<f32> {
        match *self {
            Workload::Suite(m) => m.generate(max_dim, seed),
            Workload::Random { n, density } => {
                random::uniform_square(n, density, &mut seeded_rng(seed))
            }
            Workload::Band { n, width } => band::band(n, width, &mut seeded_rng(seed)),
        }
    }

    /// All 20 SuiteSparse workloads in Table-1 order.
    pub fn paper_suite() -> Vec<Workload> {
        crate::SUITE.iter().map(Workload::Suite).collect()
    }

    /// The paper's random-density sweep (Figs. 5, 10) at dimension `n`.
    pub fn paper_random_sweep(n: usize) -> Vec<Workload> {
        random::PAPER_DENSITIES
            .iter()
            .map(|&density| Workload::Random { n, density })
            .collect()
    }

    /// The paper's band-width sweep (Figs. 6, 11) at dimension `n`.
    pub fn paper_band_sweep(n: usize) -> Vec<Workload> {
        band::PAPER_WIDTHS
            .iter()
            .map(|&width| Workload::Band { n, width })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::Matrix;

    #[test]
    fn classes_map_correctly() {
        assert_eq!(
            Workload::Suite(&crate::SUITE[0]).class(),
            WorkloadClass::SuiteSparse
        );
        assert_eq!(
            Workload::Random {
                n: 10,
                density: 0.1
            }
            .class(),
            WorkloadClass::Random
        );
        assert_eq!(
            Workload::Band { n: 10, width: 4 }.class(),
            WorkloadClass::Band
        );
    }

    #[test]
    fn sweeps_have_paper_cardinality() {
        assert_eq!(Workload::paper_suite().len(), 20);
        assert_eq!(Workload::paper_random_sweep(100).len(), 8);
        assert_eq!(Workload::paper_band_sweep(100).len(), 6);
    }

    #[test]
    fn generate_respects_parameters() {
        let m = Workload::Random {
            n: 64,
            density: 0.1,
        }
        .generate(0, 1);
        assert_eq!(m.nrows(), 64);
        assert_eq!(m.nnz(), 410, "0.1 * 64^2 rounded");

        let b = Workload::Band { n: 32, width: 4 }.generate(0, 1);
        assert_eq!(b.nnz(), crate::band::band_nnz(32, 4));
    }

    #[test]
    fn cache_keys_separate_what_labels_collapse() {
        let a = Workload::Random {
            n: 32,
            density: 0.5,
        };
        let b = Workload::Random {
            n: 64,
            density: 0.5,
        };
        assert_eq!(a.label(), b.label());
        assert_ne!(a.cache_key(0, 42), b.cache_key(0, 42));
        assert_ne!(a.cache_key(0, 42), a.cache_key(0, 43));
        assert_ne!(a.cache_key(0, 42), a.cache_key(1, 42));
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Workload::Suite(&crate::SUITE[9]).label(), "KR");
        assert_eq!(Workload::Random { n: 8, density: 0.5 }.label(), "d=0.5");
        assert_eq!(Workload::Band { n: 8, width: 16 }.label(), "w=16");
    }

    #[test]
    fn display_of_classes() {
        assert_eq!(WorkloadClass::SuiteSparse.to_string(), "SuiteSparse");
        assert_eq!(WorkloadClass::Random.to_string(), "Random");
        assert_eq!(WorkloadClass::Band.to_string(), "Band");
    }
}
