//! Sparse workloads for the Copernicus characterization (§3 of the paper).
//!
//! Three workload classes drive every figure:
//!
//! * **SuiteSparse stand-ins** ([`suite`]) — the 20 real-world matrices of
//!   Table 1, synthesized at reduced scale with matched structure and
//!   density (see `DESIGN.md` for the substitution rationale). Real
//!   MatrixMarket files can be dropped in through [`mtx`].
//! * **Random matrices** ([`random`]) — uniform sparsity with density swept
//!   from 0.0001 to 0.5 ("the denser random matrices [...] as a
//!   representation for those in machine learning applications").
//! * **Band and diagonal matrices** ([`band`]) — size 8000 with widths 2,
//!   4, 16, 32 and 64, plus the pure diagonal (`k = 1`).
//!
//! Additional structural generators ([`rmat`], [`stencil`], [`circuit`],
//! [`road`]) back the per-kind SuiteSparse stand-ins.
//!
//! All generators are deterministic given a seed, and all values are small
//! non-zero integers cast to `f32` so downstream arithmetic checks are
//! exact.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod band;
pub mod circuit;
pub mod ml;
pub mod mtx;
pub mod random;
pub mod rmat;
pub mod road;
pub mod spec;
pub mod stencil;
pub mod suite;

pub use spec::{Workload, WorkloadClass};
pub use suite::{SuiteMatrix, SUITE};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG used by every generator: a [`SmallRng`] seeded from a
/// caller-provided seed so each (workload, seed) pair is reproducible.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Draws a small non-zero integer value in `[-9, 9] \ {0}` as `f32`.
///
/// Keeping values integral keeps every SpMV comparison in the test suite
/// bit-exact; keeping them non-zero keeps `nnz` equal to the number of
/// generated coordinates.
pub fn nonzero_value<R: Rng>(rng: &mut R) -> f32 {
    let v = rng.gen_range(1..=9) as f32;
    if rng.gen_bool(0.5) {
        -v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = seeded_rng(42);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded_rng(42);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn nonzero_values_are_nonzero_integers() {
        let mut rng = seeded_rng(7);
        for _ in 0..1000 {
            let v = nonzero_value(&mut rng);
            assert!(v != 0.0);
            assert_eq!(v, v.trunc());
            assert!(v.abs() <= 9.0);
        }
    }
}
