//! End-to-end platform-model benchmarks: a 256×256 matrix streamed through
//! the full encode → decompress → dot-product pipeline per format.

use copernicus_hls::{HwConfig, RunRequest, Session};
use copernicus_workloads::{band, random, seeded_rng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsemat::FormatKind;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut hw = HwConfig::with_partition_size(16);
    hw.verify_functional = false;
    let workloads = [
        (
            "random",
            random::uniform_square(256, 0.02, &mut seeded_rng(4)),
        ),
        ("band", band::band(256, 16, &mut seeded_rng(5))),
    ];
    for (name, matrix) in &workloads {
        let mut group = c.benchmark_group(format!("pipeline/{name}"));
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        group.sample_size(20);
        for kind in FormatKind::CHARACTERIZED {
            // A warm session per format: the scratch pool stabilizes during
            // warm-up, so the samples measure the allocation-free steady
            // state a format sweep hits.
            let mut session = Session::new(hw.clone()).unwrap();
            group.bench_with_input(BenchmarkId::from_parameter(kind), matrix, |b, m| {
                b.iter(|| black_box(session.run(RunRequest::matrix(m, kind)).unwrap().report));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
