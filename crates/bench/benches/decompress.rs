//! Per-format decompression micro-benchmarks: one 16×16 tile through each
//! decompressor model at two densities (the compute stage of Fig. 2).

use copernicus_hls::{decompress, EncodedPartition, HwConfig};
use copernicus_workloads::{random, seeded_rng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsemat::FormatKind;
use std::hint::black_box;

fn bench_decompress(c: &mut Criterion) {
    let cfg = HwConfig::with_partition_size(16);
    for (name, density) in [("sparse", 0.05), ("dense", 0.5)] {
        let tile = random::uniform_square(16, density, &mut seeded_rng(1));
        let mut group = c.benchmark_group(format!("decompress/{name}"));
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        group.sample_size(20);
        for kind in FormatKind::CHARACTERIZED {
            let part = EncodedPartition::encode(&tile, kind, &cfg).unwrap();
            group.bench_with_input(BenchmarkId::from_parameter(kind), &part, |b, part| {
                b.iter(|| black_box(decompress(part, &cfg)));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_decompress);
criterion_main!(benches);
