//! Figure-regeneration benchmarks: wall-clock cost of each experiment
//! driver at the quick preset (one sample each — the drivers are heavy).

use copernicus::experiments as ex;
use copernicus::ExperimentConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let mut group = c.benchmark_group("figures");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    group.sample_size(10);
    group.bench_function("fig03", |b| {
        b.iter(|| black_box(ex::fig03::run(&cfg).unwrap()))
    });
    group.bench_function("fig05", |b| {
        b.iter(|| black_box(ex::fig05::run(&cfg).unwrap()))
    });
    group.bench_function("fig06", |b| {
        b.iter(|| black_box(ex::fig06::run(&cfg).unwrap()))
    });
    group.bench_function("fig10", |b| {
        b.iter(|| black_box(ex::fig10::run(&cfg).unwrap()))
    });
    group.bench_function("fig11", |b| {
        b.iter(|| black_box(ex::fig11::run(&cfg).unwrap()))
    });
    group.bench_function("table2", |b| {
        b.iter(|| black_box(ex::table2::run(&[8, 16, 32])))
    });
    group.bench_function("fig13", |b| {
        b.iter(|| black_box(ex::fig13::run(&[8, 16, 32])))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
