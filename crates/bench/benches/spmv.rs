//! Software SpMV benchmarks: each format's native traversal on the same
//! matrix (the reference kernels behind the platform model).

use copernicus_workloads::{random, seeded_rng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsemat::{AnyMatrix, FormatKind, Matrix};
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let coo = random::uniform_square(1024, 0.01, &mut seeded_rng(3));
    let x: Vec<f32> = (0..1024).map(|i| (i % 7) as f32).collect();
    let mut group = c.benchmark_group("spmv");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for kind in FormatKind::ALL {
        let m = AnyMatrix::encode(&coo, kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &m, |b, m| {
            b.iter(|| black_box(m.spmv(&x).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
