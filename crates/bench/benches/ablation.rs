//! Ablation benchmarks over the design choices DESIGN.md calls out:
//! BRAM latency, bus width, ELL engine width, BCSR block size and an
//! extrapolated 64×64 partition. Each variant streams the same matrix so
//! the timing differences are attributable to the configuration knob.

use copernicus_hls::{HwConfig, RunRequest, Session};
use copernicus_workloads::{random, seeded_rng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsemat::{Coo, FormatKind};
use std::hint::black_box;

fn matrix() -> Coo<f32> {
    random::uniform_square(256, 0.05, &mut seeded_rng(6))
}

fn run(session: &mut Session, m: &Coo<f32>, kind: FormatKind) -> u64 {
    session
        .run(RunRequest::matrix(m, kind))
        .unwrap()
        .report
        .total_cycles
}

fn bench_ablation(c: &mut Criterion) {
    let m = matrix();
    let base = || {
        let mut hw = HwConfig::with_partition_size(16);
        hw.verify_functional = false;
        hw
    };

    let mut group = c.benchmark_group("ablation/bram_latency");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for l in [1u64, 2, 4] {
        let mut hw = base();
        hw.bram_read_latency = l;
        let mut session = Session::new(hw).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(l), &m, |b, m| {
            b.iter(|| black_box(run(&mut session, m, FormatKind::Csr)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation/bus_bytes");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for bus in [4usize, 8, 16] {
        let mut hw = base();
        hw.bus_bytes_per_cycle = bus;
        let mut session = Session::new(hw).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bus), &m, |b, m| {
            b.iter(|| black_box(run(&mut session, m, FormatKind::Coo)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation/ell_width");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for w in [4usize, 6, 8] {
        let mut hw = base();
        hw.ell_hw_width = w;
        let mut session = Session::new(hw).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(w), &m, |b, m| {
            b.iter(|| black_box(run(&mut session, m, FormatKind::Ell)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation/bcsr_block");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for blk in [2usize, 4, 8] {
        let mut hw = base();
        hw.bcsr_block = blk;
        let mut session = Session::new(hw).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(blk), &m, |b, m| {
            b.iter(|| black_box(run(&mut session, m, FormatKind::Bcsr)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation/partition_64");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for p in [16usize, 64] {
        let mut hw = base();
        hw.partition_size = p;
        let mut session = Session::new(hw).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(p), &m, |b, m| {
            b.iter(|| black_box(run(&mut session, m, FormatKind::Lil)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
