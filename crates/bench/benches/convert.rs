//! Format-conversion benchmarks: COO → each format for a mid-size matrix.

use copernicus_workloads::{random, seeded_rng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsemat::{AnyMatrix, FormatKind};
use std::hint::black_box;

fn bench_convert(c: &mut Criterion) {
    let coo = random::uniform_square(512, 0.02, &mut seeded_rng(2));
    let mut group = c.benchmark_group("encode_from_coo");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for kind in FormatKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| black_box(AnyMatrix::encode(&coo, kind)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convert);
criterion_main!(benches);
