//! Workload-generator benchmarks: how fast each synthetic family produces
//! its matrices.

use copernicus_workloads::rmat::RmatParams;
use copernicus_workloads::{band, circuit, random, rmat, road, seeded_rng, stencil};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_gen");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function("uniform_512_d0.02", |b| {
        b.iter(|| black_box(random::uniform_square(512, 0.02, &mut seeded_rng(1))));
    });
    group.bench_function("band_512_w16", |b| {
        b.iter(|| black_box(band::band(512, 16, &mut seeded_rng(2))));
    });
    group.bench_function("rmat_scale9_4k_edges", |b| {
        b.iter(|| {
            black_box(rmat::rmat(
                9,
                4096,
                RmatParams::GRAPH500,
                &mut seeded_rng(3),
            ))
        });
    });
    group.bench_function("circuit_512", |b| {
        b.iter(|| black_box(circuit::circuit(512, 4.0, 0.9, &mut seeded_rng(4))));
    });
    group.bench_function("road_mesh_22x22", |b| {
        b.iter(|| black_box(road::road_mesh(22, 22, 0.9, 0.05, &mut seeded_rng(5))));
    });
    group.bench_function("laplacian_2d_23x23", |b| {
        b.iter(|| black_box(stencil::laplacian_2d(23, 23)));
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
