//! The `perf` command: end-to-end wall-time benchmarking of a bench
//! command (`repro_all` by default, any command via `--cmd`), a labeled
//! performance trajectory, and the CI regression gate.
//!
//! Each repetition spawns the current executable again with
//! `COPERNICUS_BENCH_CMD=<cmd>` (the re-exec trampoline, so the
//! measurement works from any wrapper binary) and times it end to end —
//! exactly what a user-facing `copernicus-bench <cmd> --jobs N`
//! computes. Three artifacts flow out of a run:
//!
//! * `--out FILE` (default `BENCH_hotpath.json`) — the single-run evidence
//!   document, unchanged from earlier hot-path work.
//! * `--record LABEL` — appends a labeled [`TrajectoryPoint`] to the
//!   trajectory file (default `BENCH_trajectory.json`), the append-only
//!   history CI regresses against.
//! * `--check` — compares this run's best-of-N against the most recent
//!   trajectory point with the same command, scale, job count and hardware
//!   backend, and exits nonzero
//!   when the current best is slower by more than `--threshold-pct`
//!   (default 50%, deliberately generous: shared CI runners jitter tens
//!   of percent, and the gate exists to catch order-of-magnitude
//!   regressions, not noise).
//!
//! Best-of-N is the comparison statistic because it is the least
//! noise-sensitive summary of a wall-clock sample: the minimum converges to
//! the true cost as interference only ever adds time.
//!
//! Two noise controls keep the sample honest: every measurement discards
//! `--warmup` unrecorded child runs first (default 1 — the first run pays
//! for page-cache population and binary loading that later runs do not),
//! and every sample carries its spread (`stddev_secs` and the coefficient
//! of variation `cv = stddev / mean`) so a gate verdict can be read against
//! how noisy the machine actually was. `--check` prints the noise figure
//! alongside the delta.

use serde::Value;

/// One labeled measurement in `BENCH_trajectory.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Human-chosen label for the change being measured (e.g. a PR theme).
    pub label: String,
    /// Benchmarked command (`repro_all` unless `--cmd` chose another).
    /// Points recorded before this field existed parse as `repro_all`.
    pub cmd: String,
    /// `quick` or `paper`.
    pub scale: String,
    /// Worker threads the measured child ran with.
    pub jobs: u64,
    /// Hardware backend the measured child costed on (`hls`, `cpu`,
    /// `hetero`). Points recorded before this field existed parse as `hls`
    /// — the only backend that existed then.
    pub backend: String,
    /// Repetitions in this sample.
    pub iterations: u64,
    /// Every repetition's wall seconds, in run order.
    pub runs_secs: Vec<f64>,
    /// Minimum of `runs_secs` — the gate statistic.
    pub best_secs: f64,
    /// Mean of `runs_secs`.
    pub mean_secs: f64,
    /// Population standard deviation of `runs_secs` (0 for one run).
    pub stddev_secs: f64,
    /// Coefficient of variation (`stddev_secs / mean_secs`) — the sample's
    /// noise figure. Points recorded before these fields existed recompute
    /// both from `runs_secs` on parse.
    pub cv: f64,
}

/// `(population stddev, coefficient of variation)` of a wall-time sample.
pub fn noise_stats(runs: &[f64], mean: f64) -> (f64, f64) {
    if runs.is_empty() {
        return (0.0, 0.0);
    }
    let var = runs.iter().map(|&s| (s - mean) * (s - mean)).sum::<f64>() / runs.len() as f64;
    let stddev = var.sqrt();
    let cv = if mean > 0.0 { stddev / mean } else { 0.0 };
    (stddev, cv)
}

impl TrajectoryPoint {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("label".to_string(), Value::Str(self.label.clone())),
            ("cmd".to_string(), Value::Str(self.cmd.clone())),
            ("scale".to_string(), Value::Str(self.scale.clone())),
            ("jobs".to_string(), Value::UInt(self.jobs)),
            ("backend".to_string(), Value::Str(self.backend.clone())),
            ("iterations".to_string(), Value::UInt(self.iterations)),
            (
                "runs_secs".to_string(),
                Value::Seq(self.runs_secs.iter().map(|&s| Value::Float(s)).collect()),
            ),
            ("best_secs".to_string(), Value::Float(self.best_secs)),
            ("mean_secs".to_string(), Value::Float(self.mean_secs)),
            ("stddev_secs".to_string(), Value::Float(self.stddev_secs)),
            ("cv".to_string(), Value::Float(self.cv)),
        ])
    }

    fn from_value(v: &Value) -> Option<TrajectoryPoint> {
        let runs_secs: Vec<f64> = v
            .get("runs_secs")?
            .as_seq()?
            .iter()
            .filter_map(Value::as_f64)
            .collect();
        let mean_secs = v.get("mean_secs")?.as_f64()?;
        let (stddev_default, cv_default) = noise_stats(&runs_secs, mean_secs);
        Some(TrajectoryPoint {
            label: v.get("label")?.as_str()?.to_string(),
            // Points predate the field: every pre-codec trajectory entry
            // measured `repro_all`, so that is the backward-compatible read.
            cmd: v
                .get("cmd")
                .and_then(Value::as_str)
                .unwrap_or("repro_all")
                .to_string(),
            scale: v.get("scale")?.as_str()?.to_string(),
            jobs: v.get("jobs")?.as_u64()?,
            // Same backward-compatible read: pre-backend points were all
            // costed on the HLS pipeline.
            backend: v
                .get("backend")
                .and_then(Value::as_str)
                .unwrap_or("hls")
                .to_string(),
            iterations: v.get("iterations")?.as_u64()?,
            runs_secs,
            best_secs: v.get("best_secs")?.as_f64()?,
            mean_secs,
            stddev_secs: v
                .get("stddev_secs")
                .and_then(Value::as_f64)
                .unwrap_or(stddev_default),
            cv: v.get("cv").and_then(Value::as_f64).unwrap_or(cv_default),
        })
    }
}

/// Parses a trajectory document (`{"benchmark": ..., "points": [...]}`).
/// Malformed points are skipped — the trajectory is observability, not a
/// correctness artifact.
pub fn parse_trajectory(text: &str) -> Vec<TrajectoryPoint> {
    let Ok(doc) = serde::json::parse(text) else {
        return Vec::new();
    };
    doc.get("points")
        .and_then(Value::as_seq)
        .map(|points| {
            points
                .iter()
                .filter_map(TrajectoryPoint::from_value)
                .collect()
        })
        .unwrap_or_default()
}

/// Renders the trajectory document for `points`.
pub fn render_trajectory(points: &[TrajectoryPoint]) -> String {
    let doc = Value::Map(vec![
        ("benchmark".to_string(), Value::Str("repro_all".to_string())),
        (
            "points".to_string(),
            Value::Seq(points.iter().map(TrajectoryPoint::to_value).collect()),
        ),
    ]);
    format!("{}\n", serde::json::to_string_pretty(&doc))
}

/// The most recent trajectory point comparable to a `(cmd, scale, jobs,
/// backend)` run. Points for other benchmarked commands — or the same
/// command costed on another hardware backend — never gate each other: a
/// CPU-model measurement regressing against an HLS baseline would compare
/// different simulations.
pub fn find_baseline<'a>(
    points: &'a [TrajectoryPoint],
    cmd: &str,
    scale: &str,
    jobs: u64,
    backend: &str,
) -> Option<&'a TrajectoryPoint> {
    points
        .iter()
        .rev()
        .find(|p| p.cmd == cmd && p.scale == scale && p.jobs == jobs && p.backend == backend)
}

/// The regression gate: compares a current best-of-N against a baseline
/// best-of-N under a percentage noise threshold.
///
/// Returns the signed delta in percent (positive = slower than baseline).
///
/// # Errors
///
/// A human-readable failure message when `current_best` exceeds
/// `baseline_best` by more than `threshold_pct` percent (or when the
/// baseline is non-positive, which would make the comparison meaningless).
pub fn regression_gate(
    baseline_best: f64,
    current_best: f64,
    threshold_pct: f64,
) -> Result<f64, String> {
    if baseline_best <= 0.0 || baseline_best.is_nan() {
        return Err(format!(
            "regression gate: baseline best {baseline_best}s is not positive"
        ));
    }
    let delta_pct = (current_best - baseline_best) / baseline_best * 100.0;
    if delta_pct > threshold_pct {
        Err(format!(
            "regression gate FAILED: best {current_best:.3}s is {delta_pct:+.1}% vs baseline {baseline_best:.3}s (threshold {threshold_pct:.0}%)"
        ))
    } else {
        Ok(delta_pct)
    }
}

/// `perf` — see the [module docs](self).
///
/// Flags: `--quick` (default) / `--paper` pick the scale; `--cmd NAME`
/// the bench command to measure (default `repro_all`); `--backend NAME`
/// the hardware backend the child costs on (default `hls`); `--iters N`
/// repetitions (default 3, best-of is reported); `--warmup N` unrecorded
/// warmup runs before the sample (default 1); `--jobs N` worker threads
/// for each child (default 1); `--out FILE` evidence path (default
/// `BENCH_hotpath.json`); `--baseline-secs X` a reference wall time for
/// `improvement_pct`; `--trajectory FILE` the trajectory path (default
/// `BENCH_trajectory.json`); `--record LABEL` appends this run to the
/// trajectory; `--check` gates against the trajectory; `--threshold-pct X`
/// the gate's noise allowance (default 50).
pub fn perf(args: Vec<String>) -> i32 {
    let mut paper = false;
    let mut cmd = "repro_all".to_string();
    let mut backend = copernicus_hls::BackendKind::Hls;
    let mut iters = 3usize;
    let mut warmup = 1usize;
    let mut jobs = 1usize;
    let mut out = std::path::PathBuf::from("BENCH_hotpath.json");
    let mut baseline: Option<f64> = None;
    let mut trajectory_path = std::path::PathBuf::from("BENCH_trajectory.json");
    let mut record: Option<String> = None;
    let mut check = false;
    let mut threshold_pct = 50.0f64;
    let usage = "usage: perf [--quick|--paper] [--cmd NAME] [--backend hls|cpu|hetero] [--iters N] [--warmup N] [--jobs N] [--out FILE] [--baseline-secs X] [--trajectory FILE] [--record LABEL] [--check] [--threshold-pct X]";
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value\n{usage}"));
        let parsed = match arg.as_str() {
            "--quick" => {
                paper = false;
                Ok(())
            }
            "--paper" => {
                paper = true;
                Ok(())
            }
            "--cmd" => value("--cmd").and_then(|v| {
                if v.is_empty() {
                    return Err("--cmd needs a non-empty command name".to_string());
                }
                cmd = v;
                Ok(())
            }),
            "--backend" => value("--backend").and_then(|v| {
                backend = v.parse().map_err(|e| format!("bad --backend {v:?}: {e}"))?;
                Ok(())
            }),
            "--iters" => value("--iters").and_then(|v| {
                iters = v.parse().map_err(|e| format!("bad --iters {v:?}: {e}"))?;
                if iters == 0 {
                    return Err("--iters must be at least 1".to_string());
                }
                Ok(())
            }),
            "--warmup" => value("--warmup").and_then(|v| {
                warmup = v.parse().map_err(|e| format!("bad --warmup {v:?}: {e}"))?;
                Ok(())
            }),
            "--jobs" => value("--jobs").and_then(|v| {
                jobs = v.parse().map_err(|e| format!("bad --jobs {v:?}: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                Ok(())
            }),
            "--out" => value("--out").map(|v| out = std::path::PathBuf::from(v)),
            "--baseline-secs" => value("--baseline-secs").and_then(|v| {
                baseline = Some(
                    v.parse()
                        .map_err(|e| format!("bad --baseline-secs {v:?}: {e}"))?,
                );
                Ok(())
            }),
            "--trajectory" => {
                value("--trajectory").map(|v| trajectory_path = std::path::PathBuf::from(v))
            }
            "--record" => value("--record").map(|v| record = Some(v)),
            "--check" => {
                check = true;
                Ok(())
            }
            "--threshold-pct" => value("--threshold-pct").and_then(|v| {
                threshold_pct = v
                    .parse()
                    .map_err(|e| format!("bad --threshold-pct {v:?}: {e}"))?;
                if threshold_pct <= 0.0 {
                    return Err("--threshold-pct must be positive".to_string());
                }
                Ok(())
            }),
            other => Err(format!("unknown flag {other:?}\n{usage}")),
        };
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return 2;
        }
    }

    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("perf: cannot locate the current executable: {e}");
            return 1;
        }
    };
    let scale = if paper { "paper" } else { "quick" };
    let backend = backend.to_string();
    let mut child_args: Vec<String> = vec!["--jobs".into(), jobs.to_string()];
    if paper {
        child_args.push("--paper".into());
    }
    // Only non-default backends reach the child's command line, so
    // commands that parse their own flags (and legacy invocations) keep
    // their exact argument vector when measured on the HLS baseline.
    if backend != "hls" {
        child_args.push("--backend".into());
        child_args.push(backend.clone());
    }
    let run_child = |label: String| -> Result<f64, i32> {
        let started = std::time::Instant::now();
        let status = std::process::Command::new(&exe)
            .args(&child_args)
            .env("COPERNICUS_BENCH_CMD", &cmd)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("perf: {cmd} child exited with {s}");
                return Err(1);
            }
            Err(e) => {
                eprintln!("perf: could not spawn {}: {e}", exe.display());
                return Err(1);
            }
        }
        let secs = started.elapsed().as_secs_f64();
        eprintln!("[perf] {scale} {cmd} [{backend}] --jobs {jobs}, {label}: {secs:.3}s");
        Ok(secs)
    };
    // Unrecorded warmup runs absorb one-time costs (page cache, binary
    // loading) that would otherwise inflate the first measured repetition.
    for i in 0..warmup {
        if let Err(code) = run_child(format!("warmup {}/{warmup} (discarded)", i + 1)) {
            return code;
        }
    }
    let mut runs: Vec<f64> = Vec::with_capacity(iters);
    for i in 0..iters {
        match run_child(format!("run {}/{iters}", i + 1)) {
            Ok(secs) => runs.push(secs),
            Err(code) => return code,
        }
    }
    let best = runs.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = runs.iter().sum::<f64>() / runs.len() as f64;
    let (stddev, cv) = noise_stats(&runs, mean);

    let mut doc = vec![
        ("benchmark".to_string(), Value::Str(cmd.clone())),
        ("scale".to_string(), Value::Str(scale.to_string())),
        ("jobs".to_string(), Value::UInt(jobs as u64)),
        ("backend".to_string(), Value::Str(backend.clone())),
        ("iterations".to_string(), Value::UInt(iters as u64)),
        (
            "runs_secs".to_string(),
            Value::Seq(runs.iter().map(|&s| Value::Float(s)).collect()),
        ),
        ("best_secs".to_string(), Value::Float(best)),
        ("mean_secs".to_string(), Value::Float(mean)),
        ("stddev_secs".to_string(), Value::Float(stddev)),
        ("cv".to_string(), Value::Float(cv)),
        ("warmup".to_string(), Value::UInt(warmup as u64)),
    ];
    if let Some(base) = baseline {
        doc.push(("baseline_secs".to_string(), Value::Float(base)));
        if base > 0.0 {
            doc.push((
                "improvement_pct".to_string(),
                Value::Float((base - best) / base * 100.0),
            ));
        }
    }
    let json = serde::json::to_string_pretty(&Value::Map(doc));
    if let Err(e) = copernicus_telemetry::atomic_write(&out, format!("{json}\n")) {
        eprintln!("perf: could not write {}: {e}", out.display());
        return 1;
    }
    match baseline {
        Some(base) => println!(
            "{scale} {cmd} [{backend}] --jobs {jobs}: best {best:.3}s / mean {mean:.3}s ± {stddev:.3}s (cv {:.1}%) over {iters} run(s); baseline {base:.3}s ({:+.1}%)",
            cv * 100.0,
            (base - best) / base * 100.0
        ),
        None => println!(
            "{scale} {cmd} [{backend}] --jobs {jobs}: best {best:.3}s / mean {mean:.3}s ± {stddev:.3}s (cv {:.1}%) over {iters} run(s)",
            cv * 100.0
        ),
    }
    println!("wrote {}", out.display());

    let points = match std::fs::read_to_string(&trajectory_path) {
        Ok(text) => parse_trajectory(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("perf: could not read {}: {e}", trajectory_path.display());
            return 1;
        }
    };

    if check {
        match find_baseline(&points, &cmd, scale, jobs as u64, &backend) {
            Some(point) => match regression_gate(point.best_secs, best, threshold_pct) {
                Ok(delta) => println!(
                    "regression gate OK: best {best:.3}s is {delta:+.1}% vs \"{}\" ({:.3}s, threshold {threshold_pct:.0}%; sample noise cv {:.1}%)",
                    point.label,
                    point.best_secs,
                    cv * 100.0
                ),
                Err(msg) => {
                    eprintln!("perf: {msg} (vs trajectory point \"{}\")", point.label);
                    return 1;
                }
            },
            // No comparable history: the first measurement of a new
            // command/scale/jobs combination is its own baseline, so the
            // gate passes vacuously rather than erroring. (Failing here
            // made `--check` unusable until someone hand-recorded a point
            // for every new combination.)
            None => println!(
                "regression gate SKIPPED: no prior {cmd}/{scale}/jobs={jobs}/{backend} point in {} — nothing to compare against; record one with --record LABEL",
                trajectory_path.display()
            ),
        }
    }

    if let Some(label) = record {
        let mut points = points;
        points.push(TrajectoryPoint {
            label,
            cmd,
            scale: scale.to_string(),
            jobs: jobs as u64,
            backend,
            iterations: iters as u64,
            runs_secs: runs,
            best_secs: best,
            mean_secs: mean,
            stddev_secs: stddev,
            cv,
        });
        if let Err(e) =
            copernicus_telemetry::atomic_write(&trajectory_path, render_trajectory(&points))
        {
            eprintln!("perf: could not write {}: {e}", trajectory_path.display());
            return 1;
        }
        println!(
            "recorded trajectory point {} in {}",
            points.len(),
            trajectory_path.display()
        );
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(label: &str, scale: &str, jobs: u64, best: f64) -> TrajectoryPoint {
        let runs = vec![best + 0.02, best, best + 0.05];
        let mean = best + 0.02;
        let (stddev_secs, cv) = noise_stats(&runs, mean);
        TrajectoryPoint {
            label: label.to_string(),
            cmd: "repro_all".to_string(),
            scale: scale.to_string(),
            jobs,
            backend: "hls".to_string(),
            iterations: 3,
            runs_secs: runs,
            best_secs: best,
            mean_secs: mean,
            stddev_secs,
            cv,
        }
    }

    #[test]
    fn trajectory_round_trips_through_json() {
        let points = vec![point("a", "quick", 1, 0.5), point("b", "paper", 4, 30.0)];
        let parsed = parse_trajectory(&render_trajectory(&points));
        assert_eq!(parsed, points);
    }

    #[test]
    fn noise_stats_measure_spread() {
        let (s0, c0) = noise_stats(&[], 0.0);
        assert_eq!((s0, c0), (0.0, 0.0));
        let (s1, c1) = noise_stats(&[2.0], 2.0);
        assert_eq!((s1, c1), (0.0, 0.0));
        // Two runs at 1 and 3: mean 2, population stddev 1, cv 0.5.
        let (s2, c2) = noise_stats(&[1.0, 3.0], 2.0);
        assert!((s2 - 1.0).abs() < 1e-12);
        assert!((c2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn legacy_points_without_noise_fields_recompute_them_on_parse() {
        // A pre-noise-fields trajectory entry: stddev/cv must be derived
        // from runs_secs, not defaulted to zero.
        let text = "{\"points\": [{\"label\": \"old\", \"scale\": \"quick\", \"jobs\": 1, \"iterations\": 2, \"runs_secs\": [1.0, 3.0], \"best_secs\": 1.0, \"mean_secs\": 2.0}]}";
        let parsed = parse_trajectory(text);
        assert_eq!(parsed.len(), 1);
        assert!((parsed[0].stddev_secs - 1.0).abs() < 1e-12);
        assert!((parsed[0].cv - 0.5).abs() < 1e-12);
        // It also predates the backend field: an HLS measurement.
        assert_eq!(parsed[0].backend, "hls");
        // And the derived fields round-trip exactly from then on.
        let rendered = render_trajectory(&parsed);
        assert!(rendered.contains("stddev_secs"));
        assert_eq!(parse_trajectory(&rendered), parsed);
    }

    #[test]
    fn malformed_trajectories_parse_as_empty() {
        assert!(parse_trajectory("").is_empty());
        assert!(parse_trajectory("not json").is_empty());
        assert!(parse_trajectory("{\"points\": 7}").is_empty());
        // A valid wrapper with one broken point keeps the good ones. The
        // surviving point has no "cmd" field (it predates the field) and
        // must parse as a repro_all measurement.
        let text = "{\"points\": [{\"nope\": 1}, {\"label\": \"ok\", \"scale\": \"quick\", \"jobs\": 1, \"iterations\": 1, \"runs_secs\": [1.0], \"best_secs\": 1.0, \"mean_secs\": 1.0}]}";
        let parsed = parse_trajectory(text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].cmd, "repro_all");
        assert_eq!(parsed[0].backend, "hls");
    }

    #[test]
    fn baseline_is_the_latest_matching_point() {
        let mut compound = point("sweep", "quick", 1, 0.3);
        compound.cmd = "compound".to_string();
        let mut cpu = point("cpu-model", "quick", 1, 0.4);
        cpu.backend = "cpu".to_string();
        let points = vec![
            point("old", "quick", 1, 1.0),
            point("paper", "paper", 1, 60.0),
            point("new", "quick", 1, 0.5),
            point("parallel", "quick", 4, 0.2),
            compound,
            cpu,
        ];
        let baseline = find_baseline(&points, "repro_all", "quick", 1, "hls").unwrap();
        assert_eq!(baseline.label, "new");
        assert_eq!(
            find_baseline(&points, "repro_all", "quick", 4, "hls")
                .unwrap()
                .label,
            "parallel"
        );
        // Different commands never gate each other.
        assert_eq!(
            find_baseline(&points, "compound", "quick", 1, "hls")
                .unwrap()
                .label,
            "sweep"
        );
        // Neither do different hardware backends: the cpu point is the
        // cpu baseline, and it never shadows the hls one.
        assert_eq!(
            find_baseline(&points, "repro_all", "quick", 1, "cpu")
                .unwrap()
                .label,
            "cpu-model"
        );
        assert!(find_baseline(&points, "repro_all", "quick", 1, "hetero").is_none());
        assert!(find_baseline(&points, "repro_all", "paper", 8, "hls").is_none());
        assert!(find_baseline(&points, "compound", "paper", 1, "hls").is_none());
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond_it() {
        // 20% slower under a 50% threshold: pass, delta reported.
        let delta = regression_gate(1.0, 1.2, 50.0).unwrap();
        assert!((delta - 20.0).abs() < 1e-9);
        // Faster than baseline: pass with negative delta.
        assert!(regression_gate(1.0, 0.7, 50.0).unwrap() < 0.0);
        // An injected 2x regression trips a 50% gate.
        let err = regression_gate(1.0, 2.0, 50.0).unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        assert!(err.contains("+100.0%"), "{err}");
        // Degenerate baselines are an error, not a pass.
        assert!(regression_gate(0.0, 1.0, 50.0).is_err());
    }
}
