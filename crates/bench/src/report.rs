//! The `report` command: renders a finished run directory (`--out DIR`)
//! into a human-readable summary, entirely offline.
//!
//! A run directory accumulates two kinds of artifacts: the deterministic
//! ones (`measurements.json`, `metrics.tsv`, `checkpoint.jsonl`,
//! `manifest.json`) and the wall-clock observability stream
//! (`progress.jsonl`, `profile.json`). `report` joins both sides:
//!
//! * **Run overview** — the final `progress.jsonl` heartbeat (cells
//!   done/total, cached, retries, failures, elapsed, rate).
//! * **Phase profile** — per-phase wall-clock p50/p95/p99 from
//!   `profile.json`.
//! * **Worker utilization** — busy fraction and cells/sec per worker.
//! * **Cache effectiveness** — the `cache.*` counters from `metrics.tsv`.
//! * **Slowest cells** — top N by modeled `total_cycles` from
//!   `measurements.json`.
//! * **Failures** — the failure records from `measurements.json`.
//!
//! Every section is optional: the report renders whatever artifacts exist
//! and says which ones were absent, so it works on partial (interrupted)
//! runs too.

use copernicus::table::TextTable;
use serde::Value;
use std::path::Path;

/// `report DIR [--top N]` — see the [module docs](self).
pub fn report(args: Vec<String>) -> i32 {
    let usage = "usage: report DIR [--top N]";
    let mut dir: Option<std::path::PathBuf> = None;
    let mut top = 10usize;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let Some(v) = args.next() else {
                    eprintln!("--top needs a value\n{usage}");
                    return 2;
                };
                top = match v.parse() {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("bad --top {v:?}: {e}\n{usage}");
                        return 2;
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag:?}\n{usage}");
                return 2;
            }
            path if dir.is_none() => dir = Some(std::path::PathBuf::from(path)),
            extra => {
                eprintln!("unexpected argument {extra:?}\n{usage}");
                return 2;
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("{usage}");
        return 2;
    };
    if !dir.is_dir() {
        eprintln!("report: {} is not a directory", dir.display());
        return 1;
    }
    print!("{}", render_report(&dir, top));
    0
}

/// Renders the full report for a run directory.
pub fn render_report(dir: &Path, top: usize) -> String {
    let mut out = String::new();
    let mut absent: Vec<&str> = Vec::new();
    out.push_str(&format!("run report: {}\n", dir.display()));

    match read_json_lines(&dir.join("progress.jsonl")) {
        Some(lines) if !lines.is_empty() => {
            out.push_str("\n== run overview (progress.jsonl) ==\n");
            out.push_str(&render_overview(lines.last().expect("non-empty")));
        }
        _ => absent.push("progress.jsonl"),
    }

    match read_json(&dir.join("profile.json")) {
        Some(profile) => {
            out.push_str("\n== wall-clock phase profile (profile.json) ==\n");
            out.push_str(&render_phases(&profile));
            out.push_str("\n== worker utilization ==\n");
            out.push_str(&render_workers(&profile));
        }
        None => absent.push("profile.json"),
    }

    match std::fs::read_to_string(dir.join("metrics.tsv")) {
        Ok(tsv) => {
            out.push_str("\n== cache effectiveness (metrics.tsv) ==\n");
            out.push_str(&render_cache(&tsv));
            let retry = render_retries(&tsv);
            if !retry.is_empty() {
                out.push_str("\n== retries & failures (metrics.tsv) ==\n");
                out.push_str(&retry);
            }
        }
        Err(_) => absent.push("metrics.tsv"),
    }

    match read_json(&dir.join("measurements.json")) {
        Some(doc) => {
            out.push_str(&format!(
                "\n== slowest cells (top {top} by modeled cycles) ==\n"
            ));
            out.push_str(&render_slowest(&doc, top));
            let failures = render_failures(&doc);
            if !failures.is_empty() {
                out.push_str("\n== failed cells (measurements.json) ==\n");
                out.push_str(&failures);
            }
        }
        None => absent.push("measurements.json"),
    }

    if let Some(lines) = read_json_lines(&dir.join("checkpoint.jsonl")) {
        out.push_str(&format!(
            "\ncheckpoint.jsonl: {} cell(s) resumable\n",
            lines.len()
        ));
    }
    if !absent.is_empty() {
        out.push_str(&format!("\nabsent artifacts: {}\n", absent.join(", ")));
    }
    out
}

fn read_json(path: &Path) -> Option<Value> {
    serde::json::parse(&std::fs::read_to_string(path).ok()?).ok()
}

fn read_json_lines(path: &Path) -> Option<Vec<Value>> {
    let text = std::fs::read_to_string(path).ok()?;
    Some(
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde::json::parse(l).ok())
            .collect(),
    )
}

fn num(v: Option<&Value>) -> f64 {
    v.and_then(Value::as_f64).unwrap_or(0.0)
}

fn uint(v: Option<&Value>) -> u64 {
    v.and_then(Value::as_u64).unwrap_or(0)
}

fn render_overview(last: &Value) -> String {
    let done = uint(last.get("done"));
    let total = uint(last.get("total"));
    let cached = uint(last.get("cached"));
    let elapsed = num(last.get("elapsed_secs"));
    let mut out = format!(
        "cells:    {done}/{total} ({cached} cached, {} computed)\n",
        done.saturating_sub(cached)
    );
    out.push_str(&format!(
        "elapsed:  {elapsed:.2}s at {:.1} cells/s\n",
        num(last.get("rate_cells_per_sec"))
    ));
    out.push_str(&format!(
        "retries:  {}\nfailures: {}\n",
        uint(last.get("retries")),
        uint(last.get("failures"))
    ));
    if last.get("final") != Some(&Value::Bool(true)) {
        out.push_str("note: stream has no final line — the run may have been interrupted\n");
    }
    out
}

fn render_phases(profile: &Value) -> String {
    let Some(phases) = profile.get("phases").and_then(Value::as_map) else {
        return "no phases recorded\n".to_string();
    };
    let mut t = TextTable::new(&[
        "phase", "count", "sum_s", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms",
    ]);
    for (name, h) in phases {
        t.row(&[
            name.clone(),
            uint(h.get("count")).to_string(),
            format!("{:.3}", num(h.get("sum_secs"))),
            format!("{:.3}", num(h.get("mean_secs")) * 1e3),
            format!("{:.3}", num(h.get("p50_secs")) * 1e3),
            format!("{:.3}", num(h.get("p95_secs")) * 1e3),
            format!("{:.3}", num(h.get("p99_secs")) * 1e3),
            format!("{:.3}", num(h.get("max_secs")) * 1e3),
        ]);
    }
    t.render()
}

fn render_workers(profile: &Value) -> String {
    let Some(workers) = profile.get("workers").and_then(Value::as_seq) else {
        return "no worker data recorded\n".to_string();
    };
    if workers.is_empty() {
        return "no worker data recorded\n".to_string();
    }
    let wall = num(profile.get("campaign_wall_secs"));
    let mut t = TextTable::new(&["worker", "busy_s", "utilization", "cells", "cells/s"]);
    for w in workers {
        t.row(&[
            uint(w.get("worker")).to_string(),
            format!("{:.3}", num(w.get("busy_secs"))),
            format!("{:.0}%", num(w.get("utilization")) * 100.0),
            uint(w.get("cells")).to_string(),
            format!("{:.1}", num(w.get("cells_per_sec"))),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!("campaign wall time: {wall:.2}s\n"));
    out
}

/// Pulls one counter out of a metrics TSV (`metric\tkind\tcount\t...`).
fn counter(tsv: &str, name: &str) -> Option<u64> {
    tsv.lines().find_map(|line| {
        let mut cols = line.split('\t');
        (cols.next() == Some(name) && cols.next() == Some("counter"))
            .then(|| cols.next().and_then(|v| v.parse().ok()))
            .flatten()
    })
}

fn render_cache(tsv: &str) -> String {
    let g_hit = counter(tsv, "cache.grid_hits").unwrap_or(0);
    let g_miss = counter(tsv, "cache.grid_misses").unwrap_or(0);
    let m_hit = counter(tsv, "cache.matrix_hits").unwrap_or(0);
    let m_miss = counter(tsv, "cache.matrix_misses").unwrap_or(0);
    if g_hit + g_miss + m_hit + m_miss == 0 {
        return "no cache counters recorded\n".to_string();
    }
    let pct = |hit: u64, miss: u64| {
        let total = hit + miss;
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64 * 100.0
        }
    };
    let mut t = TextTable::new(&["cache", "hits", "misses", "hit_rate"]);
    t.row(&[
        "grid".to_string(),
        g_hit.to_string(),
        g_miss.to_string(),
        format!("{:.0}%", pct(g_hit, g_miss)),
    ]);
    t.row(&[
        "matrix".to_string(),
        m_hit.to_string(),
        m_miss.to_string(),
        format!("{:.0}%", pct(m_hit, m_miss)),
    ]);
    t.render()
}

fn render_retries(tsv: &str) -> String {
    let retries = counter(tsv, "cell_retries").unwrap_or(0);
    let failures = counter(tsv, "cell_failures").unwrap_or(0);
    if retries == 0 && failures == 0 {
        return String::new();
    }
    let mut out = format!("cell retries: {retries}\ncell failures: {failures}\n");
    for line in tsv.lines() {
        if let Some(rest) = line.strip_prefix("failures.") {
            let mut cols = rest.split('\t');
            if let (Some(kind), Some("counter"), Some(count)) =
                (cols.next(), cols.next(), cols.next())
            {
                out.push_str(&format!("  {kind}: {count}\n"));
            }
        }
    }
    out
}

fn render_slowest(doc: &Value, top: usize) -> String {
    let Some(ms) = doc.get("measurements").and_then(Value::as_seq) else {
        return "no measurements recorded\n".to_string();
    };
    let mut cells: Vec<(&Value, u64)> = ms
        .iter()
        .map(|m| (m, uint(m.get("report").and_then(|r| r.get("total_cycles")))))
        .collect();
    cells.sort_by_key(|&(_, cycles)| std::cmp::Reverse(cycles));
    let mut t = TextTable::new(&["workload", "p", "format", "total_cycles", "sigma"]);
    for (m, cycles) in cells.iter().take(top) {
        let report = m.get("report");
        let compute = num(report.and_then(|r| r.get("total_compute_cycles")));
        let dense = num(report.and_then(|r| r.get("dense_equivalent_compute")));
        let sigma = if dense > 0.0 { compute / dense } else { 0.0 };
        t.row(&[
            m.get("workload")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            uint(m.get("partition_size")).to_string(),
            m.get("format")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            cycles.to_string(),
            format!("{sigma:.3}"),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!("({} cell(s) total)\n", cells.len()));
    out
}

fn render_failures(doc: &Value) -> String {
    let Some(failures) = doc.get("failures").and_then(Value::as_seq) else {
        return String::new();
    };
    if failures.is_empty() {
        return String::new();
    }
    let mut t = TextTable::new(&["cell", "workload", "p", "format", "kind", "retries"]);
    for f in failures {
        t.row(&[
            uint(f.get("cell")).to_string(),
            f.get("workload")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            uint(f.get("partition_size")).to_string(),
            f.get("format")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            f.get("kind")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            uint(f.get("retries")).to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copernicus-report-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn empty_directory_reports_absent_artifacts() {
        let dir = scratch("empty");
        let text = render_report(&dir, 5);
        assert!(text.contains("absent artifacts"));
        assert!(text.contains("progress.jsonl"));
        assert!(text.contains("profile.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_renders_every_section_from_artifacts() {
        let dir = scratch("full");
        std::fs::write(
            dir.join("progress.jsonl"),
            "{\"done\": 4, \"total\": 8, \"cached\": 1, \"retries\": 2, \"failures\": 1, \"elapsed_secs\": 2.0, \"rate_cells_per_sec\": 2.0, \"eta_secs\": 2.0, \"final\": false}\n{\"done\": 8, \"total\": 8, \"cached\": 3, \"retries\": 2, \"failures\": 1, \"elapsed_secs\": 4.0, \"rate_cells_per_sec\": 2.0, \"eta_secs\": null, \"final\": true}\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("profile.json"),
            "{\"phases\": {\"encode\": {\"count\": 3, \"sum_secs\": 0.3, \"mean_secs\": 0.1, \"min_secs\": 0.05, \"max_secs\": 0.2, \"p50_secs\": 0.1, \"p95_secs\": 0.2, \"p99_secs\": 0.2}}, \"workers\": [{\"worker\": 0, \"busy_secs\": 1.5, \"cells\": 8, \"utilization\": 0.75, \"cells_per_sec\": 5.33}], \"campaign_wall_secs\": 2.0}",
        )
        .unwrap();
        std::fs::write(
            dir.join("metrics.tsv"),
            "metric\tkind\tcount\tsum\tmean\tmin\tmax\tp50\tp99\ncache.grid_hits\tcounter\t6\t6\t\t\t\t\t\ncache.grid_misses\tcounter\t2\t2\t\t\t\t\t\ncache.matrix_hits\tcounter\t1\t1\t\t\t\t\t\ncache.matrix_misses\tcounter\t1\t1\t\t\t\t\t\ncell_retries\tcounter\t2\t2\t\t\t\t\t\ncell_failures\tcounter\t1\t1\t\t\t\t\t\nfailures.panic\tcounter\t1\t1\t\t\t\t\t\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("measurements.json"),
            "{\"measurements\": [{\"workload\": \"d=0.1\", \"partition_size\": 16, \"format\": \"CSR\", \"report\": {\"total_cycles\": 900, \"total_compute_cycles\": 600, \"dense_equivalent_compute\": 300}}, {\"workload\": \"w=4\", \"partition_size\": 8, \"format\": \"COO\", \"report\": {\"total_cycles\": 1200, \"total_compute_cycles\": 500, \"dense_equivalent_compute\": 500}}], \"failures\": [{\"cell\": 7, \"workload\": \"d=0.1\", \"partition_size\": 16, \"format\": \"ELL\", \"kind\": \"panic\", \"retries\": 2}]}",
        )
        .unwrap();
        std::fs::write(dir.join("checkpoint.jsonl"), "{\"key\": \"k\"}\n").unwrap();

        let text = render_report(&dir, 5);
        assert!(
            text.contains("cells:    8/8 (3 cached, 5 computed)"),
            "{text}"
        );
        assert!(text.contains("retries:  2"), "{text}");
        assert!(text.contains("encode"), "{text}");
        assert!(text.contains("75%"), "{text}");
        assert!(text.contains("grid") && text.contains("matrix"), "{text}");
        assert!(
            text.contains("failures.panic") || text.contains("panic"),
            "{text}"
        );
        // Slowest cell first: the COO cell at 1200 cycles.
        let coo = text.find("w=4").expect("COO row");
        let csr = text.find("d=0.1").expect("CSR row");
        assert!(coo < csr, "slowest cell must be listed first\n{text}");
        assert!(text.contains("1 cell(s) resumable"), "{text}");
        assert!(!text.contains("absent artifacts"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_stream_is_called_out() {
        let dir = scratch("interrupted");
        std::fs::write(
            dir.join("progress.jsonl"),
            "{\"done\": 3, \"total\": 8, \"cached\": 0, \"retries\": 0, \"failures\": 0, \"elapsed_secs\": 1.0, \"rate_cells_per_sec\": 3.0, \"eta_secs\": 1.7, \"final\": false}\n",
        )
        .unwrap();
        let text = render_report(&dir, 5);
        assert!(text.contains("may have been interrupted"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
