//! The `report` command: renders a finished run directory (`--out DIR`)
//! into a human-readable summary, entirely offline.
//!
//! A run directory accumulates two kinds of artifacts: the deterministic
//! ones (`measurements.json`, `metrics.tsv`, `checkpoint.jsonl`,
//! `manifest.json`) and the wall-clock observability stream
//! (`progress.jsonl`, `profile.json`). `report` joins both sides:
//!
//! * **Run overview** — the final `progress.jsonl` heartbeat (cells
//!   done/total, cached, retries, failures, elapsed, rate).
//! * **Phase profile** — per-phase wall-clock p50/p95/p99 from
//!   `profile.json`.
//! * **Worker utilization** — busy fraction and cells/sec per worker.
//! * **Cache effectiveness** — the `cache.*` counters from `metrics.tsv`.
//! * **Slowest cells** — top N by modeled `total_cycles` from
//!   `measurements.json`.
//! * **Failures** — the failure records from `measurements.json`.
//!
//! Every section is optional: the report renders whatever artifacts exist
//! and says which ones were absent, so it works on partial (interrupted)
//! runs too.

use copernicus::table::TextTable;
use serde::Value;
use std::path::Path;

/// `report DIR [--top N]` — see the [module docs](self).
pub fn report(args: Vec<String>) -> i32 {
    let usage = "usage: report DIR [--top N]";
    let mut dir: Option<std::path::PathBuf> = None;
    let mut top = 10usize;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let Some(v) = args.next() else {
                    eprintln!("--top needs a value\n{usage}");
                    return 2;
                };
                top = match v.parse() {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("bad --top {v:?}: {e}\n{usage}");
                        return 2;
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag:?}\n{usage}");
                return 2;
            }
            path if dir.is_none() => dir = Some(std::path::PathBuf::from(path)),
            extra => {
                eprintln!("unexpected argument {extra:?}\n{usage}");
                return 2;
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("{usage}");
        return 2;
    };
    if !dir.is_dir() {
        eprintln!("report: {} is not a directory", dir.display());
        return 1;
    }
    print!("{}", render_report(&dir, top));
    0
}

/// Renders the full report for a run directory.
pub fn render_report(dir: &Path, top: usize) -> String {
    let mut out = String::new();
    let mut absent: Vec<&str> = Vec::new();
    out.push_str(&format!("run report: {}\n", dir.display()));

    match read_json_lines(&dir.join("progress.jsonl")) {
        Some(lines) if !lines.is_empty() => {
            out.push_str("\n== run overview (progress.jsonl) ==\n");
            out.push_str(&render_overview(lines.last().expect("non-empty")));
        }
        _ => absent.push("progress.jsonl"),
    }

    match read_json(&dir.join("profile.json")) {
        Some(profile) => {
            out.push_str("\n== wall-clock phase profile (profile.json) ==\n");
            out.push_str(&render_phases(&profile));
            out.push_str("\n== worker utilization ==\n");
            out.push_str(&render_workers(&profile));
        }
        None => absent.push("profile.json"),
    }

    match std::fs::read_to_string(dir.join("metrics.tsv")) {
        Ok(tsv) => {
            out.push_str("\n== cache effectiveness (metrics.tsv) ==\n");
            out.push_str(&render_cache(&tsv));
            let codec = render_codec(&tsv);
            if !codec.is_empty() {
                out.push_str("\n== second-stage codec (metrics.tsv) ==\n");
                out.push_str(&codec);
            }
            let retry = render_retries(&tsv);
            if !retry.is_empty() {
                out.push_str("\n== retries & failures (metrics.tsv) ==\n");
                out.push_str(&retry);
            }
        }
        Err(_) => absent.push("metrics.tsv"),
    }

    match read_json(&dir.join("measurements.json")) {
        Some(doc) => {
            out.push_str(&format!(
                "\n== slowest cells (top {top} by modeled cycles) ==\n"
            ));
            out.push_str(&render_slowest(&doc, top));
            let failures = render_failures(&doc);
            if !failures.is_empty() {
                out.push_str("\n== failed cells (measurements.json) ==\n");
                out.push_str(&failures);
            }
        }
        None => absent.push("measurements.json"),
    }

    if let Some(doc) = read_json(&dir.join("BENCH_serve.json")) {
        out.push_str("\n== service latency (BENCH_serve.json) ==\n");
        out.push_str(&render_serve(&doc));
    }

    if let Ok(text) = std::fs::read_to_string(dir.join("BENCH_trajectory.json")) {
        let points = crate::perf::parse_trajectory(&text);
        if !points.is_empty() {
            out.push_str("\n== performance trajectory (BENCH_trajectory.json) ==\n");
            out.push_str(&render_trajectory(&points));
        }
    }

    if let Some(lines) = read_json_lines(&dir.join("checkpoint.jsonl")) {
        out.push_str(&format!(
            "\ncheckpoint.jsonl: {} cell(s) resumable\n",
            lines.len()
        ));
    }
    if !absent.is_empty() {
        out.push_str(&format!("\nabsent artifacts: {}\n", absent.join(", ")));
    }
    out
}

fn read_json(path: &Path) -> Option<Value> {
    serde::json::parse(&std::fs::read_to_string(path).ok()?).ok()
}

fn read_json_lines(path: &Path) -> Option<Vec<Value>> {
    let text = std::fs::read_to_string(path).ok()?;
    Some(
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde::json::parse(l).ok())
            .collect(),
    )
}

/// A present-and-numeric JSON field, `None` for a missing or malformed
/// one. These used to coerce silently to zero, which made a corrupted
/// artifact indistinguishable from a genuine zero — callers now render
/// `n/a` instead.
fn num(v: Option<&Value>) -> Option<f64> {
    v.and_then(Value::as_f64)
}

fn uint(v: Option<&Value>) -> Option<u64> {
    v.and_then(Value::as_u64)
}

/// Renders an optional count, `n/a` when absent or malformed.
fn fmt_uint(v: Option<u64>) -> String {
    v.map_or_else(|| "n/a".to_string(), |n| n.to_string())
}

/// Renders an optional float with `prec` decimals, `n/a` when absent.
fn fmt_num(v: Option<f64>, prec: usize) -> String {
    v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.prec$}"))
}

fn render_overview(last: &Value) -> String {
    let done = uint(last.get("done"));
    let total = uint(last.get("total"));
    let cached = uint(last.get("cached"));
    let computed = match (done, cached) {
        (Some(d), Some(c)) => d.saturating_sub(c).to_string(),
        _ => "n/a".to_string(),
    };
    let mut out = format!(
        "cells:    {}/{} ({} cached, {computed} computed)\n",
        fmt_uint(done),
        fmt_uint(total),
        fmt_uint(cached)
    );
    out.push_str(&format!(
        "elapsed:  {}s at {} cells/s\n",
        fmt_num(num(last.get("elapsed_secs")), 2),
        fmt_num(num(last.get("rate_cells_per_sec")), 1)
    ));
    out.push_str(&format!(
        "retries:  {}\nfailures: {}\n",
        fmt_uint(uint(last.get("retries"))),
        fmt_uint(uint(last.get("failures")))
    ));
    if last.get("final") != Some(&Value::Bool(true)) {
        out.push_str("note: stream has no final line — the run may have been interrupted\n");
    }
    out
}

fn render_phases(profile: &Value) -> String {
    let Some(phases) = profile.get("phases").and_then(Value::as_map) else {
        return "no phases recorded\n".to_string();
    };
    let mut t = TextTable::new(&[
        "phase", "count", "sum_s", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms",
    ]);
    let ms = |v: Option<f64>| fmt_num(v.map(|s| s * 1e3), 3);
    for (name, h) in phases {
        t.row(&[
            name.clone(),
            fmt_uint(uint(h.get("count"))),
            fmt_num(num(h.get("sum_secs")), 3),
            ms(num(h.get("mean_secs"))),
            ms(num(h.get("p50_secs"))),
            ms(num(h.get("p95_secs"))),
            ms(num(h.get("p99_secs"))),
            ms(num(h.get("max_secs"))),
        ]);
    }
    t.render()
}

fn render_workers(profile: &Value) -> String {
    let Some(workers) = profile.get("workers").and_then(Value::as_seq) else {
        return "no worker data recorded\n".to_string();
    };
    if workers.is_empty() {
        return "no worker data recorded\n".to_string();
    }
    let mut t = TextTable::new(&["worker", "busy_s", "utilization", "cells", "cells/s"]);
    for w in workers {
        let util = num(w.get("utilization"))
            .map_or_else(|| "n/a".to_string(), |u| format!("{:.0}%", u * 100.0));
        t.row(&[
            fmt_uint(uint(w.get("worker"))),
            fmt_num(num(w.get("busy_secs")), 3),
            util,
            fmt_uint(uint(w.get("cells"))),
            fmt_num(num(w.get("cells_per_sec")), 1),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "campaign wall time: {}s\n",
        fmt_num(num(profile.get("campaign_wall_secs")), 2)
    ));
    out
}

/// Pulls one counter out of a metrics TSV (`metric\tkind\tcount\t...`).
fn counter(tsv: &str, name: &str) -> Option<u64> {
    tsv.lines().find_map(|line| {
        let mut cols = line.split('\t');
        (cols.next() == Some(name) && cols.next() == Some("counter"))
            .then(|| cols.next().and_then(|v| v.parse().ok()))
            .flatten()
    })
}

fn render_cache(tsv: &str) -> String {
    let g_hit = counter(tsv, "cache.grid_hits").unwrap_or(0);
    let g_miss = counter(tsv, "cache.grid_misses").unwrap_or(0);
    let m_hit = counter(tsv, "cache.matrix_hits").unwrap_or(0);
    let m_miss = counter(tsv, "cache.matrix_misses").unwrap_or(0);
    if g_hit + g_miss + m_hit + m_miss == 0 {
        return "no cache counters recorded\n".to_string();
    }
    let pct = |hit: u64, miss: u64| {
        let total = hit + miss;
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64 * 100.0
        }
    };
    let mut t = TextTable::new(&["cache", "hits", "misses", "hit_rate"]);
    t.row(&[
        "grid".to_string(),
        g_hit.to_string(),
        g_miss.to_string(),
        format!("{:.0}%", pct(g_hit, g_miss)),
    ]);
    t.row(&[
        "matrix".to_string(),
        m_hit.to_string(),
        m_miss.to_string(),
        format!("{:.0}%", pct(m_hit, m_miss)),
    ]);
    t.render()
}

/// The second-stage codec summary. Codec-off runs export neither counter
/// (the exporters skip zero deltas), so the whole section is omitted then;
/// a run with either counter present renders both, `n/a` for the missing
/// one rather than a fabricated zero.
fn render_codec(tsv: &str) -> String {
    let entropy = counter(tsv, "codec.entropy_cycles");
    let saved = counter(tsv, "codec.saved_bytes");
    if entropy.is_none() && saved.is_none() {
        return String::new();
    }
    let mut out = format!(
        "entropy decode cycles: {}\nbus bytes saved:       {}\n",
        fmt_uint(entropy),
        fmt_uint(saved)
    );
    if let (Some(saved), Some(bytes)) = (saved, counter(tsv, "bytes")) {
        if bytes > 0 {
            out.push_str(&format!(
                "transfer reduction:    {:.1}% of raw stream bytes\n",
                saved as f64 / bytes as f64 * 100.0
            ));
        }
    }
    out
}

fn render_retries(tsv: &str) -> String {
    let retries = counter(tsv, "cell_retries").unwrap_or(0);
    let failures = counter(tsv, "cell_failures").unwrap_or(0);
    if retries == 0 && failures == 0 {
        return String::new();
    }
    let mut out = format!("cell retries: {retries}\ncell failures: {failures}\n");
    for line in tsv.lines() {
        if let Some(rest) = line.strip_prefix("failures.") {
            let mut cols = rest.split('\t');
            if let (Some(kind), Some("counter"), Some(count)) =
                (cols.next(), cols.next(), cols.next())
            {
                out.push_str(&format!("  {kind}: {count}\n"));
            }
        }
    }
    out
}

fn render_slowest(doc: &Value, top: usize) -> String {
    let Some(ms) = doc.get("measurements").and_then(Value::as_seq) else {
        return "no measurements recorded\n".to_string();
    };
    let mut cells: Vec<(&Value, Option<u64>)> = ms
        .iter()
        .map(|m| (m, uint(m.get("report").and_then(|r| r.get("total_cycles")))))
        .collect();
    // Cells with a malformed cycle count sort last, rendered as n/a.
    cells.sort_by_key(|&(_, cycles)| std::cmp::Reverse(cycles.unwrap_or(0)));
    let mut t = TextTable::new(&["workload", "p", "format", "total_cycles", "sigma"]);
    for (m, cycles) in cells.iter().take(top) {
        let report = m.get("report");
        let compute = num(report.and_then(|r| r.get("total_compute_cycles")));
        let dense = num(report.and_then(|r| r.get("dense_equivalent_compute")));
        let sigma = match (compute, dense) {
            (Some(c), Some(d)) if d > 0.0 => format!("{:.3}", c / d),
            (Some(_), Some(_)) => "0.000".to_string(),
            _ => "n/a".to_string(),
        };
        t.row(&[
            m.get("workload")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            fmt_uint(uint(m.get("partition_size"))),
            m.get("format")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            fmt_uint(*cycles),
            sigma,
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!("({} cell(s) total)\n", cells.len()));
    out
}

fn render_failures(doc: &Value) -> String {
    let Some(failures) = doc.get("failures").and_then(Value::as_seq) else {
        return String::new();
    };
    if failures.is_empty() {
        return String::new();
    }
    let mut t = TextTable::new(&["cell", "workload", "p", "format", "kind", "retries"]);
    for f in failures {
        t.row(&[
            fmt_uint(uint(f.get("cell"))),
            f.get("workload")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            fmt_uint(uint(f.get("partition_size"))),
            f.get("format")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            f.get("kind")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            fmt_uint(uint(f.get("retries"))),
        ]);
    }
    t.render()
}

/// The recorded perf trajectory, one row per point in record order. The
/// backend column keeps measurements from different hardware models
/// visibly separate — they never gate each other, so a reader comparing
/// rows across backends would be comparing different simulations.
fn render_trajectory(points: &[crate::perf::TrajectoryPoint]) -> String {
    let mut t = TextTable::new(&[
        "label", "cmd", "scale", "jobs", "backend", "best_s", "mean_s", "cv",
    ]);
    for p in points {
        t.row(&[
            p.label.clone(),
            p.cmd.clone(),
            p.scale.clone(),
            p.jobs.to_string(),
            p.backend.clone(),
            format!("{:.3}", p.best_secs),
            format!("{:.3}", p.mean_secs),
            format!("{:.1}%", p.cv * 100.0),
        ]);
    }
    t.render()
}

/// The storm results: one row per concurrency level, then the chaos-audit
/// verdict when one ran. Malformed or missing fields render `n/a`, never a
/// fabricated zero — a torn benchmark file must look torn.
fn render_serve(doc: &Value) -> String {
    let mut out = String::new();
    match doc.get("levels").and_then(Value::as_seq) {
        Some(levels) if !levels.is_empty() => {
            let mut t = TextTable::new(&[
                "clients", "ok", "rejected", "errors", "p50_ms", "p99_ms", "req/s",
            ]);
            for level in levels {
                t.row(&[
                    fmt_uint(uint(level.get("clients"))),
                    fmt_uint(uint(level.get("ok"))),
                    fmt_uint(uint(level.get("rejected"))),
                    fmt_uint(uint(level.get("errors"))),
                    fmt_num(num(level.get("p50_ms")), 1),
                    fmt_num(num(level.get("p99_ms")), 1),
                    fmt_num(num(level.get("req_per_s")), 1),
                ]);
            }
            out.push_str(&t.render());
        }
        _ => out.push_str("no load-test levels recorded\n"),
    }
    if let Some(chaos) = doc.get("chaos") {
        let lost = uint(chaos.get("lost"));
        let verdict = match lost {
            Some(0) => "PASS",
            Some(_) => "FAIL",
            None => "n/a",
        };
        out.push_str(&format!(
            "chaos audit: {verdict} — sent {} answered {} never_accepted {} lost {}\n",
            fmt_uint(uint(chaos.get("sent"))),
            fmt_uint(uint(chaos.get("answered_total"))),
            fmt_uint(uint(chaos.get("never_accepted"))),
            fmt_uint(lost),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copernicus-report-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn empty_directory_reports_absent_artifacts() {
        let dir = scratch("empty");
        let text = render_report(&dir, 5);
        assert!(text.contains("absent artifacts"));
        assert!(text.contains("progress.jsonl"));
        assert!(text.contains("profile.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_renders_every_section_from_artifacts() {
        let dir = scratch("full");
        std::fs::write(
            dir.join("progress.jsonl"),
            "{\"done\": 4, \"total\": 8, \"cached\": 1, \"retries\": 2, \"failures\": 1, \"elapsed_secs\": 2.0, \"rate_cells_per_sec\": 2.0, \"eta_secs\": 2.0, \"final\": false}\n{\"done\": 8, \"total\": 8, \"cached\": 3, \"retries\": 2, \"failures\": 1, \"elapsed_secs\": 4.0, \"rate_cells_per_sec\": 2.0, \"eta_secs\": null, \"final\": true}\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("profile.json"),
            "{\"phases\": {\"encode\": {\"count\": 3, \"sum_secs\": 0.3, \"mean_secs\": 0.1, \"min_secs\": 0.05, \"max_secs\": 0.2, \"p50_secs\": 0.1, \"p95_secs\": 0.2, \"p99_secs\": 0.2}}, \"workers\": [{\"worker\": 0, \"busy_secs\": 1.5, \"cells\": 8, \"utilization\": 0.75, \"cells_per_sec\": 5.33}], \"campaign_wall_secs\": 2.0}",
        )
        .unwrap();
        std::fs::write(
            dir.join("metrics.tsv"),
            "metric\tkind\tcount\tsum\tmean\tmin\tmax\tp50\tp99\ncache.grid_hits\tcounter\t6\t6\t\t\t\t\t\ncache.grid_misses\tcounter\t2\t2\t\t\t\t\t\ncache.matrix_hits\tcounter\t1\t1\t\t\t\t\t\ncache.matrix_misses\tcounter\t1\t1\t\t\t\t\t\ncell_retries\tcounter\t2\t2\t\t\t\t\t\ncell_failures\tcounter\t1\t1\t\t\t\t\t\nfailures.panic\tcounter\t1\t1\t\t\t\t\t\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("measurements.json"),
            "{\"measurements\": [{\"workload\": \"d=0.1\", \"partition_size\": 16, \"format\": \"CSR\", \"report\": {\"total_cycles\": 900, \"total_compute_cycles\": 600, \"dense_equivalent_compute\": 300}}, {\"workload\": \"w=4\", \"partition_size\": 8, \"format\": \"COO\", \"report\": {\"total_cycles\": 1200, \"total_compute_cycles\": 500, \"dense_equivalent_compute\": 500}}], \"failures\": [{\"cell\": 7, \"workload\": \"d=0.1\", \"partition_size\": 16, \"format\": \"ELL\", \"kind\": \"panic\", \"retries\": 2}]}",
        )
        .unwrap();
        std::fs::write(dir.join("checkpoint.jsonl"), "{\"key\": \"k\"}\n").unwrap();

        let text = render_report(&dir, 5);
        assert!(
            text.contains("cells:    8/8 (3 cached, 5 computed)"),
            "{text}"
        );
        assert!(text.contains("retries:  2"), "{text}");
        assert!(text.contains("encode"), "{text}");
        assert!(text.contains("75%"), "{text}");
        assert!(text.contains("grid") && text.contains("matrix"), "{text}");
        assert!(
            text.contains("failures.panic") || text.contains("panic"),
            "{text}"
        );
        // Slowest cell first: the COO cell at 1200 cycles.
        let coo = text.find("w=4").expect("COO row");
        let csr = text.find("d=0.1").expect("CSR row");
        assert!(coo < csr, "slowest cell must be listed first\n{text}");
        assert!(text.contains("1 cell(s) resumable"), "{text}");
        assert!(!text.contains("absent artifacts"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_fields_render_as_not_available_not_zero() {
        let dir = scratch("malformed");
        // Numbers replaced with strings, and key fields simply missing:
        // each must surface as `n/a`, never be coerced to a silent 0.
        std::fs::write(
            dir.join("progress.jsonl"),
            "{\"done\": \"eight\", \"cached\": 3, \"retries\": 2, \"failures\": 0, \"elapsed_secs\": \"soon\", \"final\": true}\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("profile.json"),
            "{\"phases\": {\"encode\": {\"count\": 3, \"sum_secs\": \"lots\"}}, \"workers\": [{\"worker\": 0, \"cells\": \"many\"}]}",
        )
        .unwrap();
        std::fs::write(
            dir.join("measurements.json"),
            "{\"measurements\": [{\"workload\": \"d=0.1\", \"format\": \"CSR\", \"report\": {\"total_cycles\": \"broken\"}}]}",
        )
        .unwrap();
        let text = render_report(&dir, 5);
        assert!(
            text.contains("cells:    n/a/n/a (3 cached, n/a computed)"),
            "{text}"
        );
        assert!(text.contains("elapsed:  n/as at n/a cells/s"), "{text}");
        assert!(text.contains("retries:  2"), "{text}");
        // The phase row keeps its parsed count but flags the broken sum.
        assert!(text.contains("n/a"), "{text}");
        assert!(
            !text.contains("0.00s at"),
            "malformed elapsed must not read as 0\n{text}"
        );
        // The measurement row survives: missing partition size and a broken
        // cycle count both render as n/a, and sigma (whose inputs are
        // absent) is n/a rather than the old fabricated 0.000.
        let row = text
            .lines()
            .find(|l| l.contains("d=0.1"))
            .expect("CSR measurement row");
        assert!(row.contains("CSR"), "{row}");
        assert_eq!(row.matches("n/a").count(), 3, "{row}");
        assert!(!row.contains("0.000"), "{row}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn codec_section_renders_from_counters_and_vanishes_without_them() {
        let dir = scratch("codec");
        // Codec-off: cache counters only — no codec section at all.
        std::fs::write(
            dir.join("metrics.tsv"),
            "metric\tkind\tcount\tsum\ncache.grid_hits\tcounter\t6\t6\ncache.grid_misses\tcounter\t2\t2\n",
        )
        .unwrap();
        let text = render_report(&dir, 5);
        assert!(!text.contains("second-stage codec"), "{text}");

        // Codec-on: both counters plus the raw byte counter for the ratio.
        std::fs::write(
            dir.join("metrics.tsv"),
            "metric\tkind\tcount\tsum\nbytes\tcounter\t1000\t1000\ncodec.entropy_cycles\tcounter\t420\t420\ncodec.saved_bytes\tcounter\t250\t250\n",
        )
        .unwrap();
        let text = render_report(&dir, 5);
        assert!(text.contains("second-stage codec"), "{text}");
        assert!(text.contains("entropy decode cycles: 420"), "{text}");
        assert!(text.contains("bus bytes saved:       250"), "{text}");
        assert!(text.contains("25.0% of raw stream bytes"), "{text}");

        // One counter present, the other absent: n/a, not zero, and the
        // ratio line (whose inputs are incomplete) is dropped.
        std::fs::write(
            dir.join("metrics.tsv"),
            "metric\tkind\tcount\tsum\ncodec.entropy_cycles\tcounter\t420\t420\n",
        )
        .unwrap();
        let text = render_report(&dir, 5);
        assert!(text.contains("bus bytes saved:       n/a"), "{text}");
        assert!(!text.contains("raw stream bytes"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_section_renders_levels_and_chaos_with_na_degradation() {
        let dir = scratch("serve");
        // Absent file: no serve section at all.
        let text = render_report(&dir, 5);
        assert!(!text.contains("service latency"), "{text}");

        // A healthy file: both levels rendered, chaos verdict PASS.
        std::fs::write(
            dir.join("BENCH_serve.json"),
            "{\"schema\": \"bench_serve_v1\", \"levels\": [{\"clients\": 2, \"ok\": 8, \"rejected\": 0, \"errors\": 0, \"p50_ms\": 85.3, \"p99_ms\": 89.9, \"req_per_s\": 29.9}, {\"clients\": 8, \"ok\": 30, \"rejected\": 2, \"errors\": 0, \"p50_ms\": 120.0, \"p99_ms\": 310.5, \"req_per_s\": 51.0}], \"chaos\": {\"sent\": 10, \"answered_pre_kill\": 6, \"answered_total\": 8, \"never_accepted\": 2, \"lost\": 0, \"garbage_rejected\": true, \"clean_exit\": true}}",
        )
        .unwrap();
        let text = render_report(&dir, 5);
        assert!(text.contains("service latency"), "{text}");
        assert!(text.contains("85.3"), "{text}");
        assert!(text.contains("310.5"), "{text}");
        assert!(
            text.contains("chaos audit: PASS") && text.contains("lost 0"),
            "{text}"
        );

        // Malformed fields degrade to n/a; a lost request flips the verdict.
        std::fs::write(
            dir.join("BENCH_serve.json"),
            "{\"levels\": [{\"clients\": 2, \"ok\": \"many\", \"p50_ms\": \"fast\"}], \"chaos\": {\"sent\": 10, \"lost\": 3}}",
        )
        .unwrap();
        let text = render_report(&dir, 5);
        assert!(text.contains("n/a"), "{text}");
        assert!(text.contains("chaos audit: FAIL"), "{text}");
        assert!(!text.contains("\t0\t"), "{text}");

        // No levels at all is said out loud, not rendered as an empty table.
        std::fs::write(dir.join("BENCH_serve.json"), "{\"levels\": []}").unwrap();
        let text = render_report(&dir, 5);
        assert!(text.contains("no load-test levels recorded"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trajectory_section_keeps_backends_in_separate_rows() {
        let dir = scratch("trajectory");
        // One modern point (cpu backend) and one legacy point with no
        // backend field, which must render as hls — never blend together.
        std::fs::write(
            dir.join("BENCH_trajectory.json"),
            "{\"points\": [{\"label\": \"old\", \"scale\": \"quick\", \"jobs\": 1, \"iterations\": 1, \"runs_secs\": [1.0], \"best_secs\": 1.0, \"mean_secs\": 1.0}, {\"label\": \"cpu-model\", \"cmd\": \"repro_all\", \"scale\": \"quick\", \"jobs\": 1, \"backend\": \"cpu\", \"iterations\": 1, \"runs_secs\": [0.5], \"best_secs\": 0.5, \"mean_secs\": 0.5}]}",
        )
        .unwrap();
        let text = render_report(&dir, 5);
        assert!(text.contains("performance trajectory"), "{text}");
        assert!(text.contains("backend"), "{text}");
        let old = text.lines().find(|l| l.contains("old")).expect("old row");
        assert!(old.contains("hls"), "legacy point must read as hls\n{old}");
        let cpu = text
            .lines()
            .find(|l| l.contains("cpu-model"))
            .expect("cpu row");
        assert!(cpu.contains("cpu"), "{cpu}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_stream_is_called_out() {
        let dir = scratch("interrupted");
        std::fs::write(
            dir.join("progress.jsonl"),
            "{\"done\": 3, \"total\": 8, \"cached\": 0, \"retries\": 0, \"failures\": 0, \"elapsed_secs\": 1.0, \"rate_cells_per_sec\": 3.0, \"eta_secs\": 1.7, \"final\": false}\n",
        )
        .unwrap();
        let text = render_report(&dir, 5);
        assert!(text.contains("may have been interrupted"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
