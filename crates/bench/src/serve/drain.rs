//! Shutdown signaling and the drain state machine.
//!
//! The daemon moves through three states:
//!
//! ```text
//! SERVING ──SIGTERM / SIGINT / POST /admin/drain──▶ DRAINING ──queue empty,
//!    │                                                 │        workers idle,
//!    │ /readyz 200                                     │        replies written
//!    ▼                                                 ▼
//!  accept + admit                            /readyz 503, admit nothing,
//!                                            finish admitted work   ──▶ EXIT 0
//! ```
//!
//! Signals only flip an `AtomicBool` (the only async-signal-safe thing a
//! handler may do); the accept loop polls it. Installation uses a raw
//! `signal(2)` FFI declaration because the workspace is offline — no
//! `libc` crate — and is `#[cfg(unix)]`-gated; elsewhere only
//! `POST /admin/drain` triggers a drain.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler (or [`request_shutdown`]); polled by the
/// accept loop. Process-global because signal handlers cannot carry state.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a shutdown has been requested by signal or admin endpoint.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests a graceful drain (the `POST /admin/drain` path, also used by
/// tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: a single atomic store, nothing else.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that flip the shutdown flag. Safe to
/// call more than once.
#[cfg(unix)]
pub fn install_signal_handlers() {
    // No libc crate in the vendored workspace; declare the two symbols we
    // need. SIG_ERR (usize::MAX) is ignored — failing to install a handler
    // degrades to "drain via /admin/drain only", never to a crash.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// Non-unix fallback: signals are unavailable; `POST /admin/drain` remains
/// the drain trigger.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shutdown_flips_the_flag() {
        // Process-global state: this test is the only one in the crate
        // touching it outside the serve loop, so it only asserts the
        // post-condition (the flag may already be set by a prior run).
        request_shutdown();
        assert!(shutdown_requested());
    }
}
