//! The bounded admission queue: accept-or-429 at the front door.
//!
//! Backpressure is immediate — [`BoundedQueue::try_push`] never blocks the
//! connection thread. A full queue answers `429 Too Many Requests` with a
//! `Retry-After` hint instead of letting latency collapse for everyone
//! already admitted. The queue tracks its depth high-watermark so `/stats`
//! can report how close to shedding the service has run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed the request with `429`.
    Full,
    /// The queue is draining — no new work is admitted (`503`).
    Closed,
}

/// A fixed-capacity MPMC queue: non-blocking push, blocking pop, explicit
/// close for drain.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
    high_watermark: AtomicUsize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items at once.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            high_watermark: AtomicUsize::new(0),
        }
    }

    /// Lock helper that survives a poisoned mutex (a panicking worker must
    /// not wedge admission).
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admits `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] once the
    /// queue is draining; the item rides back in the error so the caller
    /// can answer the client with it.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut state = self.lock();
        if state.closed {
            return Err((PushError::Closed, item));
        }
        if state.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.high_watermark.fetch_max(depth, Ordering::Relaxed);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// empty (drain: admitted work is still handed out after close).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Stops admission and wakes every blocked popper. Items already
    /// admitted remain poppable — close refuses *new* work, it never drops
    /// accepted work.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark.load(Ordering::Relaxed)
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_round_trips_in_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        let (err, item) = q.try_push(3).expect_err("full");
        assert_eq!(err, PushError::Full);
        assert_eq!(item, 3);
        assert_eq!(q.high_watermark(), 2);
    }

    #[test]
    fn closed_queue_refuses_new_but_drains_admitted() {
        let q = BoundedQueue::new(4);
        q.try_push(1).expect("push");
        q.close();
        let (err, _) = q.try_push(2).expect_err("closed");
        assert_eq!(err, PushError::Closed);
        assert_eq!(q.pop(), Some(1), "admitted work survives close");
        assert_eq!(q.pop(), None, "then poppers unblock with None");
    }

    #[test]
    fn blocked_poppers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().expect("join"), None);
    }

    #[test]
    fn watermark_tracks_the_deepest_point() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("push");
        }
        for _ in 0..5 {
            q.pop();
        }
        q.try_push(9).expect("push");
        assert_eq!(q.high_watermark(), 5);
        assert_eq!(q.len(), 1);
    }
}
