//! Request specs, jobs, and the worker pool that runs campaigns.
//!
//! Each worker owns its own [`CampaignRunner`] per job (the Session-per-
//! worker layout from the hot-path PR), with the request's deadline token
//! threaded into the campaign policy so an expired deadline cooperatively
//! cancels the unit loop mid-flight. Worker panics are confined to the
//! job: the runner's own `catch_unwind` isolates cell panics, and the
//! reply channel closing on a scheduler bug surfaces as `500` to exactly
//! one client.

use super::protocol::ProtocolError;
use super::ServiceState;
use copernicus::{CampaignError, CampaignPolicy, CampaignRunner, ExperimentConfig};
use copernicus::{FailureKind, Measurement};
use copernicus_hls::HwConfig;
use copernicus_telemetry::CancelToken;
use copernicus_workloads::Workload;
use serde::Value;
use sparsemat::FormatKind;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Cap on formats × partition sizes per request — an admission-time guard
/// so one giant request cannot monopolize a worker past any deadline.
const MAX_CELLS_PER_REQUEST: usize = 256;

/// A parsed `POST /characterize` body.
#[derive(Debug, Clone)]
pub struct RequestSpec {
    /// Client-supplied idempotency key, if any.
    pub id: Option<String>,
    /// The matrix to characterize.
    pub workload: Workload,
    /// Formats to sweep.
    pub formats: Vec<FormatKind>,
    /// Partition sizes to sweep.
    pub partition_sizes: Vec<usize>,
    /// Workload generator seed.
    pub seed: u64,
    /// Request deadline in milliseconds (queue wait included).
    pub timeout_ms: Option<u64>,
    /// Transient-failure retries granted per cell.
    pub max_retries: u32,
    /// Hardware-model override assembled from the `backend` and `hw`
    /// fields, already validated. `None` keeps the service default
    /// (`HwConfig::default()` — the paper's HLS pipeline).
    pub hw: Option<HwConfig>,
}

/// Every top-level field `POST /characterize` accepts. Anything else is
/// rejected `422` — a typo like `"partion_sizes"` silently falling back to
/// a default is worse than an error.
const SPEC_FIELDS: [&str; 9] = [
    "id",
    "workload",
    "formats",
    "partition_sizes",
    "seed",
    "timeout_ms",
    "max_retries",
    "backend",
    "hw",
];

impl RequestSpec {
    /// Parses and validates a request body.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] (`400`) when the body is not UTF-8 or
    /// not JSON; [`ProtocolError::Unprocessable`] (`422`) when it is JSON
    /// but semantically invalid — missing/out-of-range fields, unknown
    /// fields, or a hardware override that fails validation.
    pub fn parse(body: &[u8]) -> Result<RequestSpec, ProtocolError> {
        let text = std::str::from_utf8(body)
            .map_err(|_| ProtocolError::Malformed("body is not UTF-8".to_string()))?;
        let doc: Value = serde::json::from_str(text)
            .map_err(|e| ProtocolError::Malformed(format!("body is not JSON: {e}")))?;
        Self::from_doc(&doc).map_err(ProtocolError::Unprocessable)
    }

    fn from_doc(doc: &Value) -> Result<RequestSpec, String> {
        let fields = doc.as_map().ok_or("body must be a JSON object")?;
        for (key, _) in fields {
            if !SPEC_FIELDS.contains(&key.as_str()) {
                return Err(format!(
                    "unknown field `{key}` (accepted: {})",
                    SPEC_FIELDS.join(", ")
                ));
            }
        }
        let workload = parse_workload(doc.get("workload").ok_or("missing field `workload`")?)?;

        let formats = match doc.get("formats") {
            None => vec![FormatKind::Csr],
            Some(v) => {
                let seq = v.as_seq().ok_or("`formats` must be an array")?;
                if seq.is_empty() {
                    return Err("`formats` must not be empty".to_string());
                }
                seq.iter()
                    .map(|f| {
                        f.as_str()
                            .ok_or_else(|| "`formats` entries must be strings".to_string())
                            .and_then(|s| s.parse::<FormatKind>().map_err(|e| e.to_string()))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let partition_sizes = match doc.get("partition_sizes") {
            None => vec![16],
            Some(v) => {
                let seq = v.as_seq().ok_or("`partition_sizes` must be an array")?;
                if seq.is_empty() {
                    return Err("`partition_sizes` must not be empty".to_string());
                }
                seq.iter()
                    .map(|p| {
                        p.as_u64()
                            .filter(|&p| (1..=4096).contains(&p))
                            .map(|p| p as usize)
                            .ok_or_else(|| {
                                "`partition_sizes` entries must be integers in 1..=4096".to_string()
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        if formats.len() * partition_sizes.len() > MAX_CELLS_PER_REQUEST {
            return Err(format!(
                "request sweeps {} cells; the per-request cap is {MAX_CELLS_PER_REQUEST}",
                formats.len() * partition_sizes.len()
            ));
        }
        let id = match doc.get("id") {
            None => None,
            Some(v) => {
                let s = v.as_str().ok_or("`id` must be a string")?;
                validate_id(s)?;
                Some(s.to_string())
            }
        };
        let hw = parse_hw_override(doc)?;
        Ok(RequestSpec {
            id,
            workload,
            formats,
            partition_sizes,
            seed: doc.get("seed").and_then(Value::as_u64).unwrap_or(42),
            timeout_ms: doc.get("timeout_ms").and_then(Value::as_u64),
            max_retries: doc
                .get("max_retries")
                .and_then(Value::as_u64)
                .map(|r| r.min(8) as u32)
                .unwrap_or(0),
            hw,
        })
    }
}

/// Assembles the per-request hardware override from the `backend` string
/// and the `hw` object, both optional. The override starts from
/// `HwConfig::default()` (not the incoming config — requests are
/// self-contained) and is validated as a whole, so an inconsistent
/// combination is rejected before any work is admitted.
fn parse_hw_override(doc: &Value) -> Result<Option<HwConfig>, String> {
    let mut hw: Option<HwConfig> = None;
    if let Some(v) = doc.get("backend") {
        let s = v.as_str().ok_or("`backend` must be a string")?;
        hw.get_or_insert_with(HwConfig::default).backend = s.parse()?;
    }
    if let Some(v) = doc.get("hw") {
        let map = v.as_map().ok_or("`hw` must be an object")?;
        let cfg = hw.get_or_insert_with(HwConfig::default);
        for (key, val) in map {
            match key.as_str() {
                "backend" => {
                    cfg.backend = val.as_str().ok_or("`hw.backend` must be a string")?.parse()?;
                }
                "stream_codec" => {
                    cfg.stream_codec = val
                        .as_str()
                        .ok_or("`hw.stream_codec` must be a string")?
                        .parse()
                        .map_err(|e| format!("bad `hw.stream_codec`: {e}"))?;
                }
                "clock_mhz" => {
                    cfg.clock_mhz = val
                        .as_f64()
                        .filter(|c| c.is_finite())
                        .ok_or("`hw.clock_mhz` must be a number")?;
                }
                "bus_bytes_per_cycle" => {
                    cfg.bus_bytes_per_cycle = val
                        .as_u64()
                        .ok_or("`hw.bus_bytes_per_cycle` must be an integer")?
                        as usize;
                }
                "cpu_clock_mhz" => {
                    cfg.cpu.clock_mhz = val
                        .as_f64()
                        .filter(|c| c.is_finite())
                        .ok_or("`hw.cpu_clock_mhz` must be a number")?;
                }
                "cpu_simd_width" => {
                    cfg.cpu.simd_width = val
                        .as_u64()
                        .ok_or("`hw.cpu_simd_width` must be an integer")?
                        as usize;
                }
                other => {
                    return Err(format!(
                        "unknown field `hw.{other}` (accepted: backend, stream_codec, clock_mhz, bus_bytes_per_cycle, cpu_clock_mhz, cpu_simd_width)"
                    ))
                }
            }
        }
    }
    if let Some(cfg) = &hw {
        cfg.validate()
            .map_err(|e| format!("invalid `hw` override: {e}"))?;
    }
    Ok(hw)
}

/// Request IDs become spool directory names; keep them path-safe.
pub fn validate_id(id: &str) -> Result<(), String> {
    if id.is_empty() || id.len() > 64 {
        return Err("`id` must be 1..=64 characters".to_string());
    }
    if !id
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err("`id` may only contain [A-Za-z0-9_-]".to_string());
    }
    Ok(())
}

fn parse_workload(v: &Value) -> Result<Workload, String> {
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("`workload.kind` must be \"random\" or \"band\"")?;
    let n = v
        .get("n")
        .and_then(Value::as_u64)
        .filter(|&n| (2..=4096).contains(&n))
        .ok_or("`workload.n` must be an integer in 2..=4096")? as usize;
    match kind {
        "random" => {
            let density = v
                .get("density")
                .and_then(Value::as_f64)
                .filter(|d| d.is_finite() && *d > 0.0 && *d <= 1.0)
                .ok_or("`workload.density` must be in (0, 1]")?;
            Ok(Workload::Random { n, density })
        }
        "band" => {
            let width = v
                .get("width")
                .and_then(Value::as_u64)
                .filter(|&w| w >= 1 && w <= n as u64)
                .ok_or("`workload.width` must be an integer in 1..=n")?
                as usize;
            Ok(Workload::Band { n, width })
        }
        other => Err(format!(
            "`workload.kind` must be \"random\" or \"band\", got {other:?}"
        )),
    }
}

/// What a finished job sends back to the waiting connection thread (and
/// writes into the spool).
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// HTTP status to answer with.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// JSON body.
    pub body: String,
}

/// One admitted request.
pub struct Job {
    /// Request id (client-supplied or server-assigned).
    pub id: String,
    /// The parsed spec.
    pub spec: RequestSpec,
    /// Where the answer goes; `None` for spool-recovery jobs replayed at
    /// startup with no client connected.
    pub reply: Option<std::sync::mpsc::Sender<JobOutcome>>,
    /// Deadline token armed at admission — queue wait counts against it.
    pub cancel: CancelToken,
}

/// Runs jobs until the queue closes and empties; then exits (the drain
/// barrier in `serve` waits for `active_jobs` to reach zero).
pub fn worker_loop(state: Arc<ServiceState>) {
    while let Some(job) = state.queue.pop() {
        state.active_jobs.fetch_add(1, Ordering::SeqCst);
        let outcome = execute_job(&state, &job);
        if let Some(dir) = state.spool_dir(&job.id) {
            persist_outcome(&dir, &outcome);
        }
        match outcome.status {
            200 => state.stats.completed.fetch_add(1, Ordering::Relaxed),
            504 => state.stats.timed_out.fetch_add(1, Ordering::Relaxed),
            _ => state.stats.failed.fetch_add(1, Ordering::Relaxed),
        };
        if let Some(reply) = &job.reply {
            // A vanished client (disconnected while queued) is not an
            // error; the result is already durable in the spool.
            let _ = reply.send(outcome);
        }
        state.active_jobs.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Writes `result.json` atomically so a kill mid-write can never leave a
/// torn (and thus unrecoverable) answer.
fn persist_outcome(dir: &std::path::Path, outcome: &JobOutcome) {
    let doc = Value::Map(vec![
        ("status".to_string(), Value::UInt(u64::from(outcome.status))),
        ("body".to_string(), Value::Str(outcome.body.clone())),
    ]);
    let path = dir.join("result.json");
    if let Err(e) = copernicus_telemetry::atomic_write(&path, serde::json::to_string(&doc)) {
        eprintln!("serve: could not persist {}: {e}", path.display());
    }
}

/// Executes one characterization campaign under the job's deadline token.
/// Per-job checkpointing (and resume, for recovery jobs) goes through the
/// campaign checkpoint machinery in the job's spool directory.
fn execute_job(state: &ServiceState, job: &Job) -> JobOutcome {
    let spec = &job.spec;
    let mut cfg = ExperimentConfig {
        seed: spec.seed,
        ..ExperimentConfig::quick()
    };
    if let Some(hw) = &spec.hw {
        // Per-request hardware override, validated at parse time. The
        // campaign still owns partition_size — it rewrites it per cell.
        cfg.hw = hw.clone();
    }
    let policy = CampaignPolicy {
        max_retries: spec.max_retries,
        cancel: Some(job.cancel.clone()),
        ..CampaignPolicy::default()
    };
    let mut runner = CampaignRunner::sequential().with_policy(policy);
    if let Some(dir) = state.spool_dir(&job.id) {
        let checkpoint = dir.join("checkpoint.jsonl");
        if checkpoint.exists() {
            match runner.resume_from(&checkpoint) {
                Ok(n) if n > 0 => eprintln!("serve: job {} resumed {n} cell(s)", job.id),
                Ok(_) => {}
                Err(e) => eprintln!("serve: job {} checkpoint unreadable: {e}", job.id),
            }
        }
        if let Err(e) = runner.attach_checkpoint(&checkpoint) {
            eprintln!("serve: job {} cannot checkpoint: {e}", job.id);
        }
    }
    let workloads = [spec.workload];
    let result = runner.characterize(&workloads, &spec.formats, &spec.partition_sizes, &cfg);
    match result {
        Ok(measurements) => JobOutcome {
            status: 200,
            reason: "OK",
            body: render_result(&job.id, &measurements),
        },
        Err(e) => classify_error(&job.id, &e),
    }
}

fn render_result(id: &str, measurements: &[Measurement]) -> String {
    let doc = Value::Map(vec![
        ("id".to_string(), Value::Str(id.to_string())),
        ("status".to_string(), Value::Str("ok".to_string())),
        ("cells".to_string(), Value::UInt(measurements.len() as u64)),
        (
            "measurements".to_string(),
            serde::Serialize::serialize(&measurements.to_vec()),
        ),
    ]);
    serde::json::to_string(&doc)
}

fn classify_error(id: &str, e: &CampaignError) -> JobOutcome {
    let timed_out = e
        .first_failure()
        .is_some_and(|f| f.kind == FailureKind::Timeout);
    let (status, reason, tag) = if timed_out {
        (504u16, "Gateway Timeout", "timeout")
    } else {
        (422u16, "Unprocessable Entity", "error")
    };
    let doc = Value::Map(vec![
        ("id".to_string(), Value::Str(id.to_string())),
        ("status".to_string(), Value::Str(tag.to_string())),
        ("error".to_string(), Value::Str(e.to_string())),
    ]);
    JobOutcome {
        status,
        reason,
        body: serde::json::to_string(&doc),
    }
}

/// The deadline token for a spec: expired specs cancel their campaign
/// cooperatively; specs without a deadline get a plain live token.
pub fn deadline_token(spec: &RequestSpec) -> CancelToken {
    let root = CancelToken::new();
    match spec.timeout_ms {
        Some(ms) => root.child(Some(Duration::from_millis(ms))),
        None => root,
    }
}

/// Runs a recovery job for `execute_job` without a live client: used by
/// startup spool recovery, where the outcome lands only in the spool.
pub fn recovery_job(id: String, spec: RequestSpec) -> Job {
    let cancel = deadline_token(&spec);
    Job {
        id,
        spec,
        reply: None,
        cancel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let body = br#"{
            "id": "req-7",
            "workload": {"kind": "random", "n": 48, "density": 0.1},
            "formats": ["CSR", "COO"],
            "partition_sizes": [8, 16],
            "seed": 7,
            "timeout_ms": 2000,
            "max_retries": 2
        }"#;
        let spec = RequestSpec::parse(body).expect("parse");
        assert_eq!(spec.id.as_deref(), Some("req-7"));
        assert_eq!(
            spec.workload,
            Workload::Random {
                n: 48,
                density: 0.1
            }
        );
        assert_eq!(spec.formats, vec![FormatKind::Csr, FormatKind::Coo]);
        assert_eq!(spec.partition_sizes, vec![8, 16]);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.timeout_ms, Some(2000));
        assert_eq!(spec.max_retries, 2);
    }

    #[test]
    fn minimal_spec_gets_defaults() {
        let spec = RequestSpec::parse(br#"{"workload": {"kind": "band", "n": 32, "width": 3}}"#)
            .expect("parse");
        assert!(spec.id.is_none());
        assert_eq!(spec.formats, vec![FormatKind::Csr]);
        assert_eq!(spec.partition_sizes, vec![16]);
        assert_eq!(spec.seed, 42);
        assert!(spec.timeout_ms.is_none());
    }

    #[test]
    fn rejects_bad_specs_with_messages() {
        for (body, needle) in [
            (&b"not json"[..], "not JSON"),
            (b"{}", "workload"),
            (br#"{"workload": {"kind": "cube", "n": 8}}"#, "kind"),
            (
                br#"{"workload": {"kind": "random", "n": 8, "density": 2.0}}"#,
                "density",
            ),
            (
                br#"{"workload": {"kind": "random", "n": 1, "density": 0.5}}"#,
                "workload.n",
            ),
            (
                br#"{"workload": {"kind": "band", "n": 8, "width": 9}}"#,
                "width",
            ),
            (
                br#"{"workload": {"kind": "band", "n": 8, "width": 2}, "formats": ["NOPE"]}"#,
                "NOPE",
            ),
            (
                br#"{"workload": {"kind": "band", "n": 8, "width": 2}, "partition_sizes": []}"#,
                "partition_sizes",
            ),
            (
                br#"{"workload": {"kind": "band", "n": 8, "width": 2}, "id": "../escape"}"#,
                "id",
            ),
        ] {
            let err = RequestSpec::parse(body).expect_err("must fail");
            assert!(
                err.to_string().contains(needle),
                "error {err:?} does not mention {needle:?}"
            );
        }
    }

    #[test]
    fn body_shape_errors_are_400_and_content_errors_are_422() {
        // Not JSON at all: a framing-level 400.
        let e = RequestSpec::parse(b"not json").expect_err("must fail");
        assert!(matches!(e, ProtocolError::Malformed(_)), "{e}");
        assert_eq!(e.status(), Some((400, "Bad Request")));
        // Valid JSON, invalid content: 422.
        let e = RequestSpec::parse(b"{}").expect_err("must fail");
        assert!(matches!(e, ProtocolError::Unprocessable(_)), "{e}");
        assert_eq!(e.status(), Some((422, "Unprocessable Entity")));
    }

    #[test]
    fn unknown_fields_are_rejected_not_ignored() {
        // A typo'd field name must not silently fall back to a default.
        let err = RequestSpec::parse(
            br#"{"workload": {"kind": "band", "n": 32, "width": 3}, "partion_sizes": [8]}"#,
        )
        .expect_err("typo must fail");
        assert!(matches!(err, ProtocolError::Unprocessable(_)), "{err}");
        assert!(err.to_string().contains("partion_sizes"), "{err}");
        let err = RequestSpec::parse(
            br#"{"workload": {"kind": "band", "n": 32, "width": 3}, "hw": {"warp_drive": 9}}"#,
        )
        .expect_err("unknown hw knob must fail");
        assert!(err.to_string().contains("hw.warp_drive"), "{err}");
    }

    #[test]
    fn backend_and_hw_overrides_parse_and_validate() {
        use copernicus_hls::BackendKind;
        // No override fields: no HwConfig attached.
        let spec = RequestSpec::parse(br#"{"workload": {"kind": "band", "n": 32, "width": 3}}"#)
            .expect("parse");
        assert!(spec.hw.is_none());
        // A bare backend string selects the backend on an otherwise
        // default config.
        let spec = RequestSpec::parse(
            br#"{"workload": {"kind": "band", "n": 32, "width": 3}, "backend": "cpu"}"#,
        )
        .expect("parse");
        let hw = spec.hw.expect("override attached");
        assert_eq!(hw.backend, BackendKind::Cpu);
        assert_eq!(hw.clock_mhz, HwConfig::default().clock_mhz);
        // The hw object tunes individual knobs, backend included.
        let spec = RequestSpec::parse(
            br#"{"workload": {"kind": "band", "n": 32, "width": 3},
                 "hw": {"backend": "hetero", "cpu_clock_mhz": 1000.0, "cpu_simd_width": 8}}"#,
        )
        .expect("parse");
        let hw = spec.hw.expect("override attached");
        assert_eq!(hw.backend, BackendKind::Hetero);
        assert_eq!(hw.cpu.clock_mhz, 1000.0);
        assert_eq!(hw.cpu.simd_width, 8);
        // Invalid overrides are 422 with a field-naming message.
        for (body, needle) in [
            (
                &br#"{"workload": {"kind": "band", "n": 32, "width": 3}, "backend": "gpu"}"#[..],
                "backend",
            ),
            (
                br#"{"workload": {"kind": "band", "n": 32, "width": 3}, "hw": {"cpu_simd_width": 0}}"#,
                "simd_width",
            ),
            (
                br#"{"workload": {"kind": "band", "n": 32, "width": 3}, "hw": 7}"#,
                "object",
            ),
        ] {
            let err = RequestSpec::parse(body).expect_err("must fail");
            assert!(matches!(err, ProtocolError::Unprocessable(_)), "{err}");
            assert!(
                err.to_string().contains(needle),
                "error {err} does not mention {needle:?}"
            );
        }
    }

    #[test]
    fn overridden_jobs_execute_on_the_requested_backend() {
        // The same workload on hls and cpu must both succeed and produce
        // different modeled cycle totals (different hardware models).
        let run = |body: &[u8], id: &str| {
            let spec = RequestSpec::parse(body).expect("parse");
            let state = ServiceState::for_tests();
            let outcome = execute_job(&state, &recovery_job(id.to_string(), spec));
            assert_eq!(outcome.status, 200, "{}", outcome.body);
            outcome.body
        };
        let hls = run(
            br#"{"workload": {"kind": "random", "n": 24, "density": 0.2}, "partition_sizes": [8]}"#,
            "b-hls",
        );
        let cpu = run(
            br#"{"workload": {"kind": "random", "n": 24, "density": 0.2}, "partition_sizes": [8], "backend": "cpu"}"#,
            "b-cpu",
        );
        let cycles = |body: &str| {
            let doc: Value = serde::json::from_str(body).expect("json");
            doc.get("measurements")
                .and_then(Value::as_seq)
                .and_then(|ms| ms.first())
                .and_then(|m| m.get("report"))
                .and_then(|r| r.get("total_cycles"))
                .and_then(Value::as_u64)
                .expect("total_cycles")
        };
        assert_ne!(cycles(&hls), cycles(&cpu));
    }

    #[test]
    fn id_validation_blocks_path_tricks() {
        assert!(validate_id("ok-id_9").is_ok());
        for bad in ["", "a/b", "a.b", "..", "a b", &"x".repeat(65)] {
            assert!(validate_id(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn expired_deadline_reports_gateway_timeout() {
        let spec = RequestSpec::parse(
            br#"{"workload": {"kind": "band", "n": 32, "width": 3}, "timeout_ms": 0}"#,
        )
        .expect("parse");
        let state = ServiceState::for_tests();
        let job = recovery_job("t-0".to_string(), spec);
        let outcome = execute_job(&state, &job);
        assert_eq!(outcome.status, 504, "{}", outcome.body);
        assert!(outcome.body.contains("timeout"), "{}", outcome.body);
    }

    #[test]
    fn small_job_round_trips_with_measurements() {
        let spec = RequestSpec::parse(
            br#"{"workload": {"kind": "random", "n": 24, "density": 0.2},
                 "formats": ["CSR", "COO"], "partition_sizes": [8]}"#,
        )
        .expect("parse");
        let state = ServiceState::for_tests();
        let job = recovery_job("t-1".to_string(), spec);
        let outcome = execute_job(&state, &job);
        assert_eq!(outcome.status, 200, "{}", outcome.body);
        let doc: Value = serde::json::from_str(&outcome.body).expect("result is JSON");
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(doc.get("cells").and_then(Value::as_u64), Some(2));
        assert_eq!(
            doc.get("measurements")
                .and_then(Value::as_seq)
                .map(<[Value]>::len),
            Some(2)
        );
    }
}
