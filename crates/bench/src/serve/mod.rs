//! `copernicus-bench serve` — the long-running characterization daemon.
//!
//! A hand-rolled HTTP/1.1 service over `std::net` (the workspace is
//! offline/vendored — no async runtime) that answers "characterize this
//! matrix" requests with the same campaign machinery the offline figures
//! use. Robustness is the point, not an afterthought:
//!
//! * **Backpressure** — a bounded admission queue ([`queue`]); a full
//!   queue answers `429` with `Retry-After` immediately instead of letting
//!   admitted work starve. Queue-depth watermarks surface in `/stats`.
//! * **Deadlines** — each request's `timeout_ms` arms a
//!   [`CancelToken`](copernicus_telemetry::CancelToken) child at
//!   *admission* (queue wait counts), threaded through
//!   `CampaignPolicy::cancel` into the unit loop and the pipeline's
//!   partition loop. Expiry answers `504`.
//! * **Fault isolation** — worker panics are confined per cell by the
//!   campaign runner's `catch_unwind`; protocol garbage is confined per
//!   connection by typed [`protocol`] errors.
//! * **Slow clients** — read/write socket timeouts disconnect peers that
//!   stall mid-request or cannot drain a response.
//! * **Graceful drain** ([`drain`]) — SIGTERM/SIGINT (or
//!   `POST /admin/drain`) stops admission (`/readyz` flips to `503`,
//!   `POST /characterize` answers `503`), finishes every admitted request,
//!   writes every reply, then exits `0`. Nothing accepted is ever dropped.
//! * **Durability** — with `--spool DIR`, every accepted request is
//!   journaled (atomic write) before it is answered, results and per-job
//!   checkpoints land next to it, and on startup unfinished journal
//!   entries are re-enqueued and resumed from their checkpoints. A
//!   `kill -9` mid-job therefore loses nothing: after restart the request
//!   is either answered (`GET /requests/<id>` → `200`) or re-running.
//!
//! Endpoints: `POST /characterize`, `GET /healthz`, `GET /readyz`,
//! `GET /stats`, `GET /requests/<id>`, `POST /admin/drain`.

pub mod drain;
pub mod protocol;
pub mod queue;
pub mod scheduler;

use protocol::{Limits, ProtocolError, Request, Response};
use queue::{BoundedQueue, PushError};
use scheduler::{Job, JobOutcome, RequestSpec};
use serde::Value;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Service counters exported by `GET /stats`. All monotonic except the
/// queue gauges read live from the queue itself.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests shed with `429` (queue full).
    pub rejected_busy: AtomicU64,
    /// Requests refused with `503` (draining).
    pub rejected_draining: AtomicU64,
    /// Jobs answered `200`.
    pub completed: AtomicU64,
    /// Jobs answered `504` (deadline expired).
    pub timed_out: AtomicU64,
    /// Jobs answered any other error status.
    pub failed: AtomicU64,
    /// Connections dropped for protocol violations or socket errors.
    pub protocol_errors: AtomicU64,
}

/// Everything the connection threads and workers share.
pub struct ServiceState {
    /// The bounded admission queue.
    pub queue: BoundedQueue<Job>,
    /// Monotonic service counters.
    pub stats: ServiceStats,
    /// Jobs currently executing on a worker.
    pub active_jobs: AtomicUsize,
    /// Responses admitted but not yet written back to their client.
    pub pending_replies: AtomicUsize,
    /// Flipped once shutdown is requested; `/readyz` and admission key off
    /// this.
    pub draining: AtomicBool,
    /// Request journal/result/checkpoint root (`--spool`).
    pub spool: Option<PathBuf>,
    /// Parser limits.
    pub limits: Limits,
    /// Socket read/write timeout.
    pub socket_timeout: Duration,
    /// Server-assigned request id counter.
    next_id: AtomicU64,
}

impl ServiceState {
    fn new(args: &ServeArgs) -> Self {
        ServiceState {
            queue: BoundedQueue::new(args.queue_capacity),
            stats: ServiceStats::default(),
            active_jobs: AtomicUsize::new(0),
            pending_replies: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            spool: args.spool.clone(),
            limits: Limits {
                max_body: args.max_body_bytes,
                ..Limits::default()
            },
            socket_timeout: Duration::from_millis(args.socket_timeout_ms),
            next_id: AtomicU64::new(0),
        }
    }

    /// A state with defaults and no spool, for unit tests.
    #[cfg(test)]
    pub(crate) fn for_tests() -> Arc<Self> {
        Arc::new(ServiceState::new(&ServeArgs::default()))
    }

    /// True once a drain has begun.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The spool directory for a request id, created on demand. `None`
    /// without `--spool`.
    pub fn spool_dir(&self, id: &str) -> Option<PathBuf> {
        let dir = self.spool.as_ref()?.join(id);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("serve: cannot create spool dir {}: {e}", dir.display());
            return None;
        }
        Some(dir)
    }

    fn fresh_id(&self) -> String {
        format!(
            "srv-{}-{}",
            std::process::id(),
            self.next_id.fetch_add(1, Ordering::Relaxed)
        )
    }

    /// Renders `GET /stats`.
    fn stats_json(&self) -> String {
        let s = &self.stats;
        let doc = Value::Map(vec![
            ("accepted".to_string(), uint(&s.accepted)),
            ("rejected_busy".to_string(), uint(&s.rejected_busy)),
            ("rejected_draining".to_string(), uint(&s.rejected_draining)),
            ("completed".to_string(), uint(&s.completed)),
            ("timed_out".to_string(), uint(&s.timed_out)),
            ("failed".to_string(), uint(&s.failed)),
            ("protocol_errors".to_string(), uint(&s.protocol_errors)),
            (
                "queue_depth".to_string(),
                Value::UInt(self.queue.len() as u64),
            ),
            (
                "queue_capacity".to_string(),
                Value::UInt(self.queue.capacity() as u64),
            ),
            (
                "queue_high_watermark".to_string(),
                Value::UInt(self.queue.high_watermark() as u64),
            ),
            (
                "active_jobs".to_string(),
                Value::UInt(self.active_jobs.load(Ordering::SeqCst) as u64),
            ),
            ("draining".to_string(), Value::Bool(self.draining())),
        ]);
        serde::json::to_string(&doc)
    }
}

fn uint(a: &AtomicU64) -> Value {
    Value::UInt(a.load(Ordering::Relaxed))
}

/// Parsed `serve` flags.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Listening port (`0` = ephemeral; the bound port is printed).
    pub port: u16,
    /// Campaign worker threads.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Request journal/result directory; enables durability + recovery.
    pub spool: Option<PathBuf>,
    /// Socket read/write timeout in milliseconds.
    pub socket_timeout_ms: u64,
    /// Maximum accepted request body size.
    pub max_body_bytes: usize,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            port: 0,
            workers: 2,
            queue_capacity: 16,
            spool: None,
            socket_timeout_ms: 5000,
            max_body_bytes: Limits::default().max_body,
        }
    }
}

impl ServeArgs {
    /// Parses `serve` arguments.
    ///
    /// # Errors
    ///
    /// A usage string on unknown flags or malformed values.
    pub fn parse(args: Vec<String>) -> Result<ServeArgs, String> {
        let mut parsed = ServeArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--port" => {
                    let v = it.next().ok_or("--port needs a value")?;
                    parsed.port = v.parse().map_err(|e| format!("bad --port {v:?}: {e}"))?;
                }
                "--workers" => {
                    let v = it.next().ok_or("--workers needs a value")?;
                    parsed.workers = v
                        .parse::<usize>()
                        .map_err(|e| format!("bad --workers {v:?}: {e}"))?
                        .clamp(1, 64);
                }
                "--queue" => {
                    let v = it.next().ok_or("--queue needs a value")?;
                    parsed.queue_capacity = v
                        .parse::<usize>()
                        .map_err(|e| format!("bad --queue {v:?}: {e}"))?
                        .max(1);
                }
                "--spool" => {
                    let v = it.next().ok_or("--spool needs a directory")?;
                    parsed.spool = Some(PathBuf::from(v));
                }
                "--socket-timeout-ms" => {
                    let v = it.next().ok_or("--socket-timeout-ms needs a value")?;
                    parsed.socket_timeout_ms = v
                        .parse::<u64>()
                        .map_err(|e| format!("bad --socket-timeout-ms {v:?}: {e}"))?
                        .max(100);
                }
                "--max-body-bytes" => {
                    let v = it.next().ok_or("--max-body-bytes needs a value")?;
                    parsed.max_body_bytes = v
                        .parse::<usize>()
                        .map_err(|e| format!("bad --max-body-bytes {v:?}: {e}"))?
                        .max(64);
                }
                other => {
                    return Err(format!(
                        "unknown serve flag {other:?}\nusage: serve [--port N] [--workers N] [--queue N] [--spool DIR] [--socket-timeout-ms N] [--max-body-bytes N]"
                    ));
                }
            }
        }
        Ok(parsed)
    }
}

/// The `serve` subcommand: binds, recovers the spool, serves until a drain
/// completes. Returns the process exit code.
pub fn serve(args: Vec<String>) -> i32 {
    let args = match ServeArgs::parse(args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    drain::install_signal_handlers();
    let state = Arc::new(ServiceState::new(&args));

    let listener = match TcpListener::bind(("127.0.0.1", args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind 127.0.0.1:{}: {e}", args.port);
            return 1;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: cannot read bound address: {e}");
            return 1;
        }
    };
    if listener.set_nonblocking(true).is_err() {
        eprintln!("serve: cannot switch the listener to non-blocking accept");
        return 1;
    }

    let mut workers = Vec::new();
    for _ in 0..args.workers {
        let state = Arc::clone(&state);
        workers.push(std::thread::spawn(move || scheduler::worker_loop(state)));
    }

    let recovered = recover_spool(&state);
    if recovered > 0 {
        eprintln!("serve: re-enqueued {recovered} unfinished spooled request(s)");
    }

    // The line storm/tests parse to find the ephemeral port. Flushed so a
    // piped parent sees it before the first request.
    println!("serving on http://{addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(&state);
                // Detached: connection lifetime is bounded by the socket
                // timeouts, and the drain barrier below waits on admitted
                // work (pending_replies), not on idle keep-alive peers.
                std::thread::spawn(move || handle_connection(stream, &state));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if drain::shutdown_requested() && !state.draining() {
                    state.draining.store(true, Ordering::SeqCst);
                    state.queue.close();
                    eprintln!("serve: draining (admission closed)");
                }
                if state.draining()
                    && state.queue.is_empty()
                    && state.active_jobs.load(Ordering::SeqCst) == 0
                    && state.pending_replies.load(Ordering::SeqCst) == 0
                {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }

    for w in workers {
        let _ = w.join();
    }
    eprintln!("serve: drained cleanly");
    0
}

/// Re-enqueues every spooled request that was journaled but never
/// answered, resuming its campaign from the per-job checkpoint. Called
/// before the accept loop opens, under the same admission queue.
fn recover_spool(state: &Arc<ServiceState>) -> usize {
    let Some(root) = state.spool.clone() else {
        return 0;
    };
    let Ok(entries) = std::fs::read_dir(&root) else {
        return 0;
    };
    let mut ids: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().join("request.json").exists())
        .filter(|e| !e.path().join("result.json").exists())
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    // Deterministic recovery order, independent of directory iteration.
    ids.sort();
    let mut recovered = 0;
    for id in ids {
        let path = root.join(&id).join("request.json");
        let Ok(body) = std::fs::read(&path) else {
            continue;
        };
        match RequestSpec::parse(&body) {
            Ok(spec) => {
                // Recovery jobs bypass the deadline: the client's timeout
                // budget is unknowable after a restart, and durability
                // promises the work completes.
                let job = scheduler::recovery_job(
                    id,
                    RequestSpec {
                        timeout_ms: None,
                        ..spec
                    },
                );
                if push_blocking(state, job) {
                    recovered += 1;
                }
            }
            Err(e) => eprintln!("serve: spooled request {} is invalid: {e}", path.display()),
        }
    }
    recovered
}

/// Enqueues a recovery job, waiting for space if the journal holds more
/// requests than the queue (workers are already draining it).
fn push_blocking(state: &ServiceState, mut job: Job) -> bool {
    loop {
        match state.queue.try_push(job) {
            Ok(()) => return true,
            Err((PushError::Closed, _)) => return false,
            Err((PushError::Full, j)) => {
                job = j;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Serves one connection: keep-alive request loop with typed protocol
/// errors and socket timeouts for slow peers.
fn handle_connection(stream: TcpStream, state: &Arc<ServiceState>) {
    let _ = stream.set_read_timeout(Some(state.socket_timeout));
    let _ = stream.set_write_timeout(Some(state.socket_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match protocol::parse_request(&mut reader, &state.limits) {
            Ok(req) => {
                let close = req.wants_close() || state.draining();
                let response = route(&req, state);
                if response.write_to(&mut writer, close).is_err() {
                    // Slow (or gone) client: the write timeout fired.
                    state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if close {
                    break;
                }
            }
            Err(ProtocolError::ConnectionClosed) => break,
            Err(e) => {
                state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if let Some((status, reason)) = e.status() {
                    let body = error_body(&e.to_string());
                    let _ = Response::json(status, reason, body).write_to(&mut writer, true);
                }
                break;
            }
        }
    }
}

fn error_body(message: &str) -> String {
    serde::json::to_string(&Value::Map(vec![(
        "error".to_string(),
        Value::Str(message.to_string()),
    )]))
}

fn simple_body(key: &str, value: &str) -> String {
    serde::json::to_string(&Value::Map(vec![(
        key.to_string(),
        Value::Str(value.to_string()),
    )]))
}

/// Routes one parsed request to its endpoint.
fn route(req: &Request, state: &Arc<ServiceState>) -> Response {
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => Response::json(200, "OK", simple_body("status", "ok")),
        ("GET", "/readyz") => {
            if state.draining() {
                Response::json(
                    503,
                    "Service Unavailable",
                    simple_body("status", "draining"),
                )
            } else {
                Response::json(200, "OK", simple_body("status", "ready"))
            }
        }
        ("GET", "/stats") => Response::json(200, "OK", state.stats_json()),
        ("GET", target) if target.starts_with("/requests/") => {
            lookup_request(state, &target["/requests/".len()..])
        }
        ("POST", "/admin/drain") => {
            drain::request_shutdown();
            Response::json(200, "OK", simple_body("status", "draining"))
        }
        ("POST", "/characterize") => admit(req, state),
        (_, _) => Response::json(404, "Not Found", error_body("no such endpoint")),
    }
}

/// `GET /requests/<id>`: answered → `200` with the stored result body,
/// journaled but unfinished → `202`, unknown → `404`.
fn lookup_request(state: &ServiceState, id: &str) -> Response {
    if scheduler::validate_id(id).is_err() {
        return Response::json(400, "Bad Request", error_body("invalid request id"));
    }
    let Some(root) = &state.spool else {
        return Response::json(404, "Not Found", error_body("request lookup needs --spool"));
    };
    let dir = root.join(id);
    match std::fs::read_to_string(dir.join("result.json")) {
        Ok(text) => match serde::json::from_str::<Value>(&text) {
            Ok(doc) => {
                let body = doc
                    .get("body")
                    .and_then(Value::as_str)
                    .unwrap_or("{}")
                    .to_string();
                Response::json(200, "OK", body)
            }
            Err(_) => Response::json(
                500,
                "Internal Server Error",
                error_body("stored result is unreadable"),
            ),
        },
        Err(_) if dir.join("request.json").exists() => {
            Response::json(202, "Accepted", simple_body("status", "pending"))
        }
        Err(_) => Response::json(404, "Not Found", error_body("unknown request id")),
    }
}

/// `POST /characterize`: parse → journal → admit → wait → answer.
fn admit(req: &Request, state: &Arc<ServiceState>) -> Response {
    if state.draining() {
        state
            .stats
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        return Response::json(
            503,
            "Service Unavailable",
            error_body("draining: not accepting new work"),
        )
        .with_header("Retry-After", "1");
    }
    let spec = match RequestSpec::parse(&req.body) {
        Ok(spec) => spec,
        // Framing/encoding problems are 400; a well-formed body with
        // invalid content (unknown field, bad hardware override) is 422.
        Err(e) => {
            let (status, reason) = e.status().unwrap_or((400, "Bad Request"));
            return Response::json(status, reason, error_body(&e.to_string()));
        }
    };
    let id = spec.id.clone().unwrap_or_else(|| state.fresh_id());

    // Idempotency: a replayed id that already has a durable answer gets it
    // back verbatim instead of re-running the campaign.
    if let Some(root) = &state.spool {
        if let Ok(text) = std::fs::read_to_string(root.join(&id).join("result.json")) {
            if let Ok(doc) = serde::json::from_str::<Value>(&text) {
                let status = doc.get("status").and_then(Value::as_u64).unwrap_or(200) as u16;
                let body = doc
                    .get("body")
                    .and_then(Value::as_str)
                    .unwrap_or("{}")
                    .to_string();
                return Response::json(status, reason_for(status), body);
            }
        }
    }

    // Journal before admission: once the server has decided to accept, a
    // kill at any later point must leave the request recoverable. A 429
    // below removes the journal again — shed work is the client's to
    // retry.
    let journaled = match state.spool_dir(&id) {
        Some(dir) => {
            let path = dir.join("request.json");
            if let Err(e) = copernicus_telemetry::atomic_write(&path, &req.body) {
                eprintln!("serve: cannot journal {}: {e}", path.display());
                return Response::json(
                    500,
                    "Internal Server Error",
                    error_body("cannot journal the request"),
                );
            }
            Some(dir)
        }
        None => None,
    };

    let cancel = scheduler::deadline_token(&spec);
    let (reply_tx, reply_rx) = mpsc::channel::<JobOutcome>();
    let job = Job {
        id: id.clone(),
        spec,
        reply: Some(reply_tx),
        cancel,
    };
    match state.queue.try_push(job) {
        Ok(()) => {}
        Err((kind, _job)) => {
            if let Some(dir) = journaled {
                let _ = std::fs::remove_file(dir.join("request.json"));
            }
            return match kind {
                PushError::Full => {
                    state.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                    Response::json(
                        429,
                        "Too Many Requests",
                        error_body("admission queue is full"),
                    )
                    .with_header("Retry-After", "1")
                }
                PushError::Closed => {
                    state
                        .stats
                        .rejected_draining
                        .fetch_add(1, Ordering::Relaxed);
                    Response::json(
                        503,
                        "Service Unavailable",
                        error_body("draining: not accepting new work"),
                    )
                    .with_header("Retry-After", "1")
                }
            };
        }
    }
    state.stats.accepted.fetch_add(1, Ordering::Relaxed);
    state.pending_replies.fetch_add(1, Ordering::SeqCst);
    // Blocks until the worker answers. The worker always sends (or drops
    // on a scheduler bug, surfacing as 500 to exactly this client); the
    // per-request deadline bounds how long that takes.
    let response = match reply_rx.recv() {
        Ok(outcome) => Response::json(outcome.status, outcome.reason, outcome.body)
            .with_header("X-Request-Id", id),
        Err(_) => Response::json(
            500,
            "Internal Server Error",
            error_body("worker dropped the request"),
        ),
    };
    state.pending_replies.fetch_sub(1, Ordering::SeqCst);
    response
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        422 => "Unprocessable Entity",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_args_parse_with_defaults_and_overrides() {
        let d = ServeArgs::parse(vec![]).expect("defaults");
        assert_eq!(d.port, 0);
        assert_eq!(d.workers, 2);
        assert!(d.spool.is_none());

        let a = ServeArgs::parse(
            [
                "--port",
                "8123",
                "--workers",
                "3",
                "--queue",
                "4",
                "--spool",
                "/tmp/sp",
                "--socket-timeout-ms",
                "750",
                "--max-body-bytes",
                "4096",
            ]
            .map(String::from)
            .to_vec(),
        )
        .expect("parse");
        assert_eq!(a.port, 8123);
        assert_eq!(a.workers, 3);
        assert_eq!(a.queue_capacity, 4);
        assert_eq!(a.spool.as_deref(), Some(std::path::Path::new("/tmp/sp")));
        assert_eq!(a.socket_timeout_ms, 750);
        assert_eq!(a.max_body_bytes, 4096);

        assert!(ServeArgs::parse(vec!["--bogus".to_string()]).is_err());
        assert!(ServeArgs::parse(vec!["--port".to_string()]).is_err());
    }

    #[test]
    fn stats_json_is_well_formed() {
        let state = ServiceState::for_tests();
        state.stats.accepted.store(3, Ordering::Relaxed);
        let doc: Value = serde::json::from_str(&state.stats_json()).expect("stats parse");
        assert_eq!(doc.get("accepted").and_then(Value::as_u64), Some(3));
        assert_eq!(doc.get("queue_depth").and_then(Value::as_u64), Some(0));
        assert!(doc.get("draining").is_some());
    }

    #[test]
    fn fresh_ids_are_unique_and_valid() {
        let state = ServiceState::for_tests();
        let a = state.fresh_id();
        let b = state.fresh_id();
        assert_ne!(a, b);
        scheduler::validate_id(&a).expect("generated ids validate");
    }
}
