//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The workspace is offline/vendored — no tokio, no hyper — so the serve
//! daemon speaks a deliberately small, defensive subset of HTTP/1.1 over
//! `std::net`:
//!
//! * request line + headers + optional `Content-Length` body (no chunked
//!   transfer encoding — a chunked request is rejected with `411`);
//! * hard limits on line length, header count and body size, each mapped
//!   to a typed [`ProtocolError`] (and from there to `400`/`413`/`431`);
//! * keep-alive by default, `Connection: close` honored.
//!
//! Every malformed, truncated, oversized or garbage input must surface as
//! a typed error — never a panic. The fixed-seed fuzz suite in
//! `tests/protocol_fuzz.rs` holds the parser to that.

use std::io::{BufRead, Write};

/// Parser limits. Defaults are generous for the tiny JSON bodies the
/// characterization API exchanges while still bounding a hostile client.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request/header line in bytes (terminator included).
    pub max_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Maximum `Content-Length`.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// Why a request could not be parsed. Maps onto an HTTP status via
/// [`ProtocolError::status`].
#[derive(Debug)]
pub enum ProtocolError {
    /// The peer closed the connection cleanly before sending a request —
    /// the normal end of a keep-alive session, not an error to report.
    ConnectionClosed,
    /// The bytes violate HTTP framing (bad request line, header without a
    /// colon, non-numeric `Content-Length`, …).
    Malformed(String),
    /// The peer closed mid-request (truncated headers or body).
    Truncated(String),
    /// A line, the header count, or the body exceeds [`Limits`].
    TooLarge(String),
    /// The request uses `Transfer-Encoding` instead of `Content-Length`.
    LengthRequired,
    /// The body is well-formed JSON but semantically invalid as an API
    /// request (unknown field, out-of-range value, bad hardware override).
    /// Distinct from [`ProtocolError::Malformed`] — the framing and
    /// encoding were fine, the *content* was not — so it maps to `422`
    /// rather than `400`.
    Unprocessable(String),
    /// Socket-level failure (including read timeouts from slow clients).
    Io(std::io::Error),
}

impl ProtocolError {
    /// The HTTP status this error earns, when a response can still be
    /// written at all (`ConnectionClosed`/`Io` get none).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            ProtocolError::Malformed(_) => Some((400, "Bad Request")),
            ProtocolError::Truncated(_) => Some((400, "Bad Request")),
            ProtocolError::TooLarge(_) => Some((413, "Payload Too Large")),
            ProtocolError::LengthRequired => Some((411, "Length Required")),
            ProtocolError::Unprocessable(_) => Some((422, "Unprocessable Entity")),
            ProtocolError::ConnectionClosed | ProtocolError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::ConnectionClosed => write!(f, "connection closed"),
            ProtocolError::Malformed(m) => write!(f, "malformed request: {m}"),
            ProtocolError::Truncated(m) => write!(f, "truncated request: {m}"),
            ProtocolError::TooLarge(m) => write!(f, "request too large: {m}"),
            ProtocolError::LengthRequired => write!(f, "length required"),
            ProtocolError::Unprocessable(m) => write!(f, "unprocessable request: {m}"),
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path + optional query).
    pub target: String,
    /// Lower-cased header names with their (trimmed) values, in order.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one line (terminated by `\n`) with a byte cap; the terminator and
/// any trailing `\r` are stripped.
fn read_limited_line<R: BufRead>(
    reader: &mut R,
    limit: usize,
    what: &str,
) -> Result<Option<String>, ProtocolError> {
    let mut buf = Vec::new();
    // Bounded read_until: accumulate from fill_buf so a line without a
    // terminator cannot grow past the limit no matter how many bytes the
    // peer pushes.
    let found_newline = loop {
        let used = {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                break false; // EOF
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&available[..=pos]);
                    pos + 1
                }
                None => {
                    buf.extend_from_slice(available);
                    available.len()
                }
            }
        };
        let done = buf.last() == Some(&b'\n');
        reader.consume(used);
        if done {
            break true;
        }
        if buf.len() > limit {
            return Err(ProtocolError::TooLarge(format!(
                "{what} line exceeds {limit} bytes"
            )));
        }
    };
    if buf.is_empty() {
        return Ok(None);
    }
    if !found_newline {
        if buf.len() > limit {
            return Err(ProtocolError::TooLarge(format!(
                "{what} line exceeds {limit} bytes"
            )));
        }
        return Err(ProtocolError::Truncated(format!(
            "{what} line ended without a terminator"
        )));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    if buf.len() > limit {
        return Err(ProtocolError::TooLarge(format!(
            "{what} line exceeds {limit} bytes"
        )));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ProtocolError::Malformed(format!("{what} line is not valid UTF-8")))
}

/// Parses one HTTP/1.1 request from `reader`.
///
/// # Errors
///
/// [`ProtocolError::ConnectionClosed`] on clean EOF before the request
/// line; other variants for framing violations, limit breaches, truncation
/// and socket failures. Never panics, whatever the bytes.
pub fn parse_request<R: BufRead>(
    reader: &mut R,
    limits: &Limits,
) -> Result<Request, ProtocolError> {
    let request_line = match read_limited_line(reader, limits.max_line, "request")? {
        Some(line) => line,
        None => return Err(ProtocolError::ConnectionClosed),
    };
    if request_line.is_empty() {
        return Err(ProtocolError::Malformed("empty request line".to_string()));
    }
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ProtocolError::Malformed(format!(
                "request line needs `METHOD TARGET VERSION`, got {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ProtocolError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ProtocolError::Malformed(format!("bad method {method:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_limited_line(reader, limits.max_line, "header")? {
            Some(line) => line,
            None => {
                return Err(ProtocolError::Truncated(
                    "connection closed inside the header block".to_string(),
                ))
            }
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ProtocolError::TooLarge(format!(
                "more than {} headers",
                limits.max_headers
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ProtocolError::Malformed(format!(
                "header without a colon: {line:?}"
            )));
        };
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(ProtocolError::Malformed(format!(
                "bad header name in {line:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(ProtocolError::LengthRequired);
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ProtocolError::Malformed(format!("bad Content-Length {v:?}")))
        })
        .transpose()?;
    if let Some(len) = content_length {
        if len > limits.max_body {
            return Err(ProtocolError::TooLarge(format!(
                "body of {len} bytes exceeds the {}-byte limit",
                limits.max_body
            )));
        }
        body.resize(len, 0);
        let mut read = 0;
        while read < len {
            let n = std::io::Read::read(reader, &mut body[read..])?;
            if n == 0 {
                return Err(ProtocolError::Truncated(format!(
                    "body ended after {read} of {len} bytes"
                )));
            }
            read += n;
        }
    }

    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    })
}

/// A response about to be written: status, extra headers, body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Extra headers beyond `Content-Length`/`Content-Type`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            reason,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response to `writer` (HTTP/1.1, explicit
    /// `Content-Length`, keep-alive unless `close`).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (including write timeouts — a slow
    /// client that cannot drain the response in time is disconnected).
    pub fn write_to<W: Write + ?Sized>(&self, writer: &mut W, close: bool) -> std::io::Result<()> {
        write!(writer, "HTTP/1.1 {} {}\r\n", self.status, self.reason)?;
        write!(writer, "Content-Type: application/json\r\n")?;
        write!(writer, "Content-Length: {}\r\n", self.body.len())?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        if close {
            write!(writer, "Connection: close\r\n")?;
        }
        write!(writer, "\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, ProtocolError> {
        parse_request(&mut Cursor::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_get_without_body() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("parse");
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let r = parse(b"POST /characterize HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .expect("parse");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let r = parse(b"GET / HTTP/1.1\nHost: x\n\n").expect("parse");
        assert_eq!(r.header("host"), Some("x"));
    }

    #[test]
    fn clean_eof_is_connection_closed() {
        assert!(matches!(parse(b""), Err(ProtocolError::ConnectionClosed)));
    }

    #[test]
    fn truncated_headers_are_typed_truncation() {
        let e = parse(b"GET / HTTP/1.1\r\nHost: x\r\n").expect_err("truncated");
        assert!(matches!(e, ProtocolError::Truncated(_)), "{e}");
        assert_eq!(e.status(), Some((400, "Bad Request")));
    }

    #[test]
    fn truncated_body_is_typed_truncation() {
        let e = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").expect_err("truncated");
        assert!(matches!(e, ProtocolError::Truncated(_)), "{e}");
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let limits = Limits {
            max_body: 8,
            ..Limits::default()
        };
        let mut c = Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789".to_vec());
        let e = parse_request(&mut c, &limits).expect_err("too large");
        assert!(matches!(e, ProtocolError::TooLarge(_)), "{e}");
        assert_eq!(e.status(), Some((413, "Payload Too Large")));
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let limits = Limits {
            max_line: 32,
            ..Limits::default()
        };
        let line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        let e = parse_request(&mut Cursor::new(line.into_bytes()), &limits).expect_err("too long");
        assert!(matches!(e, ProtocolError::TooLarge(_)), "{e}");
    }

    #[test]
    fn garbage_bytes_are_malformed_not_panics() {
        for garbage in [
            &b"\xff\xfe\xfd\r\n\r\n"[..],
            b"NOT-HTTP\r\n\r\n",
            b"GET\r\n\r\n",
            b"GET / SPDY/3\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        ] {
            let e = parse(garbage).expect_err("garbage must fail");
            assert!(
                e.status().is_some() || matches!(e, ProtocolError::Truncated(_)),
                "unexpected classification for {garbage:?}: {e}"
            );
        }
    }

    #[test]
    fn transfer_encoding_earns_length_required() {
        let e = parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").expect_err("te");
        assert!(matches!(e, ProtocolError::LengthRequired));
        assert_eq!(e.status(), Some((411, "Length Required")));
    }

    #[test]
    fn too_many_headers_is_too_large() {
        let limits = Limits {
            max_headers: 4,
            ..Limits::default()
        };
        let mut req = String::from("GET / HTTP/1.1\r\n");
        for i in 0..6 {
            req.push_str(&format!("H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        let e = parse_request(&mut Cursor::new(req.into_bytes()), &limits).expect_err("too many");
        assert!(matches!(e, ProtocolError::TooLarge(_)), "{e}");
    }

    #[test]
    fn responses_render_with_length_and_extra_headers() {
        let mut out = Vec::new();
        Response::json(429, "Too Many Requests", "{}")
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
