//! Regenerates Fig. 07 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig07;
use copernicus_bench::{emit, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match fig07::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => emit(&cli, &fig07::render(&rows)),
        Err(e) => telemetry.record_error("fig07", &e),
    }
    finish_and_exit(telemetry, fig07::manifest(&cli.cfg));
}
