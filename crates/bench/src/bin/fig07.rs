//! Regenerates Fig. 7 of the paper (mean sigma per class and partition size) — a wrapper over `copernicus-bench fig07`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig07",
        std::env::args().skip(1).collect(),
    ));
}
