//! Regenerates Fig. 07 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig07;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    let rows =
        fig07::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()).unwrap_or_else(|e| {
            eprintln!("fig07 failed: {e}");
            std::process::exit(1);
        });
    telemetry.finish(fig07::manifest(&cli.cfg));
    emit(&cli, &fig07::render(&rows));
}
