//! Explains the per-format cost of processing one partition — a wrapper over `copernicus-bench explain`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "explain",
        std::env::args().skip(1).collect(),
    ));
}
