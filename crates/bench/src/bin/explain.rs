//! Explains the per-format cost of processing one partition of a workload
//! in the §5.2 vocabulary: which cost term dominates and which pipeline
//! stage bounds the run.
//!
//! ```sh
//! cargo run --release -p copernicus-bench --bin explain
//! cargo run --release -p copernicus-bench --bin explain -- --dim 1000
//! ```

use copernicus_bench::Cli;
use copernicus_hls::{explain, EncodedPartition, HwConfig};
use copernicus_workloads::Workload;
use sparsemat::{FormatKind, Matrix, PartitionGrid};

fn main() {
    let cli = Cli::from_env();
    let dim = cli.cfg.sweep_dim.max(128);
    let matrix = Workload::Random {
        n: dim,
        density: 0.05,
    }
    .generate(0, cli.cfg.seed);
    let cfg = HwConfig::with_partition_size(16);
    let grid = PartitionGrid::new(&matrix, 16).expect("partitioning");

    // Pick the densest partition — the interesting one.
    let tile = grid
        .partitions()
        .iter()
        .max_by_key(|p| p.nnz())
        .expect("non-empty matrix")
        .coo
        .clone();
    println!(
        "densest 16x16 partition of a {dim}x{dim} random matrix (d=0.05): {} non-zeros, {} non-zero rows\n",
        tile.nnz(),
        tile.nonzero_rows()
    );
    for kind in FormatKind::CHARACTERIZED {
        let part = EncodedPartition::encode(&tile, kind, &cfg).expect("characterized format");
        println!("{}", explain(&part, &cfg).render());
    }
}
