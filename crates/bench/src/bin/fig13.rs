//! Regenerates Fig. 13 of the paper (dynamic-power breakdown) — a wrapper over `copernicus-bench fig13`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig13",
        std::env::args().skip(1).collect(),
    ));
}
