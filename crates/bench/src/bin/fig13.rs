//! Regenerates Fig. 13 of the paper (dynamic-power breakdown into logic,
//! BRAM and signal components).

use copernicus::experiments::fig13;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let rows = fig13::run(&[8, 16, 32]);
    emit(&cli, &fig13::render(&rows));
}
