//! Regenerates Fig. 10 of the paper (bandwidth utilization vs density,
//! p=16). Pass `--chart` to render one bar chart per density step.

use copernicus::experiments::fig10;
use copernicus::plot::BarChart;
use copernicus_bench::{emit, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match fig10::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => {
            emit(&cli, &fig10::render(&rows));
            if cli.chart {
                let mut densities: Vec<f64> = rows.iter().map(|r| r.density).collect();
                densities.dedup();
                for d in densities {
                    let mut c = BarChart::new(&format!("bandwidth utilization at density {d}"), 48);
                    for r in rows.iter().filter(|r| r.density == d) {
                        c.bar(r.format.label(), r.bandwidth_utilization);
                    }
                    println!("\n{}", c.render());
                }
            }
        }
        Err(e) => telemetry.record_error("fig10", &e),
    }
    finish_and_exit(telemetry, fig10::manifest(&cli.cfg));
}
