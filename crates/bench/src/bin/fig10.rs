//! Regenerates Fig. 10 of the paper (bandwidth utilization vs density) — a wrapper over `copernicus-bench fig10`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig10",
        std::env::args().skip(1).collect(),
    ));
}
