//! Beyond-paper partition-size sweep (4..64) validating §8's claim that
//! partitions beyond 8x8/16x16 hurt dense (NN-inference) workloads.

use copernicus::experiments::ext_partition_sweep;
use copernicus_bench::{emit_named, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    let rows = ext_partition_sweep::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments())
        .unwrap_or_else(|e| {
            eprintln!("partition_sweep failed: {e}");
            std::process::exit(1);
        });
    telemetry.finish(ext_partition_sweep::manifest(&cli.cfg));
    emit_named(&cli, "partition_sweep", &ext_partition_sweep::render(&rows));
}
