//! Beyond-paper partition-size sweep (4..64) validating §8's claim that
//! partitions beyond 8x8/16x16 hurt dense (NN-inference) workloads.

use copernicus::experiments::ext_partition_sweep;
use copernicus_bench::{emit_named, Cli};

fn main() {
    let cli = Cli::from_env();
    let rows = ext_partition_sweep::run(&cli.cfg).unwrap_or_else(|e| {
        eprintln!("partition_sweep failed: {e}");
        std::process::exit(1);
    });
    emit_named(&cli, "partition_sweep", &ext_partition_sweep::render(&rows));
}
