//! Beyond-paper partition-size sweep (4..64) — a wrapper over `copernicus-bench partition_sweep`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "partition_sweep",
        std::env::args().skip(1).collect(),
    ));
}
