//! Beyond-paper partition-size sweep (4..64) validating §8's claim that
//! partitions beyond 8x8/16x16 hurt dense (NN-inference) workloads.

use copernicus::experiments::ext_partition_sweep;
use copernicus_bench::{emit_named, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match ext_partition_sweep::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => emit_named(&cli, "partition_sweep", &ext_partition_sweep::render(&rows)),
        Err(e) => telemetry.record_error("partition_sweep", &e),
    }
    finish_and_exit(telemetry, ext_partition_sweep::manifest(&cli.cfg));
}
