//! Regenerates Fig. 12 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig12;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    let rows =
        fig12::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()).unwrap_or_else(|e| {
            eprintln!("fig12 failed: {e}");
            std::process::exit(1);
        });
    telemetry.finish(fig12::manifest(&cli.cfg));
    emit(&cli, &fig12::render(&rows));
}
