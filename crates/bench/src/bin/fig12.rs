//! Regenerates Fig. 12 of the paper (mean bandwidth utilization) — a wrapper over `copernicus-bench fig12`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig12",
        std::env::args().skip(1).collect(),
    ));
}
