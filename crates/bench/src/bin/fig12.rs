//! Regenerates Fig. 12 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig12;
use copernicus_bench::{emit, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match fig12::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => emit(&cli, &fig12::render(&rows)),
        Err(e) => telemetry.record_error("fig12", &e),
    }
    finish_and_exit(telemetry, fig12::manifest(&cli.cfg));
}
