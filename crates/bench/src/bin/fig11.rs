//! Regenerates Fig. 11 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig11;
use copernicus_bench::{emit, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match fig11::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => emit(&cli, &fig11::render(&rows)),
        Err(e) => telemetry.record_error("fig11", &e),
    }
    finish_and_exit(telemetry, fig11::manifest(&cli.cfg));
}
