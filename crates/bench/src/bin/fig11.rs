//! Regenerates Fig. 11 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig11;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let rows = fig11::run(&cli.cfg).unwrap_or_else(|e| {
        eprintln!("fig11 failed: {e}");
        std::process::exit(1);
    });
    emit(&cli, &fig11::render(&rows));
}
