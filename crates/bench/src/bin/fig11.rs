//! Regenerates Fig. 11 of the paper (bandwidth utilization vs band width) — a wrapper over `copernicus-bench fig11`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig11",
        std::env::args().skip(1).collect(),
    ));
}
