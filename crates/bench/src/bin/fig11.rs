//! Regenerates Fig. 11 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig11;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    let rows =
        fig11::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()).unwrap_or_else(|e| {
            eprintln!("fig11 failed: {e}");
            std::process::exit(1);
        });
    telemetry.finish(fig11::manifest(&cli.cfg));
    emit(&cli, &fig11::render(&rows));
}
