//! Regenerates Table 1 of the paper (the workload registry with the
//! reproduction's stand-in families).

use copernicus::experiments::table1;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    emit(&cli, &table1::render());
}
