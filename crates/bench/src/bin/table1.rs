//! Regenerates Table 1 of the paper (the workload registry) — a wrapper over `copernicus-bench table1`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "table1",
        std::env::args().skip(1).collect(),
    ));
}
