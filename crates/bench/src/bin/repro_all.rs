//! Regenerates every table and figure of the paper in one run, printing
//! each with a heading — the one-command reproduction entry point.
//!
//! Fault tolerance: under `--keep-going` a failed figure is reported and
//! skipped (and the shared campaign keeps its surviving cells for the
//! aggregate figures); otherwise the first failure ends the run. Either
//! way failed cells reach the manifest and the process exits nonzero.

use copernicus::experiments as ex;
use copernicus::{CampaignError, ExperimentConfig};
use copernicus_bench::{emit_named, finish_and_exit, Cli};
use copernicus_telemetry::RunManifest;

fn section(title: &str) {
    println!("\n=== {title} ===");
}

fn manifest(cfg: &ExperimentConfig) -> RunManifest {
    copernicus::manifest_for(
        cfg,
        &ex::fig07::all_class_workloads(cfg),
        &ex::FIGURE_FORMATS,
        &ex::FIGURE_PARTITION_SIZES,
    )
    .with_note("binary=repro_all (trace covers all figures)")
}

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    let cfg = &cli.cfg;
    // One runner for the whole reproduction: figures that revisit the same
    // (workload, partition size, format) cell — e.g. the p=16 row shared by
    // Figs 4-12 and the full campaign — are measured exactly once.
    let runner = cli.runner();
    let started = std::time::Instant::now();

    // Runs one fallible figure step. A failure is recorded for the manifest
    // and the end-of-run summary; without --keep-going it ends the run.
    macro_rules! step {
        ($name:expr, $result:expr) => {
            match $result.map_err(CampaignError::from) {
                Ok(v) => Some(v),
                Err(e) => {
                    telemetry.record_error($name, &e);
                    if !cli.keep_going {
                        finish_and_exit(telemetry, manifest(cfg));
                    }
                    None
                }
            }
        };
    }

    section("Table 1: SuiteSparse workloads");
    emit_named(&cli, "table1", &ex::table1::render());

    section("Fig 3: partition density & locality");
    if let Some(rows) = step!("fig03", ex::fig03::run(cfg)) {
        emit_named(&cli, "fig03", &ex::fig03::render(&rows));
    }

    section("Fig 4: decompression overhead (SuiteSparse, p=16)");
    if let Some(rows) = step!(
        "fig04",
        ex::fig04::run_on(&runner, cfg, &mut telemetry.instruments())
    ) {
        emit_named(&cli, "fig04", &ex::fig04::render(&rows));
    }

    section("Fig 5: decompression overhead vs density (random, p=16)");
    if let Some(rows) = step!(
        "fig05",
        ex::fig05::run_on(&runner, cfg, &mut telemetry.instruments())
    ) {
        emit_named(&cli, "fig05", &ex::fig05::render(&rows));
    }

    section("Fig 6: decompression overhead vs band width (p=16)");
    if let Some(rows) = step!(
        "fig06",
        ex::fig06::run_on(&runner, cfg, &mut telemetry.instruments())
    ) {
        emit_named(&cli, "fig06", &ex::fig06::render(&rows));
    }

    section("Fig 10: bandwidth utilization vs density (p=16)");
    if let Some(rows) = step!(
        "fig10",
        ex::fig10::run_on(&runner, cfg, &mut telemetry.instruments())
    ) {
        emit_named(&cli, "fig10", &ex::fig10::render(&rows));
    }

    section("Fig 11: bandwidth utilization vs band width (p=16)");
    if let Some(rows) = step!(
        "fig11",
        ex::fig11::run_on(&runner, cfg, &mut telemetry.instruments())
    ) {
        emit_named(&cli, "fig11", &ex::fig11::render(&rows));
    }

    // Figs 7, 8, 9, 12 and 14 all consume the same workload × format ×
    // partition-size campaign; run it once and aggregate. The fault-aware
    // entry point keeps the surviving cells under --keep-going, so the
    // aggregates below still cover every cell that could be measured.
    eprintln!("[repro_all] running the shared full campaign ...");
    let outcome = step!(
        "campaign",
        runner.run_campaign(
            &ex::fig07::all_class_workloads(cfg),
            &ex::FIGURE_FORMATS,
            &ex::FIGURE_PARTITION_SIZES,
            cfg,
            &mut telemetry.instruments(),
        )
    );
    let campaign = match outcome {
        Some(outcome) => {
            telemetry.record_failures(&outcome.failures);
            outcome.measurements
        }
        None => Vec::new(),
    };

    if let Some(dir) = &cli.out_dir {
        // One object holding both halves of the outcome, so a clean run and
        // an interrupted-then-resumed run produce byte-identical files.
        let doc = serde::Value::Map(vec![
            (
                "measurements".to_string(),
                serde::Serialize::serialize(&campaign),
            ),
            (
                "failures".to_string(),
                serde::Serialize::serialize(&telemetry.failures),
            ),
        ]);
        let json = serde::json::to_string_pretty(&doc);
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(dir.join("measurements.json"), json))
        {
            eprintln!("warning: could not write measurements.json: {e}");
        }
    }

    section("Fig 7: mean decompression overhead per class and partition size");
    emit_named(
        &cli,
        "fig07",
        &ex::fig07::render(&ex::fig07::aggregate(&campaign)),
    );

    section("Fig 8: memory vs compute latency (balance ratio)");
    emit_named(
        &cli,
        "fig08",
        &ex::fig08::render(&ex::fig08::rows_from(&campaign)),
    );

    section("Fig 9: throughput vs latency");
    emit_named(
        &cli,
        "fig09",
        &ex::fig09::render(&ex::fig09::from_measurements(&campaign)),
    );

    section("Fig 12: mean bandwidth utilization per class and partition size");
    emit_named(
        &cli,
        "fig12",
        &ex::fig12::render(&ex::fig12::aggregate(&campaign)),
    );

    section("Table 2: FPGA resources & dynamic power");
    emit_named(
        &cli,
        "table2",
        &ex::table2::render(&ex::table2::run(&[8, 16, 32])),
    );

    section("Fig 13: dynamic power breakdown");
    emit_named(
        &cli,
        "fig13",
        &ex::fig13::render(&ex::fig13::run(&[8, 16, 32])),
    );

    section("Fig 14: normalized six-metric summary");
    emit_named(
        &cli,
        "fig14",
        &ex::fig14::render(&copernicus::normalized_summary(&campaign)),
    );

    section("Section 8 insights, verified against this campaign");
    emit_named(
        &cli,
        "insights",
        &copernicus::insights::render(&copernicus::insights::verify(&campaign)),
    );

    eprintln!(
        "[repro_all] done in {:.2}s ({} jobs, {} memoized cells, {} resumed)",
        started.elapsed().as_secs_f64(),
        runner.jobs(),
        runner.cached_cells(),
        runner.resumed_cells(),
    );
    // One manifest covers the whole reproduction; the trace, metrics and
    // failure records accumulate across every figure above.
    finish_and_exit(telemetry, manifest(cfg));
}
