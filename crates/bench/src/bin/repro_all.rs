//! Regenerates every table and figure of the paper in one run, printing
//! each with a heading — the one-command reproduction entry point.

use copernicus::experiments as ex;
use copernicus_bench::{emit_named, Cli};

fn section(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    let cfg = &cli.cfg;
    // One runner for the whole reproduction: figures that revisit the same
    // (workload, partition size, format) cell — e.g. the p=16 row shared by
    // Figs 4-12 and the full campaign — are measured exactly once.
    let runner = cli.runner();
    let started = std::time::Instant::now();

    section("Table 1: SuiteSparse workloads");
    emit_named(&cli, "table1", &ex::table1::render());

    section("Fig 3: partition density & locality");
    emit_named(
        &cli,
        "fig03",
        &ex::fig03::render(&ex::fig03::run(cfg).expect("fig03")),
    );

    section("Fig 4: decompression overhead (SuiteSparse, p=16)");
    emit_named(
        &cli,
        "fig04",
        &ex::fig04::render(
            &ex::fig04::run_on(&runner, cfg, &mut telemetry.instruments()).expect("fig04"),
        ),
    );

    section("Fig 5: decompression overhead vs density (random, p=16)");
    emit_named(
        &cli,
        "fig05",
        &ex::fig05::render(
            &ex::fig05::run_on(&runner, cfg, &mut telemetry.instruments()).expect("fig05"),
        ),
    );

    section("Fig 6: decompression overhead vs band width (p=16)");
    emit_named(
        &cli,
        "fig06",
        &ex::fig06::render(
            &ex::fig06::run_on(&runner, cfg, &mut telemetry.instruments()).expect("fig06"),
        ),
    );

    section("Fig 10: bandwidth utilization vs density (p=16)");
    emit_named(
        &cli,
        "fig10",
        &ex::fig10::render(
            &ex::fig10::run_on(&runner, cfg, &mut telemetry.instruments()).expect("fig10"),
        ),
    );

    section("Fig 11: bandwidth utilization vs band width (p=16)");
    emit_named(
        &cli,
        "fig11",
        &ex::fig11::render(
            &ex::fig11::run_on(&runner, cfg, &mut telemetry.instruments()).expect("fig11"),
        ),
    );

    // Figs 7, 8, 9, 12 and 14 all consume the same workload × format ×
    // partition-size campaign; run it once and aggregate.
    eprintln!("[repro_all] running the shared full campaign ...");
    let campaign = runner
        .characterize_with(
            &ex::fig07::all_class_workloads(cfg),
            &ex::FIGURE_FORMATS,
            &ex::FIGURE_PARTITION_SIZES,
            cfg,
            &mut telemetry.instruments(),
        )
        .expect("campaign");

    if let Some(dir) = &cli.out_dir {
        let json = serde::json::to_string_pretty(&serde::Serialize::serialize(&campaign));
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(dir.join("measurements.json"), json))
        {
            eprintln!("warning: could not write measurements.json: {e}");
        }
    }

    section("Fig 7: mean decompression overhead per class and partition size");
    emit_named(
        &cli,
        "fig07",
        &ex::fig07::render(&ex::fig07::aggregate(&campaign)),
    );

    section("Fig 8: memory vs compute latency (balance ratio)");
    emit_named(
        &cli,
        "fig08",
        &ex::fig08::render(&ex::fig08::rows_from(&campaign)),
    );

    section("Fig 9: throughput vs latency");
    emit_named(
        &cli,
        "fig09",
        &ex::fig09::render(&ex::fig09::from_measurements(&campaign)),
    );

    section("Fig 12: mean bandwidth utilization per class and partition size");
    emit_named(
        &cli,
        "fig12",
        &ex::fig12::render(&ex::fig12::aggregate(&campaign)),
    );

    section("Table 2: FPGA resources & dynamic power");
    emit_named(
        &cli,
        "table2",
        &ex::table2::render(&ex::table2::run(&[8, 16, 32])),
    );

    section("Fig 13: dynamic power breakdown");
    emit_named(
        &cli,
        "fig13",
        &ex::fig13::render(&ex::fig13::run(&[8, 16, 32])),
    );

    section("Fig 14: normalized six-metric summary");
    emit_named(
        &cli,
        "fig14",
        &ex::fig14::render(&copernicus::normalized_summary(&campaign)),
    );

    section("Section 8 insights, verified against this campaign");
    emit_named(
        &cli,
        "insights",
        &copernicus::insights::render(&copernicus::insights::verify(&campaign)),
    );

    // One manifest covers the whole reproduction; the trace and metrics
    // accumulate across every figure above.
    telemetry.finish(
        copernicus::manifest_for(
            cfg,
            &ex::fig07::all_class_workloads(cfg),
            &ex::FIGURE_FORMATS,
            &ex::FIGURE_PARTITION_SIZES,
        )
        .with_note("binary=repro_all (trace covers all figures)"),
    );
    eprintln!(
        "[repro_all] done in {:.2}s ({} jobs, {} memoized cells)",
        started.elapsed().as_secs_f64(),
        runner.jobs(),
        runner.cached_cells(),
    );
}
