//! Regenerates every table and figure of the paper in one run — a wrapper over `copernicus-bench repro_all`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "repro_all",
        std::env::args().skip(1).collect(),
    ));
}
