//! Beyond-paper backend crossover comparison (format × hardware backend)
//! — a wrapper over `copernicus-bench backend_split`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "backend_split",
        std::env::args().skip(1).collect(),
    ));
}
