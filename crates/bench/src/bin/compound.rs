//! Beyond-paper compound-scheme comparison (format × second-stage codec)
//! — a wrapper over `copernicus-bench compound`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "compound",
        std::env::args().skip(1).collect(),
    ));
}
