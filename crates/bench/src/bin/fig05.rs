//! Regenerates Fig. 5 of the paper (sigma vs density, p=16) — a wrapper over `copernicus-bench fig05`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig05",
        std::env::args().skip(1).collect(),
    ));
}
