//! Regenerates Fig. 5 of the paper (σ vs density, random matrices, p=16).
//! Pass `--chart` to render one bar chart per density step.

use copernicus::experiments::fig05;
use copernicus::plot::BarChart;
use copernicus_bench::{emit, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match fig05::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => {
            emit(&cli, &fig05::render(&rows));
            if cli.chart {
                let mut densities: Vec<f64> = rows.iter().map(|r| r.density).collect();
                densities.dedup();
                for d in densities {
                    let mut c =
                        BarChart::new(&format!("sigma at density {d} (| = dense baseline)"), 48);
                    c.reference(1.0);
                    for r in rows.iter().filter(|r| r.density == d) {
                        c.bar(r.format.label(), r.sigma);
                    }
                    println!("\n{}", c.render());
                }
            }
        }
        Err(e) => telemetry.record_error("fig05", &e),
    }
    finish_and_exit(telemetry, fig05::manifest(&cli.cfg));
}
