//! Regenerates Fig. 09 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig09;
use copernicus_bench::{emit, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match fig09::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => emit(&cli, &fig09::render(&rows)),
        Err(e) => telemetry.record_error("fig09", &e),
    }
    finish_and_exit(telemetry, fig09::manifest(&cli.cfg));
}
