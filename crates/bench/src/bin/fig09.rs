//! Regenerates Fig. 9 of the paper (throughput vs latency) — a wrapper over `copernicus-bench fig09`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig09",
        std::env::args().skip(1).collect(),
    ));
}
