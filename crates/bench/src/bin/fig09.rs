//! Regenerates Fig. 09 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig09;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    let rows =
        fig09::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()).unwrap_or_else(|e| {
            eprintln!("fig09 failed: {e}");
            std::process::exit(1);
        });
    telemetry.finish(fig09::manifest(&cli.cfg));
    emit(&cli, &fig09::render(&rows));
}
