//! Hot-path benchmark harness timing the end-to-end `repro_all`
//! reproduction — a wrapper over `copernicus-bench perf`; the driver lives
//! in `copernicus_bench::drivers`.

fn main() {
    std::process::exit(copernicus_bench::run(
        "perf",
        std::env::args().skip(1).collect(),
    ));
}
