//! Regenerates Fig. 6 of the paper (σ vs band width, p=16).
//! Pass `--chart` to render one bar chart per width.

use copernicus::experiments::fig06;
use copernicus::plot::BarChart;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    let rows =
        fig06::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()).unwrap_or_else(|e| {
            eprintln!("fig06 failed: {e}");
            std::process::exit(1);
        });
    telemetry.finish(fig06::manifest(&cli.cfg));
    emit(&cli, &fig06::render(&rows));
    if cli.chart {
        let mut widths: Vec<usize> = rows.iter().map(|r| r.width).collect();
        widths.dedup();
        for w in widths {
            let mut c = BarChart::new(&format!("sigma at band width {w} (| = dense baseline)"), 48);
            c.reference(1.0);
            for r in rows.iter().filter(|r| r.width == w) {
                c.bar(r.format.label(), r.sigma);
            }
            println!("\n{}", c.render());
        }
    }
}
