//! Regenerates Fig. 6 of the paper (sigma vs band width, p=16) — a wrapper over `copernicus-bench fig06`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig06",
        std::env::args().skip(1).collect(),
    ));
}
