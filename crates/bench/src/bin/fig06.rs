//! Regenerates Fig. 6 of the paper (σ vs band width, p=16).
//! Pass `--chart` to render one bar chart per width.

use copernicus::experiments::fig06;
use copernicus::plot::BarChart;
use copernicus_bench::{emit, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match fig06::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => {
            emit(&cli, &fig06::render(&rows));
            if cli.chart {
                let mut widths: Vec<usize> = rows.iter().map(|r| r.width).collect();
                widths.dedup();
                for w in widths {
                    let mut c =
                        BarChart::new(&format!("sigma at band width {w} (| = dense baseline)"), 48);
                    c.reference(1.0);
                    for r in rows.iter().filter(|r| r.width == w) {
                        c.bar(r.format.label(), r.sigma);
                    }
                    println!("\n{}", c.render());
                }
            }
        }
        Err(e) => telemetry.record_error("fig06", &e),
    }
    finish_and_exit(telemetry, fig06::manifest(&cli.cfg));
}
