//! Regenerates Fig. 8 of the paper (memory vs compute latency) — a wrapper over `copernicus-bench fig08`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig08",
        std::env::args().skip(1).collect(),
    ));
}
