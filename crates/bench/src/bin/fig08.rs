//! Regenerates Fig. 8 of the paper (memory vs compute latency / balance
//! ratio). Pass `--chart` to render a log-log scatter per workload class,
//! with each format drawn as its initial letter and the dotted diagonal as
//! the perfect-balance line.

use copernicus::experiments::fig08;
use copernicus::plot::ScatterPlot;
use copernicus_bench::{emit, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match fig08::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => {
            emit(&cli, &fig08::render(&rows));
            if cli.chart {
                let mut classes: Vec<_> = rows.iter().map(|r| r.class).collect();
                classes.dedup();
                for class in classes {
                    let mut p = ScatterPlot::new(
                        &format!("{class}: memory vs compute cycles (log-log)"),
                        64,
                        20,
                        true,
                    );
                    for r in rows.iter().filter(|r| r.class == class) {
                        let glyph = r.format.label().chars().next().unwrap_or('?');
                        p.point(r.mem_cycles as f64, r.compute_cycles as f64, glyph);
                    }
                    println!("\n{}", p.render());
                }
            }
        }
        Err(e) => telemetry.record_error("fig08", &e),
    }
    finish_and_exit(telemetry, fig08::manifest(&cli.cfg));
}
