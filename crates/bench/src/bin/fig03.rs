//! Regenerates Fig. 3 of the paper (partition density and locality) — a wrapper over `copernicus-bench fig03`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig03",
        std::env::args().skip(1).collect(),
    ));
}
