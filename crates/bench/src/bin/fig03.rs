//! Regenerates Fig. 03 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig03;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let rows = fig03::run(&cli.cfg).unwrap_or_else(|e| {
        eprintln!("fig03 failed: {e}");
        std::process::exit(1);
    });
    emit(&cli, &fig03::render(&rows));
}
