//! Ablation tables over the platform's design knobs — a wrapper over `copernicus-bench ablation`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "ablation",
        std::env::args().skip(1).collect(),
    ));
}
