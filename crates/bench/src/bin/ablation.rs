//! Ablation tables over the platform's design knobs: how σ, balance and
//! throughput respond to BRAM latency, memory bus width, ELL engine width,
//! BCSR block size, and partition sizes beyond the paper's 8/16/32.
//!
//! ```sh
//! cargo run --release -p copernicus-bench --bin ablation
//! ```

use copernicus::table::{eng, f3, TextTable};
use copernicus_bench::{emit, Cli};
use copernicus_hls::{HwConfig, Platform};
use copernicus_workloads::Workload;
use sparsemat::{Coo, FormatKind};

fn run_table(
    title: &str,
    cli: &Cli,
    matrix: &Coo<f32>,
    configs: &[(String, HwConfig)],
    formats: &[FormatKind],
) {
    println!("\n=== {title} ===");
    let mut t = TextTable::new(&["variant", "format", "sigma", "balance", "throughput"]);
    for (label, hw) in configs {
        let platform = Platform::new(hw.clone()).expect("valid config");
        for &format in formats {
            let r = platform.run(matrix, format).expect("run");
            t.row(&[
                label.clone(),
                format.to_string(),
                f3(r.sigma()),
                f3(r.balance_ratio),
                format!("{}B/s", eng(r.throughput_bytes_per_sec())),
            ]);
        }
    }
    emit(cli, &t.render());
}

fn base() -> HwConfig {
    let mut hw = HwConfig::with_partition_size(16);
    hw.verify_functional = false;
    hw
}

fn main() {
    let cli = Cli::from_env();
    let dim = cli.cfg.sweep_dim.max(192);
    let random = Workload::Random {
        n: dim,
        density: 0.05,
    }
    .generate(0, cli.cfg.seed);
    let band = Workload::Band { n: dim, width: 16 }.generate(0, cli.cfg.seed);

    // BRAM read latency: CSR pays one offsets read per row, LIL one per
    // emitted row — both should track L_bram; COO barely moves.
    let configs: Vec<(String, HwConfig)> = [1u64, 2, 4]
        .iter()
        .map(|&l| {
            let mut hw = base();
            hw.bram_read_latency = l;
            (format!("L_bram={l}"), hw)
        })
        .collect();
    run_table(
        "BRAM read latency (random d=0.05)",
        &cli,
        &random,
        &configs,
        &[FormatKind::Csr, FormatKind::Lil, FormatKind::Coo],
    );

    // Memory bus width: balance ratios scale inversely; compute-bound
    // formats barely change total time.
    let configs: Vec<(String, HwConfig)> = [4usize, 8, 16]
        .iter()
        .map(|&b| {
            let mut hw = base();
            hw.bus_bytes_per_cycle = b;
            (format!("bus={b}B/cyc"), hw)
        })
        .collect();
    run_table(
        "Memory bus width (random d=0.05)",
        &cli,
        &random,
        &configs,
        &[FormatKind::Dense, FormatKind::Coo, FormatKind::Csc],
    );

    // ELL engine width: the paper fixes 6; narrower engines shorten the
    // adder tree (lower T_dot), wider ones deepen it.
    let configs: Vec<(String, HwConfig)> = [4usize, 6, 8, 12]
        .iter()
        .map(|&w| {
            let mut hw = base();
            hw.ell_hw_width = w;
            (format!("ell_w={w}"), hw)
        })
        .collect();
    run_table(
        "ELL engine width (band w=16)",
        &cli,
        &band,
        &configs,
        &[FormatKind::Ell],
    );

    // BCSR block size: the paper fixes 4x4; bigger blocks transfer more
    // intra-block zeros but touch fewer offsets.
    let configs: Vec<(String, HwConfig)> = [2usize, 4, 8]
        .iter()
        .map(|&blk| {
            let mut hw = base();
            hw.bcsr_block = blk;
            (format!("block={blk}x{blk}"), hw)
        })
        .collect();
    run_table(
        "BCSR block size (random d=0.05)",
        &cli,
        &random,
        &configs,
        &[FormatKind::Bcsr],
    );

    // Partition sizes beyond the paper.
    let configs: Vec<(String, HwConfig)> = [8usize, 16, 32, 64]
        .iter()
        .map(|&p| {
            let mut hw = base();
            hw.partition_size = p;
            (format!("p={p}"), hw)
        })
        .collect();
    run_table(
        "Partition size extrapolation (band w=16)",
        &cli,
        &band,
        &configs,
        &[FormatKind::Dense, FormatKind::Ell, FormatKind::Dia],
    );
}
