//! Regenerates Fig. 04 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig04;
use copernicus_bench::{emit, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match fig04::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => emit(&cli, &fig04::render(&rows)),
        Err(e) => telemetry.record_error("fig04", &e),
    }
    finish_and_exit(telemetry, fig04::manifest(&cli.cfg));
}
