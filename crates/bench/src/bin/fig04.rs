//! Regenerates Fig. 04 of the paper. See `copernicus_bench::Cli` for flags.

use copernicus::experiments::fig04;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    let rows =
        fig04::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()).unwrap_or_else(|e| {
            eprintln!("fig04 failed: {e}");
            std::process::exit(1);
        });
    telemetry.finish(fig04::manifest(&cli.cfg));
    emit(&cli, &fig04::render(&rows));
}
