//! Regenerates Fig. 4 of the paper (sigma on SuiteSparse, p=16) — a wrapper over `copernicus-bench fig04`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig04",
        std::env::args().skip(1).collect(),
    ));
}
