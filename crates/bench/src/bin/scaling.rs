//! Coarse-grained parallelism sweep (§5.1: "Instances of this architecture
//! can be aggregated"): how each format scales when 1–16 compute instances
//! share one memory channel — the quantified version of §8's "the memory
//! bandwidth is not always the bottleneck".
//!
//! ```sh
//! cargo run --release -p copernicus-bench --bin scaling
//! ```

use copernicus::table::{f3, TextTable};
use copernicus_bench::{emit, Cli};
use copernicus_hls::{HwConfig, Platform};
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

fn main() {
    let cli = Cli::from_env();
    let dim = cli.cfg.sweep_dim.max(256);
    let matrix = Workload::Random {
        n: dim,
        density: 0.05,
    }
    .generate(0, cli.cfg.seed);
    let mut hw = HwConfig::with_partition_size(16);
    hw.verify_functional = false;
    let platform = Platform::new(hw).expect("valid config");

    let mut t = TextTable::new(&[
        "format",
        "lanes",
        "total_cycles",
        "speedup",
        "efficiency",
        "bound",
    ]);
    // Every (format, lanes) point is independent; fan the sweep out over
    // `--jobs` workers and collect rows back in sweep order.
    let points: Vec<(FormatKind, usize)> = FormatKind::CHARACTERIZED
        .into_iter()
        .flat_map(|format| [1usize, 2, 4, 8, 16].map(|lanes| (format, lanes)))
        .collect();
    let rows = copernicus::par_map_ordered(cli.jobs, &points, |_, &(format, lanes)| {
        let r = platform.run_parallel(&matrix, format, lanes).expect("run");
        [
            format.to_string(),
            lanes.to_string(),
            r.total_cycles.to_string(),
            f3(r.speedup()),
            f3(r.efficiency()),
            if r.is_memory_bound() {
                "memory"
            } else {
                "compute"
            }
            .to_string(),
        ]
    });
    for row in &rows {
        t.row(row);
    }
    emit(&cli, &t.render());
}
