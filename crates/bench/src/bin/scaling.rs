//! Coarse-grained parallelism sweep (1-16 aggregated lanes) — a wrapper over `copernicus-bench scaling`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "scaling",
        std::env::args().skip(1).collect(),
    ));
}
