//! Regenerates Table 2 of the paper (FPGA resources and dynamic power) — a wrapper over `copernicus-bench table2`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "table2",
        std::env::args().skip(1).collect(),
    ));
}
