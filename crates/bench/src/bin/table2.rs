//! Regenerates Table 2 of the paper (FPGA resources and dynamic power per
//! format and partition size).

use copernicus::experiments::table2;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let rows = table2::run(&[8, 16, 32]);
    emit(&cli, &table2::render(&rows));
}
