//! Regenerates Fig. 14 of the paper (normalized six-metric summary) — a wrapper over `copernicus-bench fig14`; the driver lives in
//! `copernicus_bench::drivers` and all flags are shared (see
//! `copernicus_bench::Cli`).

fn main() {
    std::process::exit(copernicus_bench::run(
        "fig14",
        std::env::args().skip(1).collect(),
    ));
}
