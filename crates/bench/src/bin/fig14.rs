//! Regenerates Fig. 14 of the paper (the normalized six-metric summary per
//! workload class).

use copernicus::experiments::fig14;
use copernicus_bench::{emit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    let rows =
        fig14::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()).unwrap_or_else(|e| {
            eprintln!("fig14 failed: {e}");
            std::process::exit(1);
        });
    telemetry.finish(fig14::manifest(&cli.cfg));
    emit(&cli, &fig14::render(&rows));
}
