//! Regenerates Fig. 14 of the paper (the normalized six-metric summary per
//! workload class).

use copernicus::experiments::fig14;
use copernicus_bench::{emit, finish_and_exit, Cli};

fn main() {
    let cli = Cli::from_env();
    let mut telemetry = cli.telemetry();
    match fig14::run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => emit(&cli, &fig14::render(&rows)),
        Err(e) => telemetry.record_error("fig14", &e),
    }
    finish_and_exit(telemetry, fig14::manifest(&cli.cfg));
}
