//! `copernicus-bench` — the multi-call reproduction driver.
//!
//! The first argument picks the command (`repro_all`, `fig05`, `perf`,
//! ...); everything after it is the command's flag list, shared across all
//! of them (see [`copernicus_bench::Cli`]). The per-figure binaries
//! (`cargo run --bin fig05`) are one-line wrappers over the same
//! dispatcher, so both spellings behave identically.

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // The perf harness re-execs this binary with the command in
    // COPERNICUS_BENCH_CMD and only flags on the command line.
    let cmd = if let Ok(forced) = std::env::var("COPERNICUS_BENCH_CMD") {
        forced
    } else if !args.is_empty() && !args[0].starts_with('-') {
        args.remove(0)
    } else {
        eprintln!(
            "usage: copernicus-bench <command> [flags]\ncommands: {}",
            copernicus_bench::COMMANDS.join(" ")
        );
        std::process::exit(2);
    };
    std::process::exit(copernicus_bench::run(&cmd, args));
}
