//! `copernicus-bench storm` — the load generator for the serve daemon.
//!
//! Hammers `POST /characterize` from N concurrent keep-alive clients at
//! each requested concurrency level, records per-request latency, and
//! writes p50/p99 + throughput into `BENCH_serve.json` (same spirit as the
//! `BENCH_<host>.json` files the `perf` harness produces).
//!
//! Without `--addr` the storm spawns its own daemon via the
//! `COPERNICUS_BENCH_CMD` re-exec trampoline, parses the bound port off
//! its stdout, and drains it afterwards.
//!
//! `--chaos` turns the storm into a crash-recovery audit: the daemon runs
//! with a spool, gets `SIGKILL`ed mid-storm, is restarted on the same
//! spool, is fed garbage and oversized requests, and is then drained with
//! SIGTERM. The invariant checked is the service's durability contract —
//! **zero accepted-but-lost requests**: after recovery every request id
//! is either answered (`200`) or was never accepted (`404`); nothing may
//! stay pending forever, and no id that was answered before the kill may
//! lose its answer.

use serde::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Parsed `storm` flags.
#[derive(Debug, Clone)]
pub struct StormArgs {
    /// Target daemon (`host:port`); spawn our own when absent.
    pub addr: Option<String>,
    /// Concurrency levels to sweep (clients per level).
    pub levels: Vec<usize>,
    /// Requests each client sends per level.
    pub requests: usize,
    /// Where the benchmark JSON lands.
    pub out: PathBuf,
    /// Run the kill/restart/garbage chaos audit instead of a plain sweep.
    pub chaos: bool,
    /// Spool directory for the chaos daemon (temp default).
    pub spool: Option<PathBuf>,
}

impl Default for StormArgs {
    fn default() -> Self {
        StormArgs {
            addr: None,
            levels: vec![2, 8],
            requests: 8,
            out: PathBuf::from("BENCH_serve.json"),
            chaos: false,
            spool: None,
        }
    }
}

impl StormArgs {
    /// Parses `storm` arguments.
    ///
    /// # Errors
    ///
    /// A usage string on unknown flags or malformed values.
    pub fn parse(args: Vec<String>) -> Result<StormArgs, String> {
        let mut parsed = StormArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--addr" => parsed.addr = Some(it.next().ok_or("--addr needs host:port")?),
                "--levels" => {
                    let v = it.next().ok_or("--levels needs a comma list")?;
                    parsed.levels = v
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<usize>()
                                .map_err(|e| format!("bad level {s:?}: {e}"))
                                .and_then(|n| {
                                    if (1..=64).contains(&n) {
                                        Ok(n)
                                    } else {
                                        Err(format!("level {n} out of 1..=64"))
                                    }
                                })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if parsed.levels.is_empty() {
                        return Err("--levels must name at least one level".to_string());
                    }
                }
                "--requests" => {
                    let v = it.next().ok_or("--requests needs a value")?;
                    parsed.requests = v
                        .parse::<usize>()
                        .map_err(|e| format!("bad --requests {v:?}: {e}"))?
                        .clamp(1, 10_000);
                }
                "--out" => parsed.out = PathBuf::from(it.next().ok_or("--out needs a path")?),
                "--chaos" => parsed.chaos = true,
                "--spool" => {
                    parsed.spool = Some(PathBuf::from(it.next().ok_or("--spool needs a dir")?));
                }
                other => {
                    return Err(format!(
                        "unknown storm flag {other:?}\nusage: storm [--addr HOST:PORT] [--levels N,M] [--requests N] [--out PATH] [--chaos] [--spool DIR]"
                    ));
                }
            }
        }
        Ok(parsed)
    }
}

/// The `storm` subcommand. Returns the process exit code.
pub fn storm(args: Vec<String>) -> i32 {
    let args = match StormArgs::parse(args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    if args.chaos {
        return chaos(&args);
    }

    // Spawn a daemon unless the caller pointed us at one.
    let mut spawned: Option<ServerHandle> = None;
    let addr = match &args.addr {
        Some(a) => a.clone(),
        None => match ServerHandle::spawn(&[]) {
            Ok(handle) => {
                let addr = handle.addr.clone();
                spawned = Some(handle);
                addr
            }
            Err(e) => {
                eprintln!("storm: cannot spawn a daemon: {e}");
                return 1;
            }
        },
    };

    let mut levels = Vec::new();
    for &clients in &args.levels {
        match run_level(&addr, clients, args.requests) {
            Ok(level) => {
                eprintln!(
                    "storm: {clients} client(s) x {} req: ok={} shed={} p50={:.1}ms p99={:.1}ms {:.1} req/s",
                    args.requests, level.ok, level.rejected, level.p50_ms, level.p99_ms, level.req_per_s
                );
                levels.push(level);
            }
            Err(e) => {
                eprintln!("storm: level {clients} failed: {e}");
                if let Some(handle) = spawned.take() {
                    handle.drain_and_wait();
                }
                return 1;
            }
        }
    }
    if let Some(handle) = spawned.take() {
        if !handle.drain_and_wait() {
            eprintln!("storm: daemon did not drain cleanly");
            return 1;
        }
    }

    let doc = bench_doc(&levels, None);
    if let Err(e) =
        copernicus_telemetry::atomic_write(&args.out, serde::json::to_string_pretty(&doc))
    {
        eprintln!("storm: cannot write {}: {e}", args.out.display());
        return 1;
    }
    println!("storm: wrote {}", args.out.display());
    0
}

/// One concurrency level's results.
struct LevelResult {
    clients: usize,
    requests: usize,
    ok: u64,
    rejected: u64,
    errors: u64,
    p50_ms: f64,
    p99_ms: f64,
    req_per_s: f64,
}

/// Runs one concurrency level: `clients` threads, each sending
/// `requests` characterize calls over a keep-alive connection.
fn run_level(addr: &str, clients: usize, requests: usize) -> Result<LevelResult, String> {
    let started = Instant::now();
    let mut handles = Vec::new();
    for client in 0..clients {
        let addr = addr.to_string();
        handles.push(std::thread::spawn(
            move || -> Result<ClientTally, String> {
                let mut conn = HttpClient::connect(&addr)?;
                let mut tally = ClientTally::default();
                for req in 0..requests {
                    let body = small_spec(client as u64 * 10_000 + req as u64);
                    let t0 = Instant::now();
                    // A keep-alive connection the server closed (drain, slow
                    // verdict) gets one reconnect before counting an error.
                    let outcome = conn.post("/characterize", &body).or_else(|_| {
                        conn = HttpClient::connect(&addr)?;
                        conn.post("/characterize", &body)
                    });
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    match outcome {
                        Ok((200, _)) => {
                            tally.ok += 1;
                            tally.latencies_ms.push(ms);
                        }
                        Ok((429 | 503, _)) => tally.rejected += 1,
                        Ok((status, resp)) => {
                            return Err(format!("unexpected status {status}: {resp}"));
                        }
                        Err(e) => {
                            tally.errors += 1;
                            eprintln!("storm: request failed: {e}");
                        }
                    }
                }
                Ok(tally)
            },
        ));
    }
    let mut all = ClientTally::default();
    for h in handles {
        let tally = h
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        all.ok += tally.ok;
        all.rejected += tally.rejected;
        all.errors += tally.errors;
        all.latencies_ms.extend(tally.latencies_ms);
    }
    if all.ok == 0 {
        return Err("no request succeeded at this level".to_string());
    }
    let elapsed = started.elapsed().as_secs_f64();
    Ok(LevelResult {
        clients,
        requests,
        ok: all.ok,
        rejected: all.rejected,
        errors: all.errors,
        p50_ms: percentile(&mut all.latencies_ms, 50.0),
        p99_ms: percentile(&mut all.latencies_ms, 99.0),
        req_per_s: all.ok as f64 / elapsed.max(1e-9),
    })
}

#[derive(Default)]
struct ClientTally {
    ok: u64,
    rejected: u64,
    errors: u64,
    latencies_ms: Vec<f64>,
}

/// Nearest-rank percentile; sorts in place.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// A tiny characterization body — big enough to exercise the campaign
/// path, small enough that a level finishes in seconds.
fn small_spec(seed: u64) -> String {
    let doc = Value::Map(vec![
        (
            "workload".to_string(),
            Value::Map(vec![
                ("kind".to_string(), Value::Str("random".to_string())),
                ("n".to_string(), Value::UInt(24)),
                ("density".to_string(), Value::Float(0.1)),
            ]),
        ),
        ("seed".to_string(), Value::UInt(seed)),
    ]);
    serde::json::to_string(&doc)
}

fn bench_doc(levels: &[LevelResult], chaos: Option<&ChaosSummary>) -> Value {
    let mut fields = vec![
        (
            "schema".to_string(),
            Value::Str("bench_serve_v1".to_string()),
        ),
        (
            "levels".to_string(),
            Value::Seq(
                levels
                    .iter()
                    .map(|l| {
                        Value::Map(vec![
                            ("clients".to_string(), Value::UInt(l.clients as u64)),
                            (
                                "requests_per_client".to_string(),
                                Value::UInt(l.requests as u64),
                            ),
                            ("ok".to_string(), Value::UInt(l.ok)),
                            ("rejected".to_string(), Value::UInt(l.rejected)),
                            ("errors".to_string(), Value::UInt(l.errors)),
                            ("p50_ms".to_string(), Value::Float(l.p50_ms)),
                            ("p99_ms".to_string(), Value::Float(l.p99_ms)),
                            ("req_per_s".to_string(), Value::Float(l.req_per_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(c) = chaos {
        fields.push((
            "chaos".to_string(),
            Value::Map(vec![
                ("sent".to_string(), Value::UInt(c.sent)),
                (
                    "answered_pre_kill".to_string(),
                    Value::UInt(c.answered_pre_kill),
                ),
                ("answered_total".to_string(), Value::UInt(c.answered_total)),
                ("never_accepted".to_string(), Value::UInt(c.never_accepted)),
                ("lost".to_string(), Value::UInt(c.lost)),
                (
                    "garbage_rejected".to_string(),
                    Value::Bool(c.garbage_rejected),
                ),
                ("clean_exit".to_string(), Value::Bool(c.clean_exit)),
            ]),
        ));
    }
    Value::Map(fields)
}

// ---------------------------------------------------------------------------
// Minimal HTTP/1.1 client over std::net
// ---------------------------------------------------------------------------

/// A keep-alive HTTP client for one connection.
struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    fn connect(addr: &str) -> Result<HttpClient, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(10))))
            .map_err(|e| format!("socket timeouts: {e}"))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(HttpClient { stream, reader })
    }

    fn post(&mut self, target: &str, body: &str) -> Result<(u16, String), String> {
        self.request("POST", target, body.as_bytes())
    }

    fn get(&mut self, target: &str) -> Result<(u16, String), String> {
        self.request("GET", target, b"")
    }

    fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<(u16, String), String> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: storm\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream
            .write_all(head.as_bytes())
            .and_then(|()| self.stream.write_all(body))
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("write: {e}"))?;
        read_response(&mut self.reader)
    }
}

/// Reads one HTTP response: status line, headers, `Content-Length` body.
fn read_response<R: BufRead>(reader: &mut R) -> Result<(u16, String), String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read status: {e}"))?;
    if line.is_empty() {
        return Err("connection closed before a status line".to_string());
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

// ---------------------------------------------------------------------------
// Daemon child management
// ---------------------------------------------------------------------------

/// A daemon child spawned via the `COPERNICUS_BENCH_CMD` trampoline.
struct ServerHandle {
    child: Child,
    addr: String,
}

impl ServerHandle {
    /// Spawns `serve` on an ephemeral port and parses the bound address
    /// off its stdout banner.
    fn spawn(extra_args: &[&str]) -> Result<ServerHandle, String> {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mut child = Command::new(exe)
            .env("COPERNICUS_BENCH_CMD", "serve")
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn serve: {e}"))?;
        let stdout = child.stdout.take().ok_or("no stdout pipe")?;
        let mut reader = BufReader::new(stdout);
        let mut banner = String::new();
        reader
            .read_line(&mut banner)
            .map_err(|e| format!("read banner: {e}"))?;
        // "serving on http://127.0.0.1:PORT"
        let addr = banner
            .trim()
            .rsplit("http://")
            .next()
            .filter(|a| a.contains(':'))
            .ok_or_else(|| format!("unexpected banner {banner:?}"))?
            .to_string();
        // Keep the pipe draining so the child never blocks on stdout.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        Ok(ServerHandle { child, addr })
    }

    /// Requests a drain over HTTP and waits for a clean exit.
    fn drain_and_wait(mut self) -> bool {
        if let Ok(mut conn) = HttpClient::connect(&self.addr) {
            let _ = conn.post("/admin/drain", "");
        }
        wait_for_exit(&mut self.child, Duration::from_secs(60))
            .map(|code| code == 0)
            .unwrap_or(false)
    }

    /// SIGKILLs the daemon (the chaos crash).
    fn kill_hard(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Sends SIGTERM (unix) so the daemon drains via its signal handler.
    #[cfg(unix)]
    fn sigterm(&self) {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        const SIGTERM: i32 = 15;
        unsafe {
            kill(self.child.id() as i32, SIGTERM);
        }
    }

    #[cfg(not(unix))]
    fn sigterm(&self) {
        if let Ok(mut conn) = HttpClient::connect(&self.addr) {
            let _ = conn.post("/admin/drain", "");
        }
    }
}

/// Polls a child for exit without threads or signals.
fn wait_for_exit(child: &mut Child, timeout: Duration) -> Option<i32> {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return status.code(),
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return None;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------------

struct ChaosSummary {
    sent: u64,
    answered_pre_kill: u64,
    answered_total: u64,
    never_accepted: u64,
    lost: u64,
    garbage_rejected: bool,
    clean_exit: bool,
}

/// The chaos audit: kill -9 mid-storm, restart on the same spool, feed the
/// parser garbage, drain with SIGTERM — and prove zero accepted-but-lost
/// requests.
fn chaos(args: &StormArgs) -> i32 {
    let spool = args.spool.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("copernicus-storm-chaos-{}", std::process::id()))
    });
    if let Err(e) = std::fs::create_dir_all(&spool) {
        eprintln!("storm: cannot create spool {}: {e}", spool.display());
        return 1;
    }
    let spool_str = spool.display().to_string();
    let serve_args = [
        "--spool",
        spool_str.as_str(),
        "--workers",
        "2",
        "--queue",
        "32",
    ];

    // Phase 1: start, fire requests with known ids, kill -9 mid-flight.
    let mut server = match ServerHandle::spawn(&serve_args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("storm: cannot spawn chaos daemon: {e}");
            return 1;
        }
    };
    let total = (args.requests.max(6)) as u64;
    eprintln!(
        "storm[chaos]: phase 1 — {total} requests against {}",
        server.addr
    );
    // answered[id] = client saw a 200 before the kill.
    let mut answered: BTreeMap<String, bool> = BTreeMap::new();
    let (tx, rx) = std::sync::mpsc::channel::<(String, bool)>();
    let mut senders = Vec::new();
    for i in 0..total {
        let id = format!("chaos-{i}");
        answered.insert(id.clone(), false);
        let addr = server.addr.clone();
        let tx = tx.clone();
        senders.push(std::thread::spawn(move || {
            let body = chaos_spec(&id, i);
            let ok = HttpClient::connect(&addr)
                .and_then(|mut c| c.post("/characterize", &body))
                .map(|(status, _)| status == 200)
                .unwrap_or(false);
            let _ = tx.send((id, ok));
        }));
        // Stagger slightly so the kill lands with work in every state:
        // answered, in-flight, queued, and not-yet-sent.
        std::thread::sleep(Duration::from_millis(30));
        if i == total / 2 {
            eprintln!("storm[chaos]: SIGKILL mid-storm");
            server.kill_hard();
        }
    }
    drop(tx);
    for s in senders {
        let _ = s.join();
    }
    while let Ok((id, ok)) = rx.recv() {
        if ok {
            answered.insert(id, true);
        }
    }
    let answered_pre_kill = answered.values().filter(|&&ok| ok).count() as u64;
    eprintln!("storm[chaos]: {answered_pre_kill}/{total} answered before/around the kill");

    // Phase 2: restart on the same spool; recovery must finish every
    // journaled request. Feed the parser garbage while it works.
    let mut server = match ServerHandle::spawn(&serve_args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("storm: cannot restart chaos daemon: {e}");
            return 1;
        }
    };
    eprintln!(
        "storm[chaos]: phase 2 — restarted on the same spool at {}",
        server.addr
    );
    let garbage_rejected = garbage_is_rejected(&server.addr);

    // Poll every id to a terminal state: 200 (answered) or 404 (never
    // accepted). 202 = journaled-but-pending, must clear; anything else or
    // a timeout is a lost request.
    let mut answered_total = 0u64;
    let mut never_accepted = 0u64;
    let mut lost = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    for (id, was_answered) in &answered {
        let verdict = loop {
            let status = HttpClient::connect(&server.addr)
                .and_then(|mut c| c.get(&format!("/requests/{id}")))
                .map(|(status, _)| status);
            match status {
                Ok(200) => break Some(true),
                Ok(404) => break Some(false),
                Ok(202) | Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(100));
                }
                other => {
                    eprintln!("storm[chaos]: {id} stuck at {other:?}");
                    break None;
                }
            }
        };
        match verdict {
            Some(true) => answered_total += 1,
            Some(false) if *was_answered => {
                // Client saw 200, the restarted server lost the result.
                eprintln!("storm[chaos]: {id} was answered but is gone — LOST");
                lost += 1;
            }
            Some(false) => never_accepted += 1,
            None => lost += 1,
        }
    }

    // Phase 3: SIGTERM drain; clean exit required.
    server.sigterm();
    let clean_exit = wait_for_exit(&mut server.child, Duration::from_secs(60)) == Some(0);

    let summary = ChaosSummary {
        sent: total,
        answered_pre_kill,
        answered_total,
        never_accepted,
        lost,
        garbage_rejected,
        clean_exit,
    };
    eprintln!(
        "storm[chaos]: answered={}/{} never_accepted={} lost={} garbage_rejected={} clean_exit={}",
        summary.answered_total,
        summary.sent,
        summary.never_accepted,
        summary.lost,
        summary.garbage_rejected,
        summary.clean_exit
    );
    let doc = bench_doc(&[], Some(&summary));
    if let Err(e) =
        copernicus_telemetry::atomic_write(&args.out, serde::json::to_string_pretty(&doc))
    {
        eprintln!("storm: cannot write {}: {e}", args.out.display());
        return 1;
    }
    let pass = summary.lost == 0 && summary.garbage_rejected && summary.clean_exit;
    if pass {
        println!("storm[chaos]: PASS — zero accepted-but-lost requests");
        0
    } else {
        println!("storm[chaos]: FAIL");
        1
    }
}

fn chaos_spec(id: &str, seed: u64) -> String {
    let doc = Value::Map(vec![
        ("id".to_string(), Value::Str(id.to_string())),
        (
            "workload".to_string(),
            Value::Map(vec![
                ("kind".to_string(), Value::Str("random".to_string())),
                ("n".to_string(), Value::UInt(32)),
                ("density".to_string(), Value::Float(0.1)),
            ]),
        ),
        ("seed".to_string(), Value::UInt(seed)),
    ]);
    serde::json::to_string(&doc)
}

/// Feeds the daemon protocol garbage and an oversized body; both must be
/// answered with a 4xx (or a clean close) and must not take the daemon
/// down.
fn garbage_is_rejected(addr: &str) -> bool {
    // Raw garbage bytes: expect 400 or a typed close, never a hang.
    let garbage_ok = TcpStream::connect(addr)
        .map(|mut s| {
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let _ = s.write_all(b"\x00\xffnot http at all\r\n\r\n");
            let mut reader = BufReader::new(s);
            match read_response(&mut reader) {
                Ok((status, _)) => (400..500).contains(&status),
                Err(_) => true, // clean close is acceptable for garbage
            }
        })
        .unwrap_or(false);
    // Oversized body: declare a Content-Length past the limit (the server
    // rejects before reading the body, so sending the real 2 MiB would
    // only fill socket buffers) and expect a 413.
    let oversized_ok = TcpStream::connect(addr)
        .map(|mut s| {
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let head =
                "POST /characterize HTTP/1.1\r\nHost: storm\r\nContent-Length: 2097152\r\n\r\n";
            let _ = s.write_all(head.as_bytes());
            let _ = s.write_all(b"{\"partial\":");
            let _ = s.flush();
            let mut reader = BufReader::new(s);
            matches!(read_response(&mut reader), Ok((413, _)))
        })
        .unwrap_or(false);
    // The daemon must still answer after both.
    let alive = HttpClient::connect(addr)
        .and_then(|mut c| c.get("/healthz"))
        .map(|(status, _)| status == 200)
        .unwrap_or(false);
    garbage_ok && oversized_ok && alive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_args_parse() {
        let d = StormArgs::parse(vec![]).expect("defaults");
        assert_eq!(d.levels, vec![2, 8]);
        assert!(!d.chaos);

        let a = StormArgs::parse(
            [
                "--addr",
                "127.0.0.1:9",
                "--levels",
                "1,4,16",
                "--requests",
                "3",
                "--out",
                "/tmp/b.json",
                "--chaos",
            ]
            .map(String::from)
            .to_vec(),
        )
        .expect("parse");
        assert_eq!(a.addr.as_deref(), Some("127.0.0.1:9"));
        assert_eq!(a.levels, vec![1, 4, 16]);
        assert_eq!(a.requests, 3);
        assert!(a.chaos);

        assert!(StormArgs::parse(vec!["--levels".into(), "0".into()]).is_err());
        assert!(StormArgs::parse(vec!["--nope".into()]).is_err());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 50.0), 3.0);
        assert_eq!(percentile(&mut v, 99.0), 5.0);
        assert_eq!(percentile(&mut v, 1.0), 1.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }

    #[test]
    fn bench_doc_shape_holds() {
        let levels = [LevelResult {
            clients: 2,
            requests: 4,
            ok: 8,
            rejected: 0,
            errors: 0,
            p50_ms: 1.5,
            p99_ms: 3.0,
            req_per_s: 100.0,
        }];
        let doc = bench_doc(&levels, None);
        let text = serde::json::to_string(&doc);
        let parsed: Value = serde::json::from_str(&text).expect("round trip");
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some("bench_serve_v1")
        );
        let seq = parsed
            .get("levels")
            .and_then(Value::as_seq)
            .expect("levels");
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].get("ok").and_then(Value::as_u64), Some(8));
    }

    #[test]
    fn small_spec_is_a_valid_request() {
        let body = small_spec(7);
        crate::serve::scheduler::RequestSpec::parse(body.as_bytes()).expect("spec parses");
        let body = chaos_spec("chaos-3", 3);
        let spec = crate::serve::scheduler::RequestSpec::parse(body.as_bytes()).expect("parses");
        assert_eq!(spec.id.as_deref(), Some("chaos-3"));
    }
}
