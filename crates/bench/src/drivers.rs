//! One driver function per regeneration command, behind a single
//! dispatcher.
//!
//! Historically every figure/table had its own binary with a copy of the
//! flag-parsing and telemetry boilerplate. All of that now lives here: the
//! multi-call `copernicus-bench` binary dispatches its first argument
//! through [`run`], and the per-figure binaries are one-line wrappers
//! passing their own name. `copernicus-bench fig05 --tsv` and
//! `cargo run --bin fig05 -- --tsv` are byte-identical.
//!
//! Four commands parse their own flags instead of [`Cli`] and live in
//! sibling modules: [`crate::perf`] (the hot-path benchmark harness and
//! trajectory regression gate), [`crate::report`] (the offline run-dir
//! summarizer), [`crate::serve`] (the characterization daemon) and
//! [`crate::storm`] (its load generator). All are dispatched here before
//! `Cli::parse`.

use crate::{emit, emit_named, Cli};
use copernicus::experiments as ex;
use copernicus::plot::{BarChart, ScatterPlot};
use copernicus::table::{eng, f3, TextTable};
use copernicus::{CampaignError, CampaignRunner, ExperimentConfig, Instruments};
use copernicus_hls::{EncodedPartition, HwConfig, RunRequest, Session};
use copernicus_telemetry::RunManifest;
use copernicus_workloads::Workload;
use sparsemat::{Coo, FormatKind, Matrix, PartitionGrid};

/// Every command [`run`] dispatches, in `--help` order.
pub const COMMANDS: &[&str] = &[
    "repro_all",
    "table1",
    "table2",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "partition_sweep",
    "compound",
    "backend_split",
    "ablation",
    "scaling",
    "explain",
    "perf",
    "report",
    "serve",
    "storm",
];

/// Runs one regeneration command and returns the process exit code.
///
/// `cmd` is matched with `-`/`_` treated as equivalent. When the
/// `COPERNICUS_BENCH_CMD` environment variable is set it overrides `cmd`
/// — that is the re-exec trampoline the [`crate::perf`] harness uses to
/// turn any wrapper binary back into `repro_all`.
pub fn run(cmd: &str, args: Vec<String>) -> i32 {
    let forced = std::env::var("COPERNICUS_BENCH_CMD").ok();
    let cmd = forced.as_deref().unwrap_or(cmd).replace('-', "_");
    if cmd == "perf" {
        return crate::perf::perf(args);
    }
    if cmd == "report" {
        return crate::report::report(args);
    }
    if cmd == "serve" {
        return crate::serve::serve(args);
    }
    if cmd == "storm" {
        return crate::storm::storm(args);
    }
    let cli = match Cli::parse(args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    match cmd.as_str() {
        "repro_all" => repro_all(&cli),
        "table1" => {
            emit(&cli, &ex::table1::render());
            0
        }
        "table2" => {
            emit(&cli, &ex::table2::render(&ex::table2::run(&[8, 16, 32])));
            0
        }
        "fig03" => match ex::fig03::run(&cli.cfg) {
            Ok(rows) => {
                emit(&cli, &ex::fig03::render(&rows));
                0
            }
            Err(e) => {
                eprintln!("fig03 failed: {e}");
                1
            }
        },
        "fig04" => figure(
            &cli,
            "fig04",
            ex::fig04::manifest(&cli.cfg),
            ex::fig04::run_on,
            ex::fig04::render,
            |_| {},
        ),
        "fig05" => figure(
            &cli,
            "fig05",
            ex::fig05::manifest(&cli.cfg),
            ex::fig05::run_on,
            ex::fig05::render,
            |rows| {
                let mut densities: Vec<f64> = rows.iter().map(|r| r.density).collect();
                densities.dedup();
                for d in densities {
                    let mut c =
                        BarChart::new(&format!("sigma at density {d} (| = dense baseline)"), 48);
                    c.reference(1.0);
                    for r in rows.iter().filter(|r| r.density == d) {
                        c.bar(r.format.label(), r.sigma);
                    }
                    println!("\n{}", c.render());
                }
            },
        ),
        "fig06" => figure(
            &cli,
            "fig06",
            ex::fig06::manifest(&cli.cfg),
            ex::fig06::run_on,
            ex::fig06::render,
            |rows| {
                let mut widths: Vec<usize> = rows.iter().map(|r| r.width).collect();
                widths.dedup();
                for w in widths {
                    let mut c =
                        BarChart::new(&format!("sigma at band width {w} (| = dense baseline)"), 48);
                    c.reference(1.0);
                    for r in rows.iter().filter(|r| r.width == w) {
                        c.bar(r.format.label(), r.sigma);
                    }
                    println!("\n{}", c.render());
                }
            },
        ),
        "fig07" => figure(
            &cli,
            "fig07",
            ex::fig07::manifest(&cli.cfg),
            ex::fig07::run_on,
            ex::fig07::render,
            |_| {},
        ),
        "fig08" => figure(
            &cli,
            "fig08",
            ex::fig08::manifest(&cli.cfg),
            ex::fig08::run_on,
            ex::fig08::render,
            |rows| {
                let mut classes: Vec<_> = rows.iter().map(|r| r.class).collect();
                classes.dedup();
                for class in classes {
                    let mut p = ScatterPlot::new(
                        &format!("{class}: memory vs compute cycles (log-log)"),
                        64,
                        20,
                        true,
                    );
                    for r in rows.iter().filter(|r| r.class == class) {
                        let glyph = r.format.label().chars().next().unwrap_or('?');
                        p.point(r.mem_cycles as f64, r.compute_cycles as f64, glyph);
                    }
                    println!("\n{}", p.render());
                }
            },
        ),
        "fig09" => figure(
            &cli,
            "fig09",
            ex::fig09::manifest(&cli.cfg),
            ex::fig09::run_on,
            ex::fig09::render,
            |_| {},
        ),
        "fig10" => figure(
            &cli,
            "fig10",
            ex::fig10::manifest(&cli.cfg),
            ex::fig10::run_on,
            ex::fig10::render,
            |rows| {
                let mut densities: Vec<f64> = rows.iter().map(|r| r.density).collect();
                densities.dedup();
                for d in densities {
                    let mut c = BarChart::new(&format!("bandwidth utilization at density {d}"), 48);
                    for r in rows.iter().filter(|r| r.density == d) {
                        c.bar(r.format.label(), r.bandwidth_utilization);
                    }
                    println!("\n{}", c.render());
                }
            },
        ),
        "fig11" => figure(
            &cli,
            "fig11",
            ex::fig11::manifest(&cli.cfg),
            ex::fig11::run_on,
            ex::fig11::render,
            |_| {},
        ),
        "fig12" => figure(
            &cli,
            "fig12",
            ex::fig12::manifest(&cli.cfg),
            ex::fig12::run_on,
            ex::fig12::render,
            |_| {},
        ),
        "fig13" => {
            emit(&cli, &ex::fig13::render(&ex::fig13::run(&[8, 16, 32])));
            0
        }
        "fig14" => figure(
            &cli,
            "fig14",
            ex::fig14::manifest(&cli.cfg),
            ex::fig14::run_on,
            ex::fig14::render,
            |_| {},
        ),
        "partition_sweep" => {
            let mut telemetry = cli.telemetry();
            match ex::ext_partition_sweep::run_on(
                &cli.runner(),
                &cli.cfg,
                &mut telemetry.instruments(),
            ) {
                Ok(rows) => emit_named(
                    &cli,
                    "partition_sweep",
                    &ex::ext_partition_sweep::render(&rows),
                ),
                Err(e) => telemetry.record_error("partition_sweep", &e),
            }
            telemetry.finish(ex::ext_partition_sweep::manifest(&cli.cfg))
        }
        "compound" => {
            let mut telemetry = cli.telemetry();
            match ex::ext_compound_scheme::run_on(
                &cli.runner(),
                &cli.cfg,
                &mut telemetry.instruments(),
            ) {
                Ok(rows) => emit_named(&cli, "compound", &ex::ext_compound_scheme::render(&rows)),
                Err(e) => telemetry.record_error("compound", &e),
            }
            telemetry.finish(ex::ext_compound_scheme::manifest(&cli.cfg))
        }
        "backend_split" => {
            let mut telemetry = cli.telemetry();
            match ex::ext_backend_split::run_on(
                &cli.runner(),
                &cli.cfg,
                &mut telemetry.instruments(),
            ) {
                Ok(rows) => {
                    emit_named(&cli, "backend_split", &ex::ext_backend_split::render(&rows))
                }
                Err(e) => telemetry.record_error("backend_split", &e),
            }
            telemetry.finish(ex::ext_backend_split::manifest(&cli.cfg))
        }
        "ablation" => ablation(&cli),
        "scaling" => scaling(&cli),
        "explain" => explain(&cli),
        other => {
            eprintln!(
                "unknown command {other:?}\nusage: copernicus-bench <command> [flags]\ncommands: {}",
                COMMANDS.join(" ")
            );
            2
        }
    }
}

/// The common shape of the per-figure commands: run the experiment on a
/// fresh runner, emit the table, optionally chart, write the telemetry.
fn figure<R>(
    cli: &Cli,
    name: &str,
    manifest: RunManifest,
    run_on: impl FnOnce(
        &CampaignRunner,
        &ExperimentConfig,
        &mut Instruments<'_>,
    ) -> Result<Vec<R>, CampaignError>,
    render: impl FnOnce(&[R]) -> String,
    chart: impl FnOnce(&[R]),
) -> i32 {
    let mut telemetry = cli.telemetry();
    match run_on(&cli.runner(), &cli.cfg, &mut telemetry.instruments()) {
        Ok(rows) => {
            emit(cli, &render(&rows));
            if cli.chart {
                chart(&rows);
            }
        }
        Err(e) => telemetry.record_error(name, &e),
    }
    telemetry.finish(manifest)
}

/// `repro_all` — regenerates every table and figure of the paper in one
/// run, printing each with a heading.
///
/// Fault tolerance: under `--keep-going` a failed figure is reported and
/// skipped (and the shared campaign keeps its surviving cells for the
/// aggregate figures); otherwise the first failure ends the run. Either
/// way failed cells reach the manifest and the process exits nonzero.
fn repro_all(cli: &Cli) -> i32 {
    fn section(title: &str) {
        println!("\n=== {title} ===");
    }
    fn manifest(cfg: &ExperimentConfig) -> RunManifest {
        copernicus::manifest_for(
            cfg,
            &ex::fig07::all_class_workloads(cfg),
            &ex::FIGURE_FORMATS,
            &ex::FIGURE_PARTITION_SIZES,
        )
        .with_note("binary=repro_all (trace covers all figures)")
    }

    let mut telemetry = cli.telemetry();
    let cfg = &cli.cfg;
    // One runner for the whole reproduction: figures that revisit the same
    // (workload, partition size, format) cell — e.g. the p=16 row shared by
    // Figs 4-12 and the full campaign — are measured exactly once, and the
    // runner's workload cache generates/tiles each suite matrix exactly
    // once across all of them.
    let runner = cli.runner();
    let started = std::time::Instant::now();

    // Runs one fallible figure step. A failure is recorded for the manifest
    // and the end-of-run summary; without --keep-going it ends the run.
    macro_rules! step {
        ($name:expr, $result:expr) => {
            match $result.map_err(CampaignError::from) {
                Ok(v) => Some(v),
                Err(e) => {
                    telemetry.record_error($name, &e);
                    if !cli.keep_going {
                        return telemetry.finish(manifest(cfg));
                    }
                    None
                }
            }
        };
    }

    section("Table 1: SuiteSparse workloads");
    emit_named(cli, "table1", &ex::table1::render());

    section("Fig 3: partition density & locality");
    if let Some(rows) = step!("fig03", ex::fig03::run_on(&runner, cfg)) {
        emit_named(cli, "fig03", &ex::fig03::render(&rows));
    }

    section("Fig 4: decompression overhead (SuiteSparse, p=16)");
    if let Some(rows) = step!(
        "fig04",
        ex::fig04::run_on(&runner, cfg, &mut telemetry.instruments())
    ) {
        emit_named(cli, "fig04", &ex::fig04::render(&rows));
    }

    section("Fig 5: decompression overhead vs density (random, p=16)");
    if let Some(rows) = step!(
        "fig05",
        ex::fig05::run_on(&runner, cfg, &mut telemetry.instruments())
    ) {
        emit_named(cli, "fig05", &ex::fig05::render(&rows));
    }

    section("Fig 6: decompression overhead vs band width (p=16)");
    if let Some(rows) = step!(
        "fig06",
        ex::fig06::run_on(&runner, cfg, &mut telemetry.instruments())
    ) {
        emit_named(cli, "fig06", &ex::fig06::render(&rows));
    }

    section("Fig 10: bandwidth utilization vs density (p=16)");
    if let Some(rows) = step!(
        "fig10",
        ex::fig10::run_on(&runner, cfg, &mut telemetry.instruments())
    ) {
        emit_named(cli, "fig10", &ex::fig10::render(&rows));
    }

    section("Fig 11: bandwidth utilization vs band width (p=16)");
    if let Some(rows) = step!(
        "fig11",
        ex::fig11::run_on(&runner, cfg, &mut telemetry.instruments())
    ) {
        emit_named(cli, "fig11", &ex::fig11::render(&rows));
    }

    // Figs 7, 8, 9, 12 and 14 all consume the same workload × format ×
    // partition-size campaign; run it once and aggregate. The fault-aware
    // entry point keeps the surviving cells under --keep-going, so the
    // aggregates below still cover every cell that could be measured.
    eprintln!("[repro_all] running the shared full campaign ...");
    let outcome = step!(
        "campaign",
        runner.run_campaign(
            &ex::fig07::all_class_workloads(cfg),
            &ex::FIGURE_FORMATS,
            &ex::FIGURE_PARTITION_SIZES,
            cfg,
            &mut telemetry.instruments(),
        )
    );
    let campaign = match outcome {
        Some(outcome) => {
            telemetry.record_failures(&outcome.failures);
            outcome.measurements
        }
        None => Vec::new(),
    };

    if let Some(dir) = &cli.out_dir {
        // One object holding both halves of the outcome, so a clean run and
        // an interrupted-then-resumed run produce byte-identical files.
        let doc = serde::Value::Map(vec![
            (
                "measurements".to_string(),
                serde::Serialize::serialize(&campaign),
            ),
            (
                "failures".to_string(),
                serde::Serialize::serialize(&telemetry.failures),
            ),
        ]);
        let json = serde::json::to_string_pretty(&doc);
        // Atomic (temp + rename): a kill mid-write must never leave a torn
        // measurements.json for a later resume or report to choke on.
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| copernicus_telemetry::atomic_write(&dir.join("measurements.json"), json))
        {
            eprintln!("warning: could not write measurements.json: {e}");
        }
    }

    section("Fig 7: mean decompression overhead per class and partition size");
    emit_named(
        cli,
        "fig07",
        &ex::fig07::render(&ex::fig07::aggregate(&campaign)),
    );

    section("Fig 8: memory vs compute latency (balance ratio)");
    emit_named(
        cli,
        "fig08",
        &ex::fig08::render(&ex::fig08::rows_from(&campaign)),
    );

    section("Fig 9: throughput vs latency");
    emit_named(
        cli,
        "fig09",
        &ex::fig09::render(&ex::fig09::from_measurements(&campaign)),
    );

    section("Fig 12: mean bandwidth utilization per class and partition size");
    emit_named(
        cli,
        "fig12",
        &ex::fig12::render(&ex::fig12::aggregate(&campaign)),
    );

    section("Table 2: FPGA resources & dynamic power");
    emit_named(
        cli,
        "table2",
        &ex::table2::render(&ex::table2::run(&[8, 16, 32])),
    );

    section("Fig 13: dynamic power breakdown");
    emit_named(
        cli,
        "fig13",
        &ex::fig13::render(&ex::fig13::run(&[8, 16, 32])),
    );

    section("Fig 14: normalized six-metric summary");
    emit_named(
        cli,
        "fig14",
        &ex::fig14::render(&copernicus::normalized_summary(&campaign)),
    );

    section("Section 8 insights, verified against this campaign");
    emit_named(
        cli,
        "insights",
        &copernicus::insights::render(&copernicus::insights::verify(&campaign)),
    );

    eprintln!(
        "[repro_all] done in {:.2}s ({} jobs, {} memoized cells, {} resumed)",
        started.elapsed().as_secs_f64(),
        runner.jobs(),
        runner.cached_cells(),
        runner.resumed_cells(),
    );
    // One manifest covers the whole reproduction; the trace, metrics and
    // failure records accumulate across every figure above.
    telemetry.finish(manifest(cfg))
}

/// `ablation` — tables over the platform's design knobs: how σ, balance
/// and throughput respond to BRAM latency, memory bus width, ELL engine
/// width, BCSR block size, and partition sizes beyond the paper's 8/16/32.
fn ablation(cli: &Cli) -> i32 {
    fn run_table(
        title: &str,
        cli: &Cli,
        matrix: &Coo<f32>,
        configs: &[(String, HwConfig)],
        formats: &[FormatKind],
    ) {
        println!("\n=== {title} ===");
        let mut t = TextTable::new(&["variant", "format", "sigma", "balance", "throughput"]);
        for (label, hw) in configs {
            let mut session = Session::new(hw.clone()).expect("valid config");
            for &format in formats {
                let r = session
                    .run(RunRequest::matrix(matrix, format))
                    .expect("run")
                    .report;
                t.row(&[
                    label.clone(),
                    format.to_string(),
                    f3(r.sigma()),
                    f3(r.balance_ratio),
                    format!("{}B/s", eng(r.throughput_bytes_per_sec())),
                ]);
            }
        }
        emit(cli, &t.render());
    }

    fn base() -> HwConfig {
        let mut hw = HwConfig::with_partition_size(16);
        hw.verify_functional = false;
        hw
    }

    let dim = cli.cfg.sweep_dim.max(192);
    let random = Workload::Random {
        n: dim,
        density: 0.05,
    }
    .generate(0, cli.cfg.seed);
    let band = Workload::Band { n: dim, width: 16 }.generate(0, cli.cfg.seed);

    // BRAM read latency: CSR pays one offsets read per row, LIL one per
    // emitted row — both should track L_bram; COO barely moves.
    let configs: Vec<(String, HwConfig)> = [1u64, 2, 4]
        .iter()
        .map(|&l| {
            let mut hw = base();
            hw.bram_read_latency = l;
            (format!("L_bram={l}"), hw)
        })
        .collect();
    run_table(
        "BRAM read latency (random d=0.05)",
        cli,
        &random,
        &configs,
        &[FormatKind::Csr, FormatKind::Lil, FormatKind::Coo],
    );

    // Memory bus width: balance ratios scale inversely; compute-bound
    // formats barely change total time.
    let configs: Vec<(String, HwConfig)> = [4usize, 8, 16]
        .iter()
        .map(|&b| {
            let mut hw = base();
            hw.bus_bytes_per_cycle = b;
            (format!("bus={b}B/cyc"), hw)
        })
        .collect();
    run_table(
        "Memory bus width (random d=0.05)",
        cli,
        &random,
        &configs,
        &[FormatKind::Dense, FormatKind::Coo, FormatKind::Csc],
    );

    // ELL engine width: the paper fixes 6; narrower engines shorten the
    // adder tree (lower T_dot), wider ones deepen it.
    let configs: Vec<(String, HwConfig)> = [4usize, 6, 8, 12]
        .iter()
        .map(|&w| {
            let mut hw = base();
            hw.ell_hw_width = w;
            (format!("ell_w={w}"), hw)
        })
        .collect();
    run_table(
        "ELL engine width (band w=16)",
        cli,
        &band,
        &configs,
        &[FormatKind::Ell],
    );

    // BCSR block size: the paper fixes 4x4; bigger blocks transfer more
    // intra-block zeros but touch fewer offsets.
    let configs: Vec<(String, HwConfig)> = [2usize, 4, 8]
        .iter()
        .map(|&blk| {
            let mut hw = base();
            hw.bcsr_block = blk;
            (format!("block={blk}x{blk}"), hw)
        })
        .collect();
    run_table(
        "BCSR block size (random d=0.05)",
        cli,
        &random,
        &configs,
        &[FormatKind::Bcsr],
    );

    // Partition sizes beyond the paper.
    let configs: Vec<(String, HwConfig)> = [8usize, 16, 32, 64]
        .iter()
        .map(|&p| {
            let mut hw = base();
            hw.partition_size = p;
            (format!("p={p}"), hw)
        })
        .collect();
    run_table(
        "Partition size extrapolation (band w=16)",
        cli,
        &band,
        &configs,
        &[FormatKind::Dense, FormatKind::Ell, FormatKind::Dia],
    );
    0
}

/// `scaling` — coarse-grained parallelism sweep (§5.1: "Instances of this
/// architecture can be aggregated"): how each format scales when 1–16
/// compute instances share one memory channel — the quantified version of
/// §8's "the memory bandwidth is not always the bottleneck".
fn scaling(cli: &Cli) -> i32 {
    let dim = cli.cfg.sweep_dim.max(256);
    let matrix = Workload::Random {
        n: dim,
        density: 0.05,
    }
    .generate(0, cli.cfg.seed);
    let mut hw = HwConfig::with_partition_size(16);
    hw.verify_functional = false;

    let mut t = TextTable::new(&[
        "format",
        "lanes",
        "total_cycles",
        "speedup",
        "efficiency",
        "bound",
    ]);
    // Every (format, lanes) point is independent; fan the sweep out over
    // `--jobs` workers and collect rows back in sweep order. Sessions are
    // not shared across threads, so each point runs on its own.
    let points: Vec<(FormatKind, usize)> = FormatKind::CHARACTERIZED
        .into_iter()
        .flat_map(|format| [1usize, 2, 4, 8, 16].map(|lanes| (format, lanes)))
        .collect();
    let rows = copernicus::par_map_ordered(cli.jobs, &points, |_, &(format, lanes)| {
        let mut session = Session::new(hw.clone()).expect("valid config");
        let r = session
            .run(RunRequest::matrix(&matrix, format).with_lanes(lanes))
            .expect("run")
            .parallel
            .expect("a lanes request yields a parallel report");
        [
            format.to_string(),
            lanes.to_string(),
            r.total_cycles.to_string(),
            f3(r.speedup()),
            f3(r.efficiency()),
            if r.is_memory_bound() {
                "memory"
            } else {
                "compute"
            }
            .to_string(),
        ]
    });
    for row in &rows {
        t.row(row);
    }
    emit(cli, &t.render());
    0
}

/// `explain` — the per-format cost of processing one partition of a
/// workload in the §5.2 vocabulary: which cost term dominates and which
/// pipeline stage bounds the run.
fn explain(cli: &Cli) -> i32 {
    let dim = cli.cfg.sweep_dim.max(128);
    let matrix = Workload::Random {
        n: dim,
        density: 0.05,
    }
    .generate(0, cli.cfg.seed);
    let cfg = HwConfig::with_partition_size(16);
    let grid = PartitionGrid::new(&matrix, 16).expect("partitioning");

    // Pick the densest partition — the interesting one.
    let tile = grid
        .partitions()
        .iter()
        .max_by_key(|p| p.nnz())
        .expect("non-empty matrix")
        .coo
        .clone();
    println!(
        "densest 16x16 partition of a {dim}x{dim} random matrix (d=0.05): {} non-zeros, {} non-zero rows\n",
        tile.nnz(),
        tile.nonzero_rows()
    );
    for kind in FormatKind::CHARACTERIZED {
        let part = EncodedPartition::encode(&tile, kind, &cfg).expect("characterized format");
        println!("{}", copernicus_hls::explain(&part, &cfg).render());
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_commands_and_bad_flags_are_usage_errors() {
        assert_eq!(run("not_a_command", vec![]), 2);
        assert_eq!(run("table1", vec!["--what".to_string()]), 2);
        assert_eq!(run("perf", vec!["--what".to_string()]), 2);
        assert_eq!(run("perf", vec!["--iters".to_string(), "0".to_string()]), 2);
        assert_eq!(run("report", vec![]), 2);
        assert_eq!(run("report", vec!["--what".to_string()]), 2);
    }

    #[test]
    fn dashes_and_underscores_are_interchangeable() {
        // `repro-all` must resolve to the same driver as `repro_all`; an
        // unknown name stays unknown under both spellings.
        assert_eq!(run("partition-sweep", vec!["--what".to_string()]), 2);
        assert_eq!(run("no-such-thing", vec![]), 2);
    }

    #[test]
    fn command_list_covers_every_wrapper_binary() {
        for cmd in [
            "repro_all",
            "table1",
            "table2",
            "fig03",
            "fig04",
            "fig05",
            "fig06",
            "fig07",
            "fig08",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "partition_sweep",
            "compound",
            "backend_split",
            "ablation",
            "scaling",
            "explain",
            "perf",
            "report",
            "serve",
            "storm",
        ] {
            assert!(COMMANDS.contains(&cmd), "{cmd} missing from COMMANDS");
        }
    }
}
