//! Shared plumbing for the figure/table regeneration binaries.
//!
//! The binaries are thin wrappers: each one calls [`run`] with its command
//! name, and the multi-call `copernicus-bench` binary dispatches its first
//! argument through the same function — `copernicus-bench fig05 --tsv` and
//! `cargo run --bin fig05 -- --tsv` are identical. The drivers themselves
//! live in [`drivers`].
//!
//! Every command accepts the same flags:
//!
//! * `--paper` — paper-scale matrices (8000×8000 sweeps, 4096-row suite
//!   stand-ins). Default is the quick preset (seconds per figure).
//! * `--dim N` — override the sweep matrix dimension.
//! * `--suite-dim N` — override the suite stand-in dimension cap.
//! * `--seed N` — workload generation seed.
//! * `--codec NAME` — second-stage stream codec applied to every transfer
//!   stream (`none`, `rle`, `delta-varint`, `huffman`; default `none`).
//! * `--backend NAME` — hardware backend the encoded streams are costed on
//!   (`hls`, `cpu`, `hetero`; default `hls`, the paper's pipeline).
//! * `--tsv` — print tab-separated values instead of the aligned table.
//! * `--trace FILE` — write a Chrome trace-event JSON of every modeled
//!   pipeline run (open in Perfetto or `chrome://tracing`).
//! * `--manifest FILE` — write a reproducibility manifest (hardware
//!   config, seed, workloads, versions) as JSON.
//! * `--progress` — live progress heartbeat (cells done/total, rate, ETA,
//!   retries, failures) as an in-place stderr status line when stderr is a
//!   terminal. Silent under redirection unless `--force-progress` is given.
//! * `--force-progress` — emit the heartbeat as plain stderr lines even
//!   when stderr is not a terminal (CI logs).
//! * `--jobs N` — worker threads for the measurement grid (default: the
//!   machine's available parallelism). Output is byte-identical at every
//!   job count.
//! * `--tile-jobs N` — worker threads *inside* each modeled run, processing
//!   that run's partitions concurrently. Default: the leftover `--jobs`
//!   budget is split between grid cells and tiles automatically. Output is
//!   byte-identical at every setting.
//! * `--resume` — reload `<out>/checkpoint.jsonl` into the memo cache so an
//!   interrupted campaign continues from where it died (requires `--out`).
//!   Resumed runs emit byte-identical `measurements.json` and metrics TSVs.
//! * `--keep-going` — record failed grid cells (manifest +
//!   `measurements.json`) and keep measuring instead of aborting; the
//!   binary still exits nonzero with a failure summary.
//! * `--max-retries N` — retries granted to transient cell failures
//!   (panics, timeouts), with bounded deterministic backoff. Default 0.
//! * `--inject-faults SPEC` — deterministic fault harness for testing the
//!   recovery paths, e.g. `panic:cell=12,err:cell=40:count=2`.

use copernicus::{
    CampaignError, CampaignPolicy, CampaignRunner, CellFailure, ExperimentConfig, FaultPlan,
    Instruments,
};
use copernicus_telemetry::{
    ChromeTraceWriter, MetricsRegistry, PhaseProfiler, ProgressReporter, RunManifest, StderrMode,
};
use std::sync::Arc;

pub mod drivers;
pub mod perf;
pub mod report;
pub mod serve;
pub mod storm;

pub use drivers::{run, COMMANDS};

/// Parsed command line shared by all regeneration binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The experiment configuration assembled from the flags.
    pub cfg: ExperimentConfig,
    /// Emit TSV instead of aligned text.
    pub tsv: bool,
    /// Additionally render an ASCII chart of the figure.
    pub chart: bool,
    /// When set, also write each emitted artifact as TSV into this
    /// directory.
    pub out_dir: Option<std::path::PathBuf>,
    /// When set, write a Chrome trace of every pipeline run to this file.
    pub trace: Option<std::path::PathBuf>,
    /// When set, write the run manifest (JSON) to this file.
    pub manifest: Option<std::path::PathBuf>,
    /// Enable the live progress heartbeat on stderr (TTY-aware).
    pub progress: bool,
    /// Emit heartbeat lines even when stderr is not a terminal.
    pub force_progress: bool,
    /// Worker threads for the measurement grid.
    pub jobs: usize,
    /// Worker threads inside each modeled run (`None` = split the `--jobs`
    /// budget between cells and tiles automatically).
    pub tile_jobs: Option<usize>,
    /// Reload `<out>/checkpoint.jsonl` before running.
    pub resume: bool,
    /// Record failed cells and keep measuring instead of aborting.
    pub keep_going: bool,
    /// Retries granted to transient cell failures.
    pub max_retries: u32,
    /// Fault-injection spec (validated at parse time), for testing.
    pub inject_faults: Option<String>,
    /// Wall-clock deadline per cell attempt, in seconds (fractional
    /// allowed). Expiry fails the cell with `FailureKind::Timeout`.
    pub cell_timeout: Option<f64>,
}

impl Cli {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
        let mut cfg = ExperimentConfig::quick();
        let mut tsv = false;
        let mut chart = false;
        let mut out_dir = None;
        let mut trace = None;
        let mut manifest = None;
        let mut progress = false;
        let mut force_progress = false;
        let mut jobs = copernicus::default_jobs();
        let mut tile_jobs = None;
        let mut resume = false;
        let mut keep_going = false;
        let mut max_retries = 0u32;
        let mut inject_faults = None;
        let mut cell_timeout = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper" => cfg = ExperimentConfig::paper(),
                "--tsv" => tsv = true,
                "--chart" => chart = true,
                "--progress" => progress = true,
                "--force-progress" => force_progress = true,
                "--out" => {
                    let v = args.next().ok_or("--out needs a directory")?;
                    out_dir = Some(std::path::PathBuf::from(v));
                }
                "--trace" => {
                    let v = args.next().ok_or("--trace needs a file path")?;
                    trace = Some(std::path::PathBuf::from(v));
                }
                "--manifest" => {
                    let v = args.next().ok_or("--manifest needs a file path")?;
                    manifest = Some(std::path::PathBuf::from(v));
                }
                "--dim" => {
                    let v = args.next().ok_or("--dim needs a value")?;
                    cfg.sweep_dim = v.parse().map_err(|e| format!("bad --dim {v:?}: {e}"))?;
                }
                "--suite-dim" => {
                    let v = args.next().ok_or("--suite-dim needs a value")?;
                    cfg.suite_max_dim = v
                        .parse()
                        .map_err(|e| format!("bad --suite-dim {v:?}: {e}"))?;
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    cfg.seed = v.parse().map_err(|e| format!("bad --seed {v:?}: {e}"))?;
                }
                "--codec" => {
                    let v = args
                        .next()
                        .ok_or("--codec needs one of: none, rle, delta-varint, huffman")?;
                    cfg.hw.stream_codec =
                        v.parse().map_err(|e| format!("bad --codec {v:?}: {e}"))?;
                }
                "--backend" => {
                    let v = args
                        .next()
                        .ok_or("--backend needs one of: hls, cpu, hetero")?;
                    cfg.hw.backend = v.parse().map_err(|e| format!("bad --backend {v:?}: {e}"))?;
                }
                "--jobs" => {
                    let v = args.next().ok_or("--jobs needs a value")?;
                    jobs = v.parse().map_err(|e| format!("bad --jobs {v:?}: {e}"))?;
                    if jobs == 0 {
                        return Err("--jobs must be at least 1".to_string());
                    }
                }
                "--tile-jobs" => {
                    let v = args.next().ok_or("--tile-jobs needs a value")?;
                    let n: usize = v
                        .parse()
                        .map_err(|e| format!("bad --tile-jobs {v:?}: {e}"))?;
                    if n == 0 {
                        return Err("--tile-jobs must be at least 1".to_string());
                    }
                    tile_jobs = Some(n);
                }
                "--resume" => resume = true,
                "--keep-going" => keep_going = true,
                "--max-retries" => {
                    let v = args.next().ok_or("--max-retries needs a value")?;
                    max_retries = v
                        .parse()
                        .map_err(|e| format!("bad --max-retries {v:?}: {e}"))?;
                }
                "--inject-faults" => {
                    let v = args.next().ok_or(
                        "--inject-faults needs a spec like panic:cell=12,err:cell=40:count=2",
                    )?;
                    FaultPlan::parse(&v)?;
                    inject_faults = Some(v);
                }
                "--cell-timeout" => {
                    let v = args.next().ok_or("--cell-timeout needs seconds")?;
                    let secs: f64 = v
                        .parse()
                        .map_err(|e| format!("bad --cell-timeout {v:?}: {e}"))?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err("--cell-timeout must be a non-negative number".to_string());
                    }
                    cell_timeout = Some(secs);
                }
                other => {
                    return Err(format!(
                        "unknown flag {other:?}\nusage: [--paper] [--dim N] [--suite-dim N] [--seed N] [--codec none|rle|delta-varint|huffman] [--backend hls|cpu|hetero] [--jobs N] [--tile-jobs N] [--tsv] [--chart] [--out DIR] [--trace FILE] [--manifest FILE] [--progress] [--force-progress] [--resume] [--keep-going] [--max-retries N] [--inject-faults SPEC] [--cell-timeout SECS]"
                    ));
                }
            }
        }
        if resume && out_dir.is_none() {
            return Err(
                "--resume needs --out (the checkpoint lives under the output directory)"
                    .to_string(),
            );
        }
        Ok(Cli {
            cfg,
            tsv,
            chart,
            out_dir,
            trace,
            manifest,
            progress,
            force_progress,
            jobs,
            tile_jobs,
            resume,
            keep_going,
            max_retries,
            inject_faults,
            cell_timeout,
        })
    }

    /// A [`CampaignRunner`] honoring `--jobs` and the fault-tolerance
    /// flags, to share across every experiment a binary executes so
    /// overlapping grid cells are measured exactly once.
    ///
    /// With `--out` the runner checkpoints every freshly computed cell to
    /// `<out>/checkpoint.jsonl`; with `--resume` an existing checkpoint is
    /// reloaded first (otherwise a stale one is discarded so the file
    /// always describes the current run).
    pub fn runner(&self) -> CampaignRunner {
        let mut policy = CampaignPolicy {
            max_retries: self.max_retries,
            keep_going: self.keep_going,
            cell_timeout: self.cell_timeout.map(std::time::Duration::from_secs_f64),
            ..CampaignPolicy::default()
        };
        if let Some(spec) = &self.inject_faults {
            // Validated at parse time; an unparsable spec arms nothing.
            policy.faults = FaultPlan::parse(spec).ok();
        }
        let mut runner = CampaignRunner::new(self.jobs).with_policy(policy);
        if let Some(tiles) = self.tile_jobs {
            runner = runner.with_tile_jobs(tiles);
        }
        if let Some(dir) = &self.out_dir {
            let path = dir.join("checkpoint.jsonl");
            if self.resume {
                match runner.resume_from(&path) {
                    Ok(0) => {}
                    Ok(n) => eprintln!("resumed {n} cell(s) from {}", path.display()),
                    Err(e) => {
                        eprintln!("warning: could not read checkpoint {}: {e}", path.display())
                    }
                }
            } else {
                let _ = std::fs::remove_file(&path);
            }
            if let Err(e) =
                std::fs::create_dir_all(dir).and_then(|()| runner.attach_checkpoint(&path))
            {
                eprintln!("warning: could not open checkpoint {}: {e}", path.display());
            }
        }
        runner
    }

    /// The telemetry bundle requested by the flags; see [`Telemetry`].
    pub fn telemetry(&self) -> Telemetry {
        let stderr = StderrMode::auto(self.progress, self.force_progress);
        // The JSONL stream rides on `--out` alone: machine-readable progress
        // costs nothing and CI consumes it as an artifact.
        let jsonl = self.out_dir.as_ref().map(|dir| {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: could not create {}: {e}", dir.display());
            }
            dir.join("progress.jsonl")
        });
        let reporter = (stderr != StderrMode::Off || jsonl.is_some()).then(|| {
            ProgressReporter::new(
                stderr,
                jsonl.as_deref(),
                std::time::Duration::from_millis(250),
            )
        });
        Telemetry {
            trace_path: self.trace.clone(),
            manifest_path: self.manifest.clone(),
            out_dir: self.out_dir.clone(),
            writer: ChromeTraceWriter::new(),
            metrics: MetricsRegistry::new(),
            failures: Vec::new(),
            reporter,
            profiler: Arc::new(PhaseProfiler::new()),
        }
    }

    /// Parses the process arguments, exiting with the usage message on
    /// error.
    pub fn from_env() -> Cli {
        match Cli::parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_to_quick() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.cfg, ExperimentConfig::quick());
        assert!(!cli.tsv);
    }

    #[test]
    fn paper_flag_switches_preset() {
        let cli = parse(&["--paper"]).unwrap();
        assert_eq!(cli.cfg.sweep_dim, 8000);
    }

    #[test]
    fn overrides_apply_after_preset() {
        let cli = parse(&[
            "--paper", "--dim", "1000", "--seed", "7", "--tsv", "--chart",
        ])
        .unwrap();
        assert_eq!(cli.cfg.sweep_dim, 1000);
        assert_eq!(cli.cfg.seed, 7);
        assert!(cli.tsv);
        assert!(cli.chart);
    }

    #[test]
    fn rejects_unknown_and_malformed_flags() {
        assert!(parse(&["--what"]).is_err());
        assert!(parse(&["--dim"]).is_err());
        assert!(parse(&["--dim", "abc"]).is_err());
        assert!(parse(&["--out"]).is_err());
    }

    #[test]
    fn codec_flag_is_parsed_and_validated() {
        use copernicus_hls::CodecKind;
        assert_eq!(parse(&[]).unwrap().cfg.hw.stream_codec, CodecKind::None);
        for (name, kind) in [
            ("none", CodecKind::None),
            ("rle", CodecKind::Rle),
            ("delta-varint", CodecKind::DeltaVarint),
            ("huffman", CodecKind::Huffman),
        ] {
            let cli = parse(&["--codec", name]).unwrap();
            assert_eq!(cli.cfg.hw.stream_codec, kind, "{name}");
        }
        assert!(parse(&["--codec"]).is_err());
        assert!(parse(&["--codec", "lzma"]).is_err());
    }

    #[test]
    fn backend_flag_is_parsed_and_validated() {
        use copernicus_hls::BackendKind;
        assert_eq!(parse(&[]).unwrap().cfg.hw.backend, BackendKind::Hls);
        for (name, kind) in [
            ("hls", BackendKind::Hls),
            ("cpu", BackendKind::Cpu),
            ("hetero", BackendKind::Hetero),
        ] {
            let cli = parse(&["--backend", name]).unwrap();
            assert_eq!(cli.cfg.hw.backend, kind, "{name}");
        }
        assert!(parse(&["--backend"]).is_err());
        assert!(parse(&["--backend", "gpu"]).is_err());
    }

    #[test]
    fn out_dir_is_parsed() {
        let cli = parse(&["--out", "/tmp/x"]).unwrap();
        assert_eq!(cli.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    #[test]
    fn telemetry_flags_are_parsed() {
        let cli = parse(&[
            "--trace",
            "/tmp/t.json",
            "--manifest",
            "/tmp/m.json",
            "--progress",
        ])
        .unwrap();
        assert_eq!(
            cli.trace.as_deref(),
            Some(std::path::Path::new("/tmp/t.json"))
        );
        assert_eq!(
            cli.manifest.as_deref(),
            Some(std::path::Path::new("/tmp/m.json"))
        );
        assert!(cli.progress);
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--manifest"]).is_err());
    }

    #[test]
    fn jobs_flag_is_parsed_and_validated() {
        assert_eq!(parse(&[]).unwrap().jobs, copernicus::default_jobs());
        let cli = parse(&["--jobs", "4"]).unwrap();
        assert_eq!(cli.jobs, 4);
        assert_eq!(cli.runner().jobs(), 4);
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "abc"]).is_err());
    }

    #[test]
    fn tile_jobs_flag_is_parsed_and_validated() {
        assert_eq!(parse(&[]).unwrap().tile_jobs, None);
        let cli = parse(&["--tile-jobs", "4"]).unwrap();
        assert_eq!(cli.tile_jobs, Some(4));
        assert_eq!(cli.runner().tile_jobs(), Some(4));
        assert_eq!(parse(&[]).unwrap().runner().tile_jobs(), None);
        assert!(parse(&["--tile-jobs"]).is_err());
        assert!(parse(&["--tile-jobs", "0"]).is_err());
        assert!(parse(&["--tile-jobs", "x"]).is_err());
    }

    #[test]
    fn fault_tolerance_flags_are_parsed() {
        let cli = parse(&[
            "--out",
            "/tmp/x",
            "--resume",
            "--keep-going",
            "--max-retries",
            "3",
            "--inject-faults",
            "panic:cell=12,err:cell=40:count=2",
        ])
        .unwrap();
        assert!(cli.resume);
        assert!(cli.keep_going);
        assert_eq!(cli.max_retries, 3);
        assert_eq!(
            cli.inject_faults.as_deref(),
            Some("panic:cell=12,err:cell=40:count=2")
        );
        let runner = cli.runner();
        assert!(runner.policy().keep_going);
        assert_eq!(runner.policy().max_retries, 3);
        assert!(runner.policy().faults.is_some());
    }

    #[test]
    fn fault_tolerance_flags_default_off() {
        let cli = parse(&[]).unwrap();
        assert!(!cli.resume);
        assert!(!cli.keep_going);
        assert_eq!(cli.max_retries, 0);
        assert_eq!(cli.inject_faults, None);
    }

    #[test]
    fn resume_requires_out_and_fault_specs_are_validated() {
        assert!(parse(&["--resume"]).is_err());
        assert!(parse(&["--max-retries"]).is_err());
        assert!(parse(&["--max-retries", "x"]).is_err());
        assert!(parse(&["--inject-faults"]).is_err());
        assert!(parse(&["--inject-faults", "explode:cell=1"]).is_err());
    }

    #[test]
    fn telemetry_defaults_to_no_artifacts() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.trace, None);
        assert_eq!(cli.manifest, None);
        assert!(!cli.progress);
    }

    #[test]
    fn sink_is_attached_only_when_tracing() {
        let mut quiet = parse(&[]).unwrap().telemetry();
        let instruments = quiet.instruments();
        assert!(instruments.sink.is_none());
        assert!(instruments.metrics.is_some());

        let mut traced = parse(&["--trace", "/tmp/t.json"]).unwrap().telemetry();
        assert!(traced.instruments().sink.is_some());
    }
}

/// The observability artifacts a binary was asked to produce, bundled so
/// every driver wires them identically:
///
/// ```text
/// let cli = Cli::from_env();
/// let mut telemetry = cli.telemetry();
/// let table = fig05::run_with(&cli.cfg, &mut telemetry.instruments())?;
/// telemetry.finish(copernicus::manifest_for(..));
/// ```
///
/// [`Telemetry::finish`] writes the Chrome trace (`--trace`), the run
/// manifest (`--manifest`) and — when `--out` was given — the campaign
/// metrics as `metrics.tsv`, the wall-clock phase/worker profile as
/// `profile.json`, and the final `progress.jsonl` heartbeat line. I/O
/// failures are reported on stderr but never abort the run.
#[derive(Debug)]
pub struct Telemetry {
    trace_path: Option<std::path::PathBuf>,
    manifest_path: Option<std::path::PathBuf>,
    out_dir: Option<std::path::PathBuf>,
    /// The Chrome trace accumulated across every pipeline run.
    pub writer: ChromeTraceWriter,
    /// Campaign-level counters and histograms.
    pub metrics: MetricsRegistry,
    /// Failed grid cells accumulated across every step of the run.
    pub failures: Vec<CellFailure>,
    /// The live progress stream (stderr heartbeat and/or `progress.jsonl`),
    /// when any output is active.
    reporter: Option<ProgressReporter>,
    /// Wall-clock phase/worker profiler, shared with every campaign. Always
    /// armed: recording costs a few `Instant` reads per run, and keeping it
    /// on is what lets CI assert determinism *with* profiling enabled.
    profiler: Arc<PhaseProfiler>,
}

impl Telemetry {
    /// The instruments to thread through `run_with`/`characterize_with`.
    ///
    /// The trace sink is only attached when `--trace` was given, so an
    /// untraced run keeps the zero-cost no-op path through the platform.
    pub fn instruments(&mut self) -> Instruments<'_> {
        let mut instruments = Instruments::none()
            .with_metrics(&self.metrics)
            .with_profiler(Arc::clone(&self.profiler));
        if let Some(reporter) = &self.reporter {
            instruments = instruments.with_progress(reporter);
        }
        if self.trace_path.is_some() {
            instruments = instruments.with_sink(&mut self.writer);
        }
        instruments
    }

    /// The shared wall-clock profiler (for drivers that want to render it).
    pub fn profiler(&self) -> &Arc<PhaseProfiler> {
        &self.profiler
    }

    /// The live progress reporter, when one is active.
    pub fn progress(&self) -> Option<&ProgressReporter> {
        self.reporter.as_ref()
    }

    /// Absorbs the failed cells of one campaign step into the bundle so
    /// they reach the manifest and the end-of-run summary.
    pub fn record_failures(&mut self, failures: &[CellFailure]) {
        self.failures.extend_from_slice(failures);
    }

    /// Reports a failed step on stderr and absorbs its cell failures.
    pub fn record_error(&mut self, step: &str, err: &CampaignError) {
        eprintln!("error: {step}: {err}");
        self.record_failures(err.failures());
    }

    /// Writes every requested artifact and returns the process exit code:
    /// `0` on a fully successful run, `1` when any cell failed (after
    /// printing a failure summary table to stderr). Call once, after the
    /// last run.
    #[must_use = "the exit code carries the run's failure status"]
    pub fn finish(mut self, mut manifest: RunManifest) -> i32 {
        // Stop the heartbeat first: the final progress.jsonl line lands
        // before the other artifacts are written.
        if let Some(reporter) = &mut self.reporter {
            reporter.finish();
        }
        for f in &self.failures {
            manifest.failures.push(f.to_record());
        }
        if let Some(path) = &self.trace_path {
            if let Err(e) = self.writer.save(path) {
                eprintln!("warning: could not write trace {}: {e}", path.display());
            }
        }
        if let Some(path) = &self.manifest_path {
            if let Err(e) = manifest.save(path) {
                eprintln!("warning: could not write manifest {}: {e}", path.display());
            }
        }
        if let Some(dir) = &self.out_dir {
            if !self.metrics.counter_names().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                    copernicus_telemetry::atomic_write(
                        &dir.join("metrics.tsv"),
                        self.metrics.to_tsv(),
                    )
                }) {
                    eprintln!("warning: could not write metrics.tsv: {e}");
                }
            }
            if self.profiler.has_data() {
                if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                    copernicus_telemetry::atomic_write(
                        &dir.join("profile.json"),
                        self.profiler.to_json(),
                    )
                }) {
                    eprintln!("warning: could not write profile.json: {e}");
                }
            }
        }
        if self.failures.is_empty() {
            0
        } else {
            eprintln!("\n{}", failure_summary(&self.failures));
            eprintln!("{} grid cell(s) failed", self.failures.len());
            1
        }
    }
}

/// Renders the end-of-run failure summary as an aligned table.
pub fn failure_summary(failures: &[CellFailure]) -> String {
    let mut t = copernicus::table::TextTable::new(&[
        "cell", "workload", "p", "format", "kind", "retries", "message",
    ]);
    for f in failures {
        t.row(&[
            f.cell.to_string(),
            f.workload.clone(),
            f.partition_size.to_string(),
            f.format.to_string(),
            f.kind.to_string(),
            f.retries.to_string(),
            f.message.clone(),
        ]);
    }
    t.render()
}

/// [`Telemetry::finish`] + process exit, for the tail of a binary's `main`.
pub fn finish_and_exit(telemetry: Telemetry, manifest: RunManifest) -> ! {
    std::process::exit(telemetry.finish(manifest))
}

/// Converts an aligned table produced by the figure drivers into TSV:
/// drops the header rule and collapses the 2+-space column gaps into tabs.
pub fn to_tsv(aligned: &str) -> String {
    let mut out = String::new();
    for (i, line) in aligned.lines().enumerate() {
        if i == 1 && line.chars().all(|c| c == '-') {
            continue;
        }
        let mut cells: Vec<&str> = Vec::new();
        let mut rest = line.trim_end();
        while let Some(pos) = rest.find("  ") {
            cells.push(rest[..pos].trim_end());
            rest = rest[pos..].trim_start();
        }
        if !rest.is_empty() {
            cells.push(rest);
        }
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out
}

/// Prints a driver's output honoring the `--tsv` flag.
pub fn emit(cli: &Cli, aligned: &str) {
    if cli.tsv {
        print!("{}", to_tsv(aligned));
    } else {
        print!("{aligned}");
    }
}

/// Like [`emit`], additionally writing the TSV form to
/// `<out_dir>/<name>.tsv` when `--out` was given. I/O failures are
/// reported on stderr but do not abort the run — the console output is the
/// primary artifact.
pub fn emit_named(cli: &Cli, name: &str, aligned: &str) {
    emit(cli, aligned);
    if let Some(dir) = &cli.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
            copernicus_telemetry::atomic_write(&dir.join(format!("{name}.tsv")), to_tsv(aligned))
        }) {
            eprintln!("warning: could not write {name}.tsv: {e}");
        }
    }
}

#[cfg(test)]
mod tsv_tests {
    use super::*;

    #[test]
    fn to_tsv_drops_rule_and_tabs_columns() {
        let aligned = "a    b\n------\n1    2\n";
        assert_eq!(to_tsv(aligned), "a\tb\n1\t2\n");
    }

    #[test]
    fn to_tsv_keeps_single_spaces_inside_cells() {
        let aligned = "name          kind\n------------------\nFreescale2    Circuit Sim. Matrix\n";
        assert_eq!(
            to_tsv(aligned),
            "name\tkind\nFreescale2\tCircuit Sim. Matrix\n"
        );
    }
}
