//! End-to-end check of the observability artifacts: a real (tiny) campaign
//! driven through the [`Telemetry`](copernicus_bench::Telemetry) bundle must
//! leave a Chrome trace-event JSON file that parses, a manifest that round
//! trips, and a metrics TSV — exactly what `fig05 --trace ... --manifest ...
//! --out ...` writes.

use copernicus::{characterize_with, manifest_for, ExperimentConfig};
use copernicus_bench::Cli;
use copernicus_telemetry::RunManifest;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

fn scratch_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "copernicus-bench-telemetry-{}-{test}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_tiny_campaign(dir: &std::path::Path) -> usize {
    let trace = dir.join("trace.json");
    let manifest = dir.join("manifest.json");
    let args = [
        "--trace",
        trace.to_str().unwrap(),
        "--manifest",
        manifest.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ];
    let cli = Cli::parse(args.iter().map(|s| s.to_string())).unwrap();
    let mut telemetry = cli.telemetry();

    let cfg = ExperimentConfig::quick();
    let workloads = [Workload::Random {
        n: 64,
        density: 0.08,
    }];
    let formats = [FormatKind::Csr, FormatKind::Coo];
    let ms = characterize_with(
        &workloads,
        &formats,
        &[16],
        &cfg,
        &mut telemetry.instruments(),
    )
    .expect("campaign runs");
    let code = telemetry.finish(manifest_for(&cfg, &workloads, &formats, &[16]));
    assert_eq!(code, 0, "a clean campaign must exit 0");
    ms.len()
}

#[test]
fn emitted_trace_is_valid_chrome_trace_json() {
    let dir = scratch_dir("trace");
    let runs = run_tiny_campaign(&dir);

    let text = std::fs::read_to_string(dir.join("trace.json")).expect("trace file exists");
    let doc = serde::json::parse(&text).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_seq())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut spans = 0;
    for e in events {
        // Every entry is a trace event with the mandatory fields.
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph field");
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph:?}");
        assert!(e.get("pid").and_then(|v| v.as_u64()).is_some());
        assert!(e.get("tid").and_then(|v| v.as_u64()).is_some());
        if ph == "X" {
            spans += 1;
            assert!(e.get("ts").and_then(|v| v.as_u64()).is_some());
            assert!(e.get("dur").and_then(|v| v.as_u64()).is_some());
        }
    }
    // Four stage spans (mem, compute, decompress, write-back) per partition,
    // and a 64x64 matrix at p=16 has 16 partitions per run.
    assert_eq!(spans, runs * 16 * 4);
}

#[test]
fn emitted_manifest_round_trips_and_metrics_tsv_is_written() {
    let dir = scratch_dir("manifest");
    let runs = run_tiny_campaign(&dir);

    let text = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest file exists");
    let manifest = RunManifest::from_json(&text).expect("manifest parses");
    assert_eq!(manifest.seed, ExperimentConfig::quick().seed);
    assert_eq!(manifest.formats, vec!["CSR".to_string(), "COO".to_string()]);
    assert_eq!(manifest.partition_sizes, vec![16]);

    let tsv = std::fs::read_to_string(dir.join("metrics.tsv")).expect("metrics.tsv exists");
    let header = tsv.lines().next().expect("header line");
    assert!(header.starts_with("metric\tkind"));
    assert!(tsv.contains(&format!("runs\tcounter\t{runs}")));
}
