//! End-to-end observability contract at the CLI layer: `progress.jsonl`
//! is valid JSON with a monotone cells-done stream (even across fault
//! retries and checkpoint resume), `profile.json` carries nonzero phase
//! data, and none of the wall-clock artifacts leak into the deterministic
//! ones.

use copernicus::{CampaignError, ExperimentConfig, Measurement};
use copernicus_bench::Cli;
use copernicus_workloads::Workload;
use serde::Value;
use sparsemat::FormatKind;

const FORMATS: [FormatKind; 3] = [FormatKind::Csr, FormatKind::Coo, FormatKind::Dia];
const SIZES: [usize; 2] = [8, 16];

fn grid_workloads() -> Vec<Workload> {
    vec![
        Workload::Random {
            n: 48,
            density: 0.05,
        },
        Workload::Band { n: 48, width: 4 },
    ]
}

fn grid_total() -> u64 {
    (grid_workloads().len() * SIZES.len() * FORMATS.len()) as u64
}

fn scratch_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "copernicus-bench-obs-{}-{test}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn cli(args: &[&str]) -> Cli {
    Cli::parse(args.iter().map(|s| (*s).to_string())).expect("flags parse")
}

/// Runs the full grid through a `Cli`-configured runner and finishes the
/// telemetry bundle (which seals `progress.jsonl` and writes
/// `profile.json`). Returns the measurements.
fn run_to_completion(cli: &Cli) -> Vec<Measurement> {
    let cfg = ExperimentConfig::quick();
    let runner = cli.runner();
    let mut telemetry = cli.telemetry();
    let ms = runner
        .characterize_with(
            &grid_workloads(),
            &FORMATS,
            &SIZES,
            &cfg,
            &mut telemetry.instruments(),
        )
        .expect("campaign completes");
    let code = telemetry.finish(copernicus::manifest_for(
        &cfg,
        &grid_workloads(),
        &FORMATS,
        &SIZES,
    ));
    assert_eq!(code, 0);
    ms
}

/// Parses every `progress.jsonl` line as JSON and checks the stream
/// invariants: `done` is monotone non-decreasing, never exceeds `total`,
/// and exactly the last line is marked `final`.
fn check_stream(path: &std::path::Path) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("progress.jsonl exists");
    let lines: Vec<Value> = text
        .lines()
        .map(|l| serde::json::parse(l).unwrap_or_else(|e| panic!("invalid JSON line {l:?}: {e:?}")))
        .collect();
    assert!(!lines.is_empty(), "progress stream must not be empty");
    let mut prev_done = 0u64;
    for (i, line) in lines.iter().enumerate() {
        let done = line.get("done").and_then(Value::as_u64).expect("done");
        let total = line.get("total").and_then(Value::as_u64).expect("total");
        assert!(
            done >= prev_done,
            "cells-done went backwards at line {i}: {done} < {prev_done}"
        );
        assert!(done <= total, "done {done} exceeds total {total}");
        let is_last = i + 1 == lines.len();
        assert_eq!(
            line.get("final"),
            Some(&Value::Bool(is_last)),
            "only the last line may be final (line {i})"
        );
        for key in ["cached", "retries", "failures", "elapsed_secs"] {
            assert!(line.get(key).is_some(), "line {i} missing {key:?}");
        }
        prev_done = done;
    }
    lines
}

#[test]
fn progress_stream_is_monotone_across_fault_retries() {
    let dir = scratch_dir("retries");
    let cli = cli(&[
        "--jobs",
        "2",
        "--out",
        dir.to_str().unwrap(),
        "--max-retries",
        "2",
        "--inject-faults",
        "err:cell=3:count=2",
    ]);
    run_to_completion(&cli);

    let lines = check_stream(&dir.join("progress.jsonl"));
    let last = lines.last().expect("non-empty");
    assert_eq!(last.get("done").and_then(Value::as_u64), Some(grid_total()));
    assert_eq!(
        last.get("retries").and_then(Value::as_u64),
        Some(2),
        "both injected faults must surface as retries: {last:?}"
    );
    assert_eq!(last.get("failures").and_then(Value::as_u64), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_stream_restarts_cleanly_on_resume() {
    let dir = scratch_dir("resume");
    let dir_s = dir.to_str().unwrap();

    // Interrupted run: the injected panic aborts mid-grid. Its progress
    // stream ends without a final line being the last word on the run —
    // the reporter still seals the file when the telemetry bundle drops.
    let interrupted = cli(&[
        "--jobs",
        "2",
        "--out",
        dir_s,
        "--inject-faults",
        "panic:cell=7",
    ]);
    let cfg = ExperimentConfig::quick();
    let runner = interrupted.runner();
    let mut telemetry = interrupted.telemetry();
    let err = runner.characterize_with(
        &grid_workloads(),
        &FORMATS,
        &SIZES,
        &cfg,
        &mut telemetry.instruments(),
    );
    assert!(matches!(err, Err(CampaignError::Cells { .. })));
    drop(telemetry);
    let lines = check_stream(&dir.join("progress.jsonl"));
    let interrupted_done = lines
        .last()
        .and_then(|l| l.get("done"))
        .and_then(Value::as_u64)
        .expect("done");
    assert!(interrupted_done < grid_total());
    let checkpointed = std::fs::read_to_string(dir.join("checkpoint.jsonl"))
        .expect("checkpoint written")
        .lines()
        .count() as u64;

    // Resumed run: a fresh reporter truncates the stream, completed cells
    // re-tick instantly as cache hits, and the file is again monotone
    // from zero to a final full-grid line.
    let resume = cli(&["--jobs", "2", "--out", dir_s, "--resume"]);
    run_to_completion(&resume);
    let lines = check_stream(&dir.join("progress.jsonl"));
    let last = lines.last().expect("non-empty");
    assert_eq!(last.get("done").and_then(Value::as_u64), Some(grid_total()));
    assert_eq!(
        last.get("cached").and_then(Value::as_u64),
        Some(checkpointed),
        "resume must replay every checkpointed cell from cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_json_captures_phases_and_workers_without_touching_determinism() {
    let dir1 = scratch_dir("profile-j1");
    let dir4 = scratch_dir("profile-j4");
    let j1 = cli(&["--jobs", "1", "--out", dir1.to_str().unwrap()]);
    let j4 = cli(&["--jobs", "4", "--out", dir4.to_str().unwrap()]);
    let ms1 = run_to_completion(&j1);
    let ms4 = run_to_completion(&j4);
    assert_eq!(ms1, ms4, "worker count must not change the measurements");

    // The deterministic artifacts are byte-identical with profiling on...
    let a = std::fs::read(dir1.join("metrics.tsv")).expect("metrics.tsv");
    let b = std::fs::read(dir4.join("metrics.tsv")).expect("metrics.tsv");
    assert_eq!(a, b, "metrics.tsv diverged between --jobs 1 and --jobs 4");

    // ...while the wall-clock profile carries real data on both sides.
    for (dir, jobs) in [(&dir1, 1u64), (&dir4, 4u64)] {
        let profile: Value = serde::json::parse(
            &std::fs::read_to_string(dir.join("profile.json")).expect("profile"),
        )
        .expect("profile parses");
        let phases = profile
            .get("phases")
            .and_then(Value::as_map)
            .expect("phases");
        for phase in ["encode", "compute", "cache_lookup"] {
            let count = phases
                .iter()
                .find(|(name, _)| name == phase)
                .and_then(|(_, h)| h.get("count"))
                .and_then(Value::as_u64)
                .unwrap_or(0);
            assert!(count > 0, "--jobs {jobs}: phase {phase:?} has no samples");
        }
        let workers = profile
            .get("workers")
            .and_then(Value::as_seq)
            .expect("workers");
        assert_eq!(workers.len(), jobs as usize);
        let cells: u64 = workers
            .iter()
            .map(|w| w.get("cells").and_then(Value::as_u64).unwrap_or(0))
            .sum();
        assert_eq!(cells, grid_total(), "--jobs {jobs}: worker cell accounting");
    }
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}
