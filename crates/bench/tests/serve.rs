//! Integration tests for the characterization daemon and its load
//! generator, run against the real `copernicus-bench` binary over real
//! sockets.
//!
//! The headline invariant — **zero accepted-but-lost requests** — is
//! exercised twice: once through a graceful drain with work in flight
//! (every admitted request is answered before exit 0), and once through
//! `storm --chaos`, which SIGKILLs the daemon mid-storm, restarts it on
//! the same spool, and audits every request id to a terminal state.

use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_copernicus-bench");

/// A serve daemon child on an ephemeral port.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(extra: &[&str]) -> Server {
        let mut child = Command::new(BIN)
            .arg("serve")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn serve");
        let stdout = child.stdout.take().expect("stdout pipe");
        let mut reader = BufReader::new(stdout);
        let mut banner = String::new();
        reader.read_line(&mut banner).expect("read banner");
        let addr = banner
            .trim()
            .rsplit("http://")
            .next()
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        Server { child, addr }
    }

    fn wait_for_exit(&mut self, timeout: Duration) -> Option<i32> {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Ok(Some(status)) = self.child.try_wait() {
                return status.code();
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        None
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One-shot HTTP exchange; returns (status, headers, body).
#[allow(clippy::type_complexity)]
fn http(
    addr: &str,
    method: &str,
    target: &str,
    body: &str,
) -> Result<(u16, Vec<(String, String)>, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("write: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("status: {e}"))?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {line:?}"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().unwrap_or(0);
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    Ok((status, headers, String::from_utf8_lossy(&body).into_owned()))
}

fn spec(id: &str, n: u64) -> String {
    format!(r#"{{"id": "{id}", "workload": {{"kind": "random", "n": {n}, "density": 0.1}}}}"#)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "copernicus-serve-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn round_trip_status_endpoints_and_idempotent_replay() {
    let spool = tmp_dir("roundtrip");
    let spool_arg = spool.display().to_string();
    let mut server = Server::spawn(&["--spool", &spool_arg]);

    let (status, _, body) = http(&server.addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200, "{body}");
    let (status, _, _) = http(&server.addr, "GET", "/readyz", "").expect("readyz");
    assert_eq!(status, 200);

    let (status, headers, body) =
        http(&server.addr, "POST", "/characterize", &spec("rt-1", 24)).expect("characterize");
    assert_eq!(status, 200, "{body}");
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "x-request-id" && v == "rt-1"),
        "response must echo the request id: {headers:?}"
    );
    let doc: Value = serde::json::from_str(&body).expect("result is JSON");
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(doc.get("cells").and_then(Value::as_u64), Some(1));
    let first = body.clone();

    // The spool holds journal + durable result + checkpoint.
    for artifact in ["request.json", "result.json", "checkpoint.jsonl"] {
        assert!(
            spool.join("rt-1").join(artifact).exists(),
            "missing spool artifact {artifact}"
        );
    }

    // Lookup and idempotent replay both return the stored answer.
    let (status, _, looked_up) = http(&server.addr, "GET", "/requests/rt-1", "").expect("lookup");
    assert_eq!(status, 200);
    assert_eq!(looked_up, first);
    let (status, _, replayed) =
        http(&server.addr, "POST", "/characterize", &spec("rt-1", 24)).expect("replay");
    assert_eq!(status, 200);
    assert_eq!(
        replayed, first,
        "a replayed id must not re-run the campaign"
    );

    let (status, _, _) = http(&server.addr, "GET", "/requests/rt-404", "").expect("lookup");
    assert_eq!(status, 404);

    let (status, _, stats) = http(&server.addr, "GET", "/stats", "").expect("stats");
    assert_eq!(status, 200);
    let doc: Value = serde::json::from_str(&stats).expect("stats JSON");
    assert_eq!(doc.get("completed").and_then(Value::as_u64), Some(1));

    // Malformed and oversized bodies come back typed, and the daemon
    // survives them. A body that is not JSON at all is 400; well-formed
    // JSON with invalid content (unknown field, bad override) is 422.
    let (status, _, _) = http(&server.addr, "POST", "/characterize", "not json").expect("bad");
    assert_eq!(status, 400);
    let (status, _, body) = http(
        &server.addr,
        "POST",
        "/characterize",
        r#"{"workload": {"kind": "random", "n": 24, "density": 0.1}, "partion_sizes": [8]}"#,
    )
    .expect("typo");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("partion_sizes"), "{body}");
    let (status, _, body) = http(
        &server.addr,
        "POST",
        "/characterize",
        r#"{"workload": {"kind": "random", "n": 24, "density": 0.1}, "backend": "gpu"}"#,
    )
    .expect("bad backend");
    assert_eq!(status, 422, "{body}");
    let (status, _, _) = http(&server.addr, "GET", "/nope", "").expect("404");
    assert_eq!(status, 404);

    let (status, _, _) = http(&server.addr, "POST", "/admin/drain", "").expect("drain");
    assert_eq!(status, 200);
    assert_eq!(server.wait_for_exit(Duration::from_secs(30)), Some(0));
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn per_request_backend_override_changes_the_model() {
    let mut server = Server::spawn(&[]);
    let body = |backend: &str| {
        format!(
            r#"{{"workload": {{"kind": "random", "n": 24, "density": 0.1}}, "partition_sizes": [8]{backend}}}"#
        )
    };
    let cycles = |result: &str| {
        let doc: Value = serde::json::from_str(result).expect("result JSON");
        doc.get("measurements")
            .and_then(Value::as_seq)
            .and_then(|ms| ms.first())
            .and_then(|m| m.get("report"))
            .and_then(|r| r.get("total_cycles"))
            .and_then(Value::as_u64)
            .expect("total_cycles")
    };
    let (status, _, hls) =
        http(&server.addr, "POST", "/characterize", &body("")).expect("default backend");
    assert_eq!(status, 200, "{hls}");
    let (status, _, cpu) = http(
        &server.addr,
        "POST",
        "/characterize",
        &body(r#", "backend": "cpu""#),
    )
    .expect("cpu backend");
    assert_eq!(status, 200, "{cpu}");
    assert_ne!(
        cycles(&hls),
        cycles(&cpu),
        "the cpu backend must model different cycle totals"
    );

    let (status, _, _) = http(&server.addr, "POST", "/admin/drain", "").expect("drain");
    assert_eq!(status, 200);
    assert_eq!(server.wait_for_exit(Duration::from_secs(30)), Some(0));
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    let mut server = Server::spawn(&["--workers", "1", "--queue", "1"]);
    let clients = 8;
    let mut handles = Vec::new();
    for i in 0..clients {
        let addr = server.addr.clone();
        handles.push(std::thread::spawn(move || {
            http(
                &addr,
                "POST",
                "/characterize",
                &spec(&format!("bp-{i}"), 32),
            )
        }));
    }
    let mut ok = 0;
    let mut shed = 0;
    for h in handles {
        let (status, headers, body) = h.join().expect("client").expect("exchange");
        match status {
            200 => ok += 1,
            429 => {
                shed += 1;
                assert!(
                    headers.iter().any(|(n, _)| n == "retry-after"),
                    "429 must carry Retry-After: {headers:?}"
                );
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    // 1 worker + queue depth 1: at most a handful admitted at once, the
    // rest shed. Both classes must be represented.
    assert!(ok >= 1, "no request got through");
    assert!(shed >= 1, "an 8-deep burst against queue=1 must shed");

    let (_, _, stats) = http(&server.addr, "GET", "/stats", "").expect("stats");
    let doc: Value = serde::json::from_str(&stats).expect("stats JSON");
    assert_eq!(
        doc.get("rejected_busy").and_then(Value::as_u64),
        Some(shed as u64)
    );
    assert!(doc.get("queue_high_watermark").and_then(Value::as_u64) >= Some(1));

    let (status, _, _) = http(&server.addr, "POST", "/admin/drain", "").expect("drain");
    assert_eq!(status, 200);
    assert_eq!(server.wait_for_exit(Duration::from_secs(30)), Some(0));
}

#[test]
fn drain_flips_readyz_refuses_work_and_answers_everything_admitted() {
    // One worker and a burst of jobs: the drain begins with work queued,
    // giving the 503 window something to be true about.
    let mut server = Server::spawn(&["--workers", "1", "--queue", "16"]);
    let jobs = 6;
    let mut handles = Vec::new();
    for i in 0..jobs {
        let addr = server.addr.clone();
        handles.push(std::thread::spawn(move || {
            http(
                &addr,
                "POST",
                "/characterize",
                &spec(&format!("dr-{i}"), 48),
            )
        }));
        // Make sure each lands before the drain request below.
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, _, _) = http(&server.addr, "POST", "/admin/drain", "").expect("drain");
    assert_eq!(status, 200);

    // The accept loop flips the draining flag on its next poll tick; from
    // then until exit, readyz must read 503 and admission must refuse.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_unready = false;
    while Instant::now() < deadline {
        match http(&server.addr, "GET", "/readyz", "") {
            Ok((503, _, _)) => {
                saw_unready = true;
                break;
            }
            Ok((200, _, _)) => std::thread::sleep(Duration::from_millis(2)),
            Ok((other, _, body)) => panic!("readyz answered {other}: {body}"),
            Err(_) => break, // already exited: too late to observe the flip
        }
    }
    if saw_unready {
        if let Ok((status, _, body)) =
            http(&server.addr, "POST", "/characterize", &spec("dr-late", 24))
        {
            assert_eq!(status, 503, "draining admission must refuse: {body}");
        }
    }

    // Drain contract: every admitted request is answered 200 before exit.
    let mut answered = 0;
    for h in handles {
        let (status, _, body) = h.join().expect("client").expect("exchange");
        assert_eq!(status, 200, "admitted request dropped during drain: {body}");
        answered += 1;
    }
    assert_eq!(answered, jobs);
    assert_eq!(
        server.wait_for_exit(Duration::from_secs(60)),
        Some(0),
        "drain must end in exit 0"
    );
    assert!(saw_unready, "readyz never flipped to 503 during the drain");
}

#[test]
fn storm_records_latency_for_at_least_two_concurrency_levels() {
    let dir = tmp_dir("storm");
    let out = dir.join("BENCH_serve.json");
    let status = Command::new(BIN)
        .args([
            "storm",
            "--levels",
            "1,3",
            "--requests",
            "2",
            "--out",
            out.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run storm");
    assert!(status.success(), "storm failed");
    let text = std::fs::read_to_string(&out).expect("BENCH_serve.json");
    let doc: Value = serde::json::from_str(&text).expect("bench JSON");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("bench_serve_v1")
    );
    let levels = doc.get("levels").and_then(Value::as_seq).expect("levels");
    assert!(levels.len() >= 2, "need >=2 concurrency levels");
    for level in levels {
        for key in ["p50_ms", "p99_ms", "req_per_s"] {
            let v = level.get(key).and_then(Value::as_f64).expect(key);
            assert!(v > 0.0, "{key} must be positive, got {v}");
        }
        assert!(level.get("ok").and_then(Value::as_u64).expect("ok") > 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_storm_loses_no_accepted_request_across_kill_and_restart() {
    let dir = tmp_dir("chaos");
    let out = dir.join("BENCH_chaos.json");
    let spool = dir.join("spool");
    let status = Command::new(BIN)
        .args([
            "storm",
            "--chaos",
            "--requests",
            "8",
            "--spool",
            spool.to_str().expect("utf8 path"),
            "--out",
            out.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run chaos storm");
    assert!(
        status.success(),
        "chaos storm must pass (zero lost, garbage rejected, clean exit)"
    );
    let text = std::fs::read_to_string(&out).expect("BENCH_chaos.json");
    let doc: Value = serde::json::from_str(&text).expect("bench JSON");
    let chaos = doc.get("chaos").expect("chaos section");
    assert_eq!(chaos.get("lost").and_then(Value::as_u64), Some(0));
    assert!(matches!(
        chaos.get("garbage_rejected"),
        Some(Value::Bool(true))
    ));
    assert!(matches!(chaos.get("clean_exit"), Some(Value::Bool(true))));
    // Accounting closes: answered + never_accepted == sent.
    let sent = chaos.get("sent").and_then(Value::as_u64).expect("sent");
    let answered = chaos
        .get("answered_total")
        .and_then(Value::as_u64)
        .expect("answered");
    let never = chaos
        .get("never_accepted")
        .and_then(Value::as_u64)
        .expect("never_accepted");
    assert_eq!(answered + never, sent);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_daemon_resumes_spooled_work_from_its_checkpoint() {
    // Direct (non-storm) recovery check: journal a request by hand, start
    // the daemon on that spool, and the recovered job must complete with a
    // durable result even though no client is attached.
    let spool = tmp_dir("recover");
    let dir = spool.join("rec-1");
    std::fs::create_dir_all(&dir).expect("spool dir");
    std::fs::write(dir.join("request.json"), spec("rec-1", 24)).expect("journal");

    let spool_arg = spool.display().to_string();
    let mut server = Server::spawn(&["--spool", &spool_arg]);
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut done = false;
    while Instant::now() < deadline {
        let (status, _, _) = http(&server.addr, "GET", "/requests/rec-1", "").expect("lookup");
        match status {
            200 => {
                done = true;
                break;
            }
            202 => std::thread::sleep(Duration::from_millis(50)),
            other => panic!("recovery lookup answered {other}"),
        }
    }
    assert!(done, "recovered request never reached a result");
    assert!(dir.join("result.json").exists());

    let (status, _, _) = http(&server.addr, "POST", "/admin/drain", "").expect("drain");
    assert_eq!(status, 200);
    assert_eq!(server.wait_for_exit(Duration::from_secs(30)), Some(0));
    let _ = std::fs::remove_dir_all(&spool);
}
