//! Fixed-seed fuzz suite for the serve HTTP parser.
//!
//! The parser sits on a public TCP port, so every byte sequence a peer can
//! send must come back as a **typed** [`ProtocolError`] — never a panic,
//! never an unbounded allocation. The corpus here is deterministic (a
//! seeded LCG, no time- or platform-dependence) so a failure always
//! reproduces: truncated headers, oversized request lines and bodies,
//! garbage bytes, flipped bits in valid requests, and premature closes at
//! every prefix length.

use copernicus_bench::serve::protocol::{parse_request, Limits, ProtocolError};
use copernicus_bench::serve::scheduler::RequestSpec;

/// Deterministic byte stream (same LCG family the workloads crate uses).
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn byte(&mut self) -> u8 {
        (self.next_u64() >> 33) as u8
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

fn parse(bytes: &[u8]) -> Result<(), ProtocolError> {
    let limits = Limits::default();
    let mut reader = bytes;
    parse_request(&mut reader, &limits).map(|_| ())
}

/// A valid request to mutate.
const VALID: &[u8] =
    b"POST /characterize HTTP/1.1\r\nHost: fuzz\r\nContent-Length: 17\r\n\r\n{\"workload\": 1.0}";

#[test]
fn pure_garbage_never_panics() {
    let mut rng = Lcg(0xC0DEC0DE);
    for round in 0..500 {
        let len = rng.below(2048);
        let bytes: Vec<u8> = (0..len).map(|_| rng.byte()).collect();
        // Any outcome is fine except a panic; a successful parse of pure
        // garbage would also be suspicious enough to fail on.
        if parse(&bytes).is_ok() {
            panic!("round {round}: {len} random bytes parsed as a valid request");
        }
    }
}

#[test]
fn every_truncation_of_a_valid_request_is_typed() {
    for cut in 0..VALID.len() {
        let err = parse(&VALID[..cut]).expect_err("truncated request must not parse");
        match err {
            ProtocolError::ConnectionClosed
            | ProtocolError::Truncated(_)
            | ProtocolError::Malformed(_) => {}
            other => panic!("cut at {cut}: unexpected error class {other:?}"),
        }
    }
    // The full request parses — the truncation loop above is meaningful.
    parse(VALID).expect("the untruncated request is valid");
}

#[test]
fn single_byte_mutations_never_panic() {
    let mut rng = Lcg(0xBADF00D);
    for _ in 0..2000 {
        let mut bytes = VALID.to_vec();
        let pos = rng.below(bytes.len());
        bytes[pos] = rng.byte();
        // Mutating the body (or a header value char-for-char) can stay
        // valid; everything else must fail with a typed error. Either way
        // the call returns.
        let _ = parse(&bytes);
    }
}

#[test]
fn random_splices_into_valid_requests_never_panic() {
    let mut rng = Lcg(0x5EED);
    for _ in 0..1000 {
        let mut bytes = VALID.to_vec();
        let at = rng.below(bytes.len());
        let insert_len = rng.below(64);
        let splice: Vec<u8> = (0..insert_len).map(|_| rng.byte()).collect();
        bytes.splice(at..at, splice);
        let _ = parse(&bytes);
    }
}

#[test]
fn oversized_request_line_is_too_large_not_oom() {
    let mut bytes = b"GET /".to_vec();
    bytes.extend(std::iter::repeat_n(b'a', 1 << 20));
    bytes.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    match parse(&bytes) {
        Err(ProtocolError::TooLarge(_)) => {}
        other => panic!("megabyte request line: expected TooLarge, got {other:?}"),
    }
}

#[test]
fn oversized_declared_body_is_rejected_before_reading_it() {
    // Only the headers are supplied: the parser must reject on the
    // declared length without waiting for (or allocating) the body.
    let bytes = b"POST /characterize HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
    match parse(bytes) {
        Err(ProtocolError::TooLarge(_)) => {}
        other => panic!("declared 1GB body: expected TooLarge, got {other:?}"),
    }
}

#[test]
fn header_flood_is_bounded() {
    let mut bytes = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..10_000 {
        bytes.extend_from_slice(format!("x-h{i}: v\r\n").as_bytes());
    }
    bytes.extend_from_slice(b"\r\n");
    match parse(&bytes) {
        Err(ProtocolError::TooLarge(_)) => {}
        other => panic!("10k headers: expected TooLarge, got {other:?}"),
    }
}

#[test]
fn binary_preambles_before_a_valid_request_fail_typed() {
    let mut rng = Lcg(0xFEED);
    for _ in 0..200 {
        let len = 1 + rng.below(16);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.byte()).collect();
        bytes.extend_from_slice(VALID);
        match parse(&bytes) {
            // Depending on where the garbage lands the request line is
            // malformed, truncated mid-line, or (for newline bytes) an
            // empty/invalid method — all typed, none panic.
            Err(_) => {}
            Ok(()) if bytes[0] == b'P' => {} // LCG emitted 'P'; still valid
            Ok(()) => panic!("garbage preamble parsed cleanly"),
        }
    }
}

#[test]
fn error_variants_map_to_the_documented_statuses() {
    // The connection handler answers with `ProtocolError::status()`; pin
    // the mapping the fuzz classes rely on.
    assert_eq!(
        parse(b"\x00\xff\r\n\r\n").expect_err("garbage").status(),
        Some((400, "Bad Request"))
    );
    assert_eq!(
        parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
            .expect_err("oversized")
            .status(),
        Some((413, "Payload Too Large"))
    );
    assert_eq!(
        parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .expect_err("chunked")
            .status(),
        Some((411, "Length Required"))
    );
    assert_eq!(
        parse(b"").expect_err("clean EOF").status(),
        None,
        "a clean close gets no response, just a hangup"
    );
    // Body-level classification, one layer up: non-JSON is malformed
    // (400), valid JSON with bad content is unprocessable (422).
    assert_eq!(
        RequestSpec::parse(b"\xffnot json")
            .expect_err("garbage body")
            .status(),
        Some((400, "Bad Request"))
    );
    assert_eq!(
        RequestSpec::parse(br#"{"surprise_field": 1}"#)
            .expect_err("unknown field")
            .status(),
        Some((422, "Unprocessable Entity"))
    );
}

#[test]
fn spec_parser_never_panics_on_garbage_or_mutated_json() {
    let mut rng = Lcg(0xABAD1DEA);
    // Pure garbage bodies.
    for _ in 0..500 {
        let len = rng.below(512);
        let bytes: Vec<u8> = (0..len).map(|_| rng.byte()).collect();
        let _ = RequestSpec::parse(&bytes);
    }
    // Single-byte mutations of a fully valid spec (override fields
    // included): every outcome must be a typed error or a valid spec.
    let valid = br#"{"workload": {"kind": "random", "n": 48, "density": 0.1}, "formats": ["CSR"], "partition_sizes": [8], "backend": "cpu", "hw": {"cpu_simd_width": 8}}"#;
    RequestSpec::parse(valid).expect("the unmutated spec is valid");
    for _ in 0..2000 {
        let mut bytes = valid.to_vec();
        let pos = rng.below(bytes.len());
        bytes[pos] = rng.byte();
        let _ = RequestSpec::parse(&bytes);
    }
    // Unknown fields sprinkled at the top level always classify as 422.
    for i in 0..50 {
        let body =
            format!(r#"{{"workload": {{"kind": "band", "n": 32, "width": 3}}, "fuzz_{i}": {i}}}"#);
        let err = RequestSpec::parse(body.as_bytes()).expect_err("unknown field");
        assert_eq!(err.status(), Some((422, "Unprocessable Entity")), "{err}");
    }
}
