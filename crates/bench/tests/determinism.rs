//! The CLI-level determinism contract behind `--jobs`: the artifacts a
//! binary emits (measurement JSON, metrics TSV) are byte-identical at any
//! worker count, including when overlapping campaigns share one runner's
//! memoization cache.

use copernicus::{ExperimentConfig, Measurement};
use copernicus_bench::Cli;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

const FORMATS: [FormatKind; 3] = [FormatKind::Csr, FormatKind::Coo, FormatKind::Dia];
const SIZES: [usize; 2] = [8, 16];

fn grid_workloads() -> Vec<Workload> {
    vec![
        Workload::Random {
            n: 48,
            density: 0.05,
        },
        Workload::Band { n: 48, width: 4 },
        Workload::Random {
            n: 64,
            density: 0.02,
        },
    ]
}

fn measurement_bytes(ms: &[Measurement]) -> String {
    serde::json::to_string_pretty(&serde::Serialize::serialize(&ms.to_vec()))
}

/// Runs the grid through the `Cli`-configured runner at `jobs` workers and
/// returns the two emitted artifacts: measurement JSON and metrics TSV.
fn artifacts_at(jobs: usize) -> (String, String) {
    let cli = Cli::parse(["--jobs".to_string(), jobs.to_string()]).unwrap();
    let cfg = ExperimentConfig::quick();
    let runner = cli.runner();
    let mut telemetry = cli.telemetry();
    let ms = runner
        .characterize_with(
            &grid_workloads(),
            &FORMATS,
            &SIZES,
            &cfg,
            &mut telemetry.instruments(),
        )
        .unwrap();
    // A second, overlapping campaign over the same runner — the repro_all
    // pattern where figure grids revisit shared cells. Cache hits must
    // yield the same rows and the same metrics as recomputation would.
    let overlap = runner
        .characterize_with(
            &grid_workloads()[..2],
            &FORMATS[..2],
            &SIZES,
            &cfg,
            &mut telemetry.instruments(),
        )
        .unwrap();
    assert!(runner.cached_cells() > 0);
    let json = format!(
        "{}\n{}",
        measurement_bytes(&ms),
        measurement_bytes(&overlap)
    );
    (json, telemetry.metrics.to_tsv())
}

#[test]
fn emitted_artifacts_are_byte_identical_across_job_counts() {
    let (json1, tsv1) = artifacts_at(1);
    let (json8, tsv8) = artifacts_at(8);
    assert_eq!(
        json1, json8,
        "measurement JSON diverged between --jobs 1 and --jobs 8"
    );
    assert_eq!(
        tsv1, tsv8,
        "metrics TSV diverged between --jobs 1 and --jobs 8"
    );
    let (json4, tsv4) = artifacts_at(4);
    assert_eq!(json1, json4);
    assert_eq!(tsv1, tsv4);
}

/// Renders the compound-scheme campaign (every second-stage codec × the
/// scheme formats) through a `--codec`-aware `Cli` at `jobs` workers.
fn compound_artifacts_at(jobs: usize) -> (String, String) {
    let cli = Cli::parse([
        "--jobs".to_string(),
        jobs.to_string(),
        "--codec".to_string(),
        "delta-varint".to_string(),
    ])
    .unwrap();
    let runner = cli.runner();
    let mut telemetry = cli.telemetry();
    let rows = copernicus::experiments::ext_compound_scheme::run_on(
        &runner,
        &cli.cfg,
        &mut telemetry.instruments(),
    )
    .unwrap();
    let table = copernicus::experiments::ext_compound_scheme::render(&rows);
    (table, telemetry.metrics.to_tsv())
}

#[test]
fn compound_campaign_with_a_codec_is_byte_identical_across_job_counts() {
    let (table1, tsv1) = compound_artifacts_at(1);
    let (table4, tsv4) = compound_artifacts_at(4);
    assert_eq!(
        table1, table4,
        "compound table diverged between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        tsv1, tsv4,
        "compound metrics diverged between --jobs 1 and --jobs 4"
    );
    // The codec actually engaged: its counters reached the registry.
    assert!(
        tsv1.contains("codec.entropy_cycles"),
        "expected codec counters in:\n{tsv1}"
    );
    assert!(tsv1.contains("codec.saved_bytes"), "{tsv1}");
}

/// Renders the compound-scheme campaign on the CPU backend at `jobs`
/// workers — the non-default cost model must honor the same contract.
fn cpu_compound_artifacts_at(jobs: usize) -> (String, String) {
    let cli = Cli::parse([
        "--jobs".to_string(),
        jobs.to_string(),
        "--codec".to_string(),
        "delta-varint".to_string(),
        "--backend".to_string(),
        "cpu".to_string(),
    ])
    .unwrap();
    let runner = cli.runner();
    let mut telemetry = cli.telemetry();
    let rows = copernicus::experiments::ext_compound_scheme::run_on(
        &runner,
        &cli.cfg,
        &mut telemetry.instruments(),
    )
    .unwrap();
    let table = copernicus::experiments::ext_compound_scheme::render(&rows);
    (table, telemetry.metrics.to_tsv())
}

#[test]
fn cpu_backend_campaign_is_byte_identical_across_job_counts() {
    let (table1, tsv1) = cpu_compound_artifacts_at(1);
    let (table4, tsv4) = cpu_compound_artifacts_at(4);
    assert_eq!(
        table1, table4,
        "--backend cpu table diverged between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        tsv1, tsv4,
        "--backend cpu metrics diverged between --jobs 1 and --jobs 4"
    );
    // Sanity: the CPU model really drove the run — its cost surface
    // differs from the HLS default on the same campaign.
    let (hls_table, _) = compound_artifacts_at(1);
    assert_ne!(
        table1, hls_table,
        "cpu and hls backends produced identical compound tables"
    );
}

/// Renders the three-backend split campaign at `jobs` workers.
fn backend_split_artifacts_at(jobs: usize) -> (String, String) {
    let cli = Cli::parse(["--jobs".to_string(), jobs.to_string()]).unwrap();
    let runner = cli.runner();
    let mut telemetry = cli.telemetry();
    let rows = copernicus::experiments::ext_backend_split::run_on(
        &runner,
        &cli.cfg,
        &mut telemetry.instruments(),
    )
    .unwrap();
    let table = copernicus::experiments::ext_backend_split::render(&rows);
    (table, telemetry.metrics.to_tsv())
}

#[test]
fn backend_split_campaign_is_byte_identical_across_job_counts() {
    let (table1, tsv1) = backend_split_artifacts_at(1);
    let (table4, tsv4) = backend_split_artifacts_at(4);
    assert_eq!(
        table1, table4,
        "backend_split table diverged between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        tsv1, tsv4,
        "backend_split metrics diverged between --jobs 1 and --jobs 4"
    );
    // All three cost models are present in the rendered artifact.
    for backend in ["hls", "cpu", "hetero"] {
        assert!(table1.contains(backend), "missing {backend} in:\n{table1}");
    }
}

#[test]
fn cache_hits_reproduce_the_original_rows() {
    let cli = Cli::parse(["--jobs".to_string(), "4".to_string()]).unwrap();
    let cfg = ExperimentConfig::quick();
    let runner = cli.runner();
    let first = runner
        .characterize(&grid_workloads(), &FORMATS, &SIZES, &cfg)
        .unwrap();
    let cells = runner.cached_cells();
    let second = runner
        .characterize(&grid_workloads(), &FORMATS, &SIZES, &cfg)
        .unwrap();
    assert_eq!(first, second);
    assert_eq!(
        runner.cached_cells(),
        cells,
        "a fully-cached rerun must not grow the cache"
    );
}
