//! End-to-end fault-tolerance contract at the CLI layer: an interrupted
//! campaign resumed from its checkpoint reproduces the clean run's
//! artifacts byte for byte (at any worker count), `--keep-going` completes
//! the rest of the grid and surfaces the typed failure through the manifest
//! and the exit code, and `--max-retries` absorbs transient faults.

use copernicus::{CampaignError, ExperimentConfig, FailureKind, Measurement};
use copernicus_bench::Cli;
use copernicus_telemetry::RunManifest;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

const FORMATS: [FormatKind; 3] = [FormatKind::Csr, FormatKind::Coo, FormatKind::Dia];
const SIZES: [usize; 2] = [8, 16];

fn grid_workloads() -> Vec<Workload> {
    vec![
        Workload::Random {
            n: 48,
            density: 0.05,
        },
        Workload::Band { n: 48, width: 4 },
    ]
}

fn scratch_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "copernicus-bench-fault-{}-{test}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn measurement_bytes(ms: &[Measurement]) -> String {
    serde::json::to_string_pretty(&serde::Serialize::serialize(&ms.to_vec()))
}

fn cli(args: &[&str]) -> Cli {
    Cli::parse(args.iter().map(|s| (*s).to_string())).expect("flags parse")
}

/// One full grid through a `Cli`-configured runner; returns the emitted
/// measurement JSON and metrics TSV.
fn artifacts(cli: &Cli) -> (String, String) {
    let cfg = ExperimentConfig::quick();
    let runner = cli.runner();
    let mut telemetry = cli.telemetry();
    let ms = runner
        .characterize_with(
            &grid_workloads(),
            &FORMATS,
            &SIZES,
            &cfg,
            &mut telemetry.instruments(),
        )
        .expect("campaign completes");
    (measurement_bytes(&ms), telemetry.metrics.to_tsv())
}

/// The satellite (d) contract: kill a campaign mid-grid with an injected
/// panic, resume from the checkpoint, and byte-compare the artifacts
/// against an uninterrupted run — at the given worker count.
fn resume_reproduces_clean_artifacts_at(jobs: usize) {
    let jobs_s = jobs.to_string();
    let clean_dir = scratch_dir(&format!("clean-{jobs}"));
    let resumed_dir = scratch_dir(&format!("resumed-{jobs}"));

    let clean = cli(&["--jobs", &jobs_s, "--out", clean_dir.to_str().unwrap()]);
    let (clean_json, clean_tsv) = artifacts(&clean);

    // Interrupted run: a panic injected mid-grid aborts the campaign, but
    // every cell completed before the abort is already on disk.
    let dir = resumed_dir.to_str().unwrap();
    let interrupted = cli(&[
        "--jobs",
        &jobs_s,
        "--out",
        dir,
        "--inject-faults",
        "panic:cell=7",
    ]);
    let cfg = ExperimentConfig::quick();
    let runner = interrupted.runner();
    let err = runner
        .characterize(&grid_workloads(), &FORMATS, &SIZES, &cfg)
        .expect_err("the injected panic must abort the campaign");
    match &err {
        CampaignError::Cells { failures, .. } => {
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].kind, FailureKind::Panic);
        }
        other => panic!("expected a cell failure, got {other}"),
    }
    assert!(
        resumed_dir.join("checkpoint.jsonl").exists(),
        "the aborted run must leave its checkpoint behind"
    );

    // Fresh process-equivalent: a new Cli with --resume picks the completed
    // cells back up and the rerun's artifacts match the clean run's bytes.
    let resume = cli(&["--jobs", &jobs_s, "--out", dir, "--resume"]);
    let (resumed_json, resumed_tsv) = artifacts(&resume);
    assert_eq!(
        clean_json, resumed_json,
        "measurement JSON diverged between clean and resumed runs at --jobs {jobs}"
    );
    assert_eq!(
        clean_tsv, resumed_tsv,
        "metrics TSV diverged between clean and resumed runs at --jobs {jobs}"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&resumed_dir);
}

#[test]
fn resume_reproduces_the_clean_artifacts_sequentially() {
    resume_reproduces_clean_artifacts_at(1);
}

#[test]
fn resume_reproduces_the_clean_artifacts_in_parallel() {
    resume_reproduces_clean_artifacts_at(4);
}

#[test]
fn keep_going_completes_the_grid_and_surfaces_the_failure() {
    let dir = scratch_dir("keep-going");
    let manifest_path = dir.join("manifest.json");
    let cli = cli(&[
        "--jobs",
        "2",
        "--keep-going",
        "--max-retries",
        "0",
        "--inject-faults",
        "panic:cell=4",
        "--manifest",
        manifest_path.to_str().unwrap(),
    ]);
    let cfg = ExperimentConfig::quick();
    let runner = cli.runner();
    let mut telemetry = cli.telemetry();

    let workloads = grid_workloads();
    let total = workloads.len() * SIZES.len() * FORMATS.len();
    let outcome = runner
        .run_campaign(
            &workloads,
            &FORMATS,
            &SIZES,
            &cfg,
            &mut telemetry.instruments(),
        )
        .expect("keep-going absorbs the failure");
    assert_eq!(outcome.measurements.len(), total - 1);
    assert_eq!(outcome.failures.len(), 1);
    assert_eq!(outcome.failures[0].cell, 4);
    assert_eq!(outcome.failures[0].kind, FailureKind::Panic);

    // No poisoned-mutex cascade: the same runner finishes a second pass
    // cleanly (the fault is spent; cached cells fill most of the grid).
    let rerun = runner
        .characterize(&workloads, &FORMATS, &SIZES, &cfg)
        .expect("the runner stays usable after an isolated panic");
    assert_eq!(rerun.len(), total);

    // The failure reaches the manifest and flips the exit code.
    telemetry.record_failures(&outcome.failures);
    let code = telemetry.finish(copernicus::manifest_for(&cfg, &workloads, &FORMATS, &SIZES));
    assert_eq!(code, 1, "a run with failed cells must exit nonzero");
    let text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let manifest = RunManifest::from_json(&text).expect("manifest parses");
    assert_eq!(manifest.failures.len(), 1);
    assert_eq!(manifest.failures[0].kind, "panic");
    assert_eq!(manifest.failures[0].cell, 4);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_faults_are_retried_through_the_cli_policy() {
    let cli = cli(&[
        "--jobs",
        "1",
        "--max-retries",
        "2",
        "--inject-faults",
        "err:cell=3:count=2",
    ]);
    let cfg = ExperimentConfig::quick();
    let runner = cli.runner();
    let mut telemetry = cli.telemetry();
    let ms = runner
        .characterize_with(
            &grid_workloads(),
            &FORMATS,
            &SIZES,
            &cfg,
            &mut telemetry.instruments(),
        )
        .expect("retries absorb the transient fault");
    assert_eq!(
        ms.len(),
        grid_workloads().len() * SIZES.len() * FORMATS.len()
    );
    let tsv = telemetry.metrics.to_tsv();
    assert!(
        tsv.contains("cell_retries\tcounter\t2"),
        "retry telemetry missing from metrics TSV:\n{tsv}"
    );
}
