//! Property tests for the second-stage stream codecs: round-trip identity
//! on arbitrary byte streams, and the per-stream byte-accounting invariant
//! (`coded_bytes <= bytes`, with equality under `CodecKind::None`) for
//! every codec × characterized format.

use copernicus_hls::{codec_for, CodecKind, EncodedPartition, HwConfig};
use proptest::prelude::*;
use sparsemat::{Coo, FormatKind, Triplet};

const P: usize = 16;

fn tile_strategy() -> impl Strategy<Value = Coo<f32>> {
    let cells = P * P;
    proptest::collection::vec((0..cells, prop_oneof![-9i32..0, 1i32..=9]), 0..=cells / 2).prop_map(
        |pairs| {
            let triplets = pairs
                .into_iter()
                .map(|(cell, v)| Triplet::new(cell / P, cell % P, v as f32))
                .collect();
            Coo::from_triplets(P, P, triplets).expect("in range")
        },
    )
}

/// Byte streams shaped like real transfer streams (runs, small-delta
/// words, skewed histograms) plus fully arbitrary bytes.
fn stream_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(0u8..=255, 0..512),
        // Run-heavy: a few distinct bytes repeated.
        proptest::collection::vec((0u8..4, 1usize..64), 0..16)
            .prop_map(|runs| { runs.into_iter().flat_map(|(b, n)| vec![b; n]).collect() }),
        // Sorted u32 index streams with small deltas.
        (0u32..1000, proptest::collection::vec(0u32..8, 0..100)).prop_map(|(start, deltas)| {
            let mut word = start;
            let mut out = Vec::new();
            for d in deltas {
                word = word.wrapping_add(d);
                out.extend_from_slice(&word.to_le_bytes());
            }
            out
        }),
    ]
}

const CODECS: [CodecKind; 3] = [CodecKind::Rle, CodecKind::DeltaVarint, CodecKind::Huffman];

proptest! {
    #[test]
    fn decode_of_encode_is_the_identity(src in stream_strategy()) {
        for kind in CODECS {
            let codec = codec_for(kind).expect("registered");
            let mut coded = Vec::new();
            codec.encode_bytes(&src, &mut coded).expect("encodable");
            let mut back = Vec::new();
            codec.decode_bytes(&coded, &mut back).expect("own output decodes");
            prop_assert_eq!(&back, &src, "{} round trip", kind);
        }
    }

    #[test]
    fn coded_bytes_never_exceed_structural_bytes(tile in tile_strategy()) {
        for codec in CodecKind::ALL {
            let cfg = HwConfig {
                stream_codec: codec,
                ..HwConfig::with_partition_size(P)
            };
            for kind in FormatKind::CHARACTERIZED {
                let e = EncodedPartition::encode(&tile, kind, &cfg).unwrap();
                for s in &e.streams {
                    prop_assert!(
                        s.coded_bytes <= s.bytes,
                        "{}/{}/{}: coded {} > structural {}",
                        codec, kind, s.name, s.coded_bytes, s.bytes
                    );
                    if codec == CodecKind::None {
                        prop_assert_eq!(s.coded_bytes, s.bytes);
                    }
                }
                prop_assert!(e.transfer_bytes() <= e.total_bytes(), "{}/{}", codec, kind);
                prop_assert!(
                    e.memory_cycles(&cfg) <= cfg.transfer_cycles(e.total_bytes()),
                    "{}/{}", codec, kind
                );
                if codec == CodecKind::None {
                    prop_assert_eq!(e.entropy_cycles(&cfg), 0);
                }
            }
        }
    }
}
