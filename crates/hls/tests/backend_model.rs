//! Backend-abstraction contract tests.
//!
//! Three guarantees ride on the [`Backend`] trait introduced with the
//! multi-backend models:
//!
//! 1. **Equivalence** — routing the HLS cost model through the trait is a
//!    pure refactor: a [`Session`] report equals the report rebuilt from
//!    [`HlsStreamBackend::partition_timing`] called tile by tile, field
//!    for field, across all characterized formats × stream codecs.
//! 2. **Monotonicity** — the analytical [`CpuCacheBackend`] never charges
//!    fewer cycles for more work (extra non-zeros) and never charges more
//!    compute for a larger cache, under proptest.
//! 3. **Determinism** — the [`HeteroBackend`] per-partition dispatch is a
//!    pure function of each partition's streams, so runs are byte-identical
//!    at any `tile_jobs` worker count.

use copernicus_hls::{
    backend_for, decompress, Backend, BackendKind, CodecKind, CpuCacheBackend, EncodedPartition,
    HlsStreamBackend, HwConfig, RunRequest, Session,
};
use proptest::prelude::*;
use sparsemat::{Coo, FormatKind, Matrix, PartitionGrid, Triplet};

/// A 3×3 grid of 16-wide tiles mixing a diagonal, a band, and scattered
/// cells so every format sees a distinct layout in every partition.
fn matrix() -> Coo<f32> {
    let mut coo = Coo::new(48, 48);
    for i in 0..48usize {
        coo.push(i, i, 1.0 + i as f32).unwrap();
        if i + 5 < 48 {
            coo.push(i, i + 5, -0.5 * i as f32).unwrap();
        }
        if i >= 19 {
            coo.push(i, i - 19, 3.0).unwrap();
        }
    }
    coo.push(0, 47, 7.0).unwrap();
    coo.push(47, 0, -7.0).unwrap();
    coo
}

/// Rebuilds a run report's aggregate fields straight from the trait
/// object, mirroring the pipeline's fill-plus-bottleneck accounting, and
/// checks every field the session reported.
#[test]
fn hls_backend_through_the_trait_matches_the_pipeline_report() {
    let m = matrix();
    for codec in CodecKind::ALL {
        let mut cfg = HwConfig::with_partition_size(16);
        cfg.stream_codec = codec;
        assert_eq!(cfg.backend, BackendKind::Hls, "hls is the default backend");
        let backend = backend_for(cfg.backend);
        let grid = PartitionGrid::new(&m, cfg.partition_size).unwrap();
        let mut session = Session::new(cfg.clone()).unwrap();
        for kind in FormatKind::CHARACTERIZED {
            let report = session.run(RunRequest::matrix(&m, kind)).unwrap().report;

            // Independent accumulation, tile by tile, via the trait.
            let (mut mem, mut compute, mut writeback) = (0u64, 0u64, 0u64);
            let (mut decomp, mut entropy, mut issues) = (0u64, 0u64, 0u64);
            let (mut bytes, mut coded, mut useful, mut reads) = (0u64, 0u64, 0u64, 0u64);
            let (mut pipelined, mut first_fill) = (0u64, None);
            let mut balance = 0.0f64;
            for part in grid.partitions() {
                let enc = EncodedPartition::encode(&part.coo, kind, &cfg).unwrap();
                let d = decompress(&enc, &cfg);
                let t = backend.partition_timing(&enc, &d, &cfg);
                let bottleneck = t.mem_cycles.max(t.compute_cycles).max(t.writeback_cycles);
                if first_fill.is_none() {
                    first_fill =
                        Some(t.mem_cycles + t.compute_cycles + t.writeback_cycles - bottleneck);
                }
                mem += t.mem_cycles;
                compute += t.compute_cycles;
                writeback += t.writeback_cycles;
                decomp += t.decomp_cycles;
                entropy += t.entropy_cycles;
                issues += t.dot_issues;
                bytes += t.bytes;
                coded += t.coded_bytes;
                useful += t.useful_bytes;
                reads += t.bram_reads;
                pipelined += bottleneck;
                balance += t.mem_cycles as f64 / t.compute_cycles.max(1) as f64;
            }
            let n = grid.partitions().len();
            let tag = format!("{kind} / codec {codec}");
            assert_eq!(report.partitions, n, "{tag}");
            assert_eq!(report.total_mem_cycles, mem, "{tag}");
            assert_eq!(report.total_compute_cycles, compute, "{tag}");
            assert_eq!(report.total_decomp_cycles, decomp, "{tag}");
            assert_eq!(report.total_entropy_cycles, entropy, "{tag}");
            assert_eq!(report.total_writeback_cycles, writeback, "{tag}");
            assert_eq!(report.total_dot_issues, issues, "{tag}");
            assert_eq!(report.total_bytes, bytes, "{tag}");
            assert_eq!(report.total_coded_bytes, coded, "{tag}");
            assert_eq!(report.useful_bytes, useful, "{tag}");
            assert_eq!(report.total_bram_reads, reads, "{tag}");
            assert_eq!(
                report.total_cycles,
                pipelined + first_fill.unwrap_or(0),
                "{tag}"
            );
            assert_eq!(
                report.dense_equivalent_compute,
                n as u64 * backend.dense_equivalent_cycles(&cfg),
                "{tag}"
            );
            assert_eq!(report.balance_ratio, balance / n as f64, "{tag}");
            assert_eq!(report.clock_mhz, cfg.clock_mhz, "{tag}");
        }
    }
}

/// Strategy: a random `16×16` tile with unique coordinates.
fn tile_strategy() -> impl Strategy<Value = Coo<f32>> {
    let p = 16usize;
    proptest::collection::btree_map(0..p * p, prop_oneof![-9i32..0, 1i32..=9], 1..=p * p / 2)
        .prop_map(move |map| {
            let triplets = map
                .into_iter()
                .map(|(cell, v)| Triplet::new(cell / p, cell % p, v as f32))
                .collect();
            Coo::from_triplets(p, p, triplets).expect("in range")
        })
}

/// Total CPU-modeled cycles for one tile under `cfg` (mem + compute +
/// writeback — a monotone reduction of every charge the model makes).
fn cpu_cost(tile: &Coo<f32>, kind: FormatKind, cfg: &HwConfig) -> (u64, u64) {
    let enc = EncodedPartition::encode(tile, kind, cfg).unwrap();
    let d = decompress(&enc, cfg);
    let t = CpuCacheBackend.partition_timing(&enc, &d, cfg);
    (
        t.mem_cycles + t.compute_cycles + t.writeback_cycles,
        t.compute_cycles,
    )
}

proptest! {
    /// More work never gets cheaper: adding a non-zero to a tile (codec
    /// `None`, so second-stage coding can't shrink the streams) never
    /// lowers the CPU model's total cycle charge, in any format.
    #[test]
    fn cpu_model_is_monotone_in_nnz(tile in tile_strategy()) {
        let cfg = HwConfig::with_partition_size(16);
        // First empty 16×16 cell; skip the (vanishingly rare) full tile.
        let occupied: std::collections::BTreeSet<(usize, usize)> = tile
            .triplets()
            .into_iter()
            .map(|t| (t.row, t.col))
            .collect();
        let free = (0..16 * 16)
            .map(|c| (c / 16, c % 16))
            .find(|c| !occupied.contains(c));
        if let Some(free) = free {
            let mut grown = tile.clone();
            grown.push(free.0, free.1, 5.0).unwrap();
            for kind in FormatKind::CHARACTERIZED {
                let (base, _) = cpu_cost(&tile, kind, &cfg);
                let (more, _) = cpu_cost(&grown, kind, &cfg);
                prop_assert!(
                    more >= base,
                    "{kind}: +1 nnz dropped CPU cycles {base} -> {more}"
                );
            }
        }
    }

    /// A strictly larger cache hierarchy never makes compute slower: the
    /// working set can only move to a closer level.
    #[test]
    fn cpu_model_is_monotone_in_cache_size(tile in tile_strategy()) {
        let small = HwConfig::with_partition_size(16);
        let mut big = small.clone();
        big.cpu.l1_bytes *= 4;
        big.cpu.l2_bytes *= 4;
        big.cpu.llc_bytes *= 4;
        for kind in FormatKind::CHARACTERIZED {
            let (_, slow) = cpu_cost(&tile, kind, &small);
            let (_, fast) = cpu_cost(&tile, kind, &big);
            prop_assert!(
                fast <= slow,
                "{kind}: 4x caches raised compute cycles {slow} -> {fast}"
            );
        }
    }
}

/// The hetero dispatcher never reorders or re-costs work across worker
/// counts: outcomes (reports, SpMV vectors) are byte-identical at any
/// `tile_jobs`, for every format, with and without a stream codec.
#[test]
fn hetero_dispatch_is_identical_at_any_worker_count() {
    let m = matrix();
    let x: Vec<f32> = (0..m.ncols()).map(|i| (i % 5) as f32 - 2.0).collect();
    for codec in [CodecKind::None, CodecKind::Huffman] {
        let mut cfg = HwConfig::with_partition_size(16);
        cfg.backend = BackendKind::Hetero;
        cfg.stream_codec = codec;
        let mut serial = Session::new(cfg.clone()).unwrap();
        for jobs in [2usize, 4, 16] {
            let mut par = Session::new(cfg.clone()).unwrap().with_tile_jobs(jobs);
            for kind in FormatKind::CHARACTERIZED {
                let base = serial
                    .run(RunRequest::matrix(&m, kind).consume_spmv(&x))
                    .unwrap();
                let tiled = par
                    .run(RunRequest::matrix(&m, kind).consume_spmv(&x))
                    .unwrap();
                assert_eq!(
                    base, tiled,
                    "{kind}/{codec}: hetero outcome diverged at tile_jobs={jobs}"
                );
                assert_eq!(
                    serde::json::to_string_pretty(&base.report),
                    serde::json::to_string_pretty(&tiled.report),
                    "{kind}/{codec}: serialized report diverged at tile_jobs={jobs}"
                );
            }
        }
    }
}

/// Backend selection on the request overrides the config for one run and
/// restores it: the three backends produce three distinct cost surfaces on
/// the same workload, and the session's config is untouched afterwards.
#[test]
fn request_backend_override_is_scoped_to_one_run() {
    let m = matrix();
    let mut session = Session::new(HwConfig::with_partition_size(16)).unwrap();
    let mut totals = Vec::new();
    for kind in BackendKind::ALL {
        let out = session
            .run(RunRequest::matrix(&m, FormatKind::Csr).backend(kind))
            .unwrap();
        totals.push(out.report.total_cycles);
        assert_eq!(
            session.config().backend,
            BackendKind::Hls,
            "override for {kind} leaked into the session config"
        );
    }
    assert_ne!(totals[0], totals[1], "hls and cpu cost surfaces coincide");
    assert_eq!(
        HlsStreamBackend.kind(),
        BackendKind::Hls,
        "trait kind() names the backend"
    );
}
