//! Allocation-regression contract for the simulator hot path: once a
//! session's scratch pools are warm, streaming a grid through
//! encode → codec → decompress → verify performs **zero** steady-state heap
//! allocations per tile. A counting global allocator meters the runs; any
//! new allocation in the per-tile loops (a fresh `Vec`, a `format!`, a map
//! rebuild) fails this test before it can show up as a throughput cliff.

use copernicus_hls::{CodecKind, HwConfig, RunRequest, Session};
use sparsemat::{Coo, FormatKind, PartitionGrid};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation made by the armed thread;
/// frees are uncounted (returning pooled buffers is allowed, acquiring new
/// ones is the regression). Arming is per-thread so the libtest harness
/// thread's own bookkeeping allocations never pollute the count.
struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicU64 = AtomicU64::new(0);

fn armed() -> bool {
    // `try_with` so allocations during thread teardown can't panic.
    ARMED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocation count of `f` on this thread. The serial session under test
/// does all per-tile work on the calling thread, so the thread-local gate
/// meters exactly the code under test.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.with(|c| c.set(true));
    let out = f();
    ARMED.with(|c| c.set(false));
    (ALLOCS.load(Ordering::SeqCst), out)
}

/// A banded matrix with scattered fill: every 16-wide tile of the `n×n`
/// grid is non-empty and the formats exercise distinct layouts.
fn matrix(n: usize) -> Coo<f32> {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0 + i as f32).unwrap();
        if i + 5 < n {
            coo.push(i, i + 5, -0.5).unwrap();
        }
        if i >= 11 {
            coo.push(i, i - 11, 0.25 * i as f32).unwrap();
        }
    }
    coo
}

#[test]
fn warm_sessions_run_allocation_free_per_tile() {
    // Functional verification on (quick preset) and the heaviest
    // second-stage codec: the measured path is the full
    // encode → Huffman encode/decode cost model → decompress → verify
    // chain.
    let cfg = HwConfig {
        stream_codec: CodecKind::Huffman,
        ..HwConfig::default()
    };
    assert!(cfg.verify_functional);
    let small = matrix(48); // 3×3 tiles at p=16
    let large = matrix(96); // 6×6 tiles
    let small_grid = PartitionGrid::new(&small, cfg.partition_size).unwrap();
    let large_grid = PartitionGrid::new(&large, cfg.partition_size).unwrap();

    for kind in FormatKind::CHARACTERIZED {
        let mut session = Session::new(cfg.clone()).unwrap();
        // Two warmup passes per grid: the first grows every pool to the
        // format's working-set size, the second settles reuse order.
        for _ in 0..2 {
            session.run(RunRequest::grid(&small_grid, kind)).unwrap();
            session.run(RunRequest::grid(&large_grid, kind)).unwrap();
        }
        let (small_allocs, _) =
            count_allocs(|| session.run(RunRequest::grid(&small_grid, kind)).unwrap());
        let (large_allocs, _) =
            count_allocs(|| session.run(RunRequest::grid(&large_grid, kind)).unwrap());
        assert_eq!(
            small_allocs, 0,
            "{kind}: a warm 3×3 run allocated {small_allocs} time(s)"
        );
        assert_eq!(
            large_allocs, 0,
            "{kind}: a warm 6×6 run allocated {large_allocs} time(s)"
        );
    }
}
