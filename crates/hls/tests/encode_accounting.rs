//! Property tests pinning `EncodedPartition::encode` stream-byte accounting
//! to the *actual* lengths of the encoded `sparsemat` structures — for
//! every characterized format, including tiles with duplicate coordinates.
//! Every format merges duplicates during encoding (COO/DOK compress their
//! tuple list exactly as CSR/CSC merge theirs), so the accounting always
//! describes the encoded structure, never the raw pre-merge triplet list.

use copernicus_hls::{EncodedPartition, HwConfig, Stream};
use proptest::prelude::*;
use sparsemat::{AnyMatrix, Coo, FormatKind, Matrix, Triplet};

const P: usize = 16;

/// A tile that may contain repeated coordinates (values accumulate).
fn dup_tile_strategy() -> impl Strategy<Value = Coo<f32>> {
    let cells = P * P;
    proptest::collection::vec((0..cells, prop_oneof![-9i32..0, 1i32..=9]), 1..=cells / 2).prop_map(
        |pairs| {
            let triplets = pairs
                .into_iter()
                .map(|(cell, v)| Triplet::new(cell / P, cell % P, v as f32))
                .collect();
            Coo::from_triplets(P, P, triplets).expect("in range")
        },
    )
}

fn stream_bytes(streams: &[Stream], name: &str) -> u64 {
    streams
        .iter()
        .find(|s| s.name == name)
        .map_or(0, |s| s.bytes)
}

proptest! {
    #[test]
    fn stream_bytes_match_the_encoded_structures(tile in dup_tile_strategy()) {
        let cfg = HwConfig::with_partition_size(P);
        let vb = cfg.value_bytes as u64;
        let ib = cfg.index_bytes as u64;
        let p = P as u64;
        let raw_nnz = tile.nnz() as u64;

        for kind in FormatKind::CHARACTERIZED {
            let e = EncodedPartition::encode(&tile, kind, &cfg).unwrap();
            // Universal identities: the total is exactly the stream sum and
            // the useful payload is the encoded structure's entry count.
            prop_assert_eq!(
                e.total_bytes(),
                e.streams.iter().map(|s| s.bytes).sum::<u64>(),
                "{}", kind
            );
            prop_assert_eq!(e.useful_bytes, e.matrix.nnz() as u64 * vb, "{}", kind);

            match (&e.matrix, kind) {
                (AnyMatrix::Dense(_), FormatKind::Dense) => {
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), p * p * vb);
                }
                (AnyMatrix::Csr(m), FormatKind::Csr) => {
                    let stored = m.nnz() as u64;
                    prop_assert!(stored <= raw_nnz, "CSR must merge duplicates");
                    prop_assert_eq!(stream_bytes(&e.streams, "offsets"), (p + 1) * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "colInx"), stored * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), stored * vb);
                }
                (AnyMatrix::Csc(m), FormatKind::Csc) => {
                    let stored = m.nnz() as u64;
                    prop_assert!(stored <= raw_nnz, "CSC must merge duplicates");
                    prop_assert_eq!(stream_bytes(&e.streams, "offsets"), (p + 1) * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "rowInx"), stored * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), stored * vb);
                }
                (AnyMatrix::Bcsr(m), FormatKind::Bcsr) => {
                    let b2 = (m.block_size() * m.block_size()) as u64;
                    prop_assert_eq!(
                        stream_bytes(&e.streams, "offsets"),
                        (m.block_rows() as u64 + 1) * ib
                    );
                    prop_assert_eq!(
                        stream_bytes(&e.streams, "colInx"),
                        m.num_blocks() as u64 * ib
                    );
                    prop_assert_eq!(
                        stream_bytes(&e.streams, "values"),
                        m.num_blocks() as u64 * b2 * vb
                    );
                }
                (AnyMatrix::Coo(m), FormatKind::Coo | FormatKind::Dok) => {
                    // COO/DOK merge duplicate coordinates during encoding,
                    // so the streamed tuple count is the *stored* count —
                    // the same count CSR arrives at.
                    let stored = m.nnz() as u64;
                    prop_assert!(stored <= raw_nnz, "COO must merge duplicates");
                    prop_assert_eq!(stream_bytes(&e.streams, "rowInx"), stored * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "colInx"), stored * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), stored * vb);
                }
                (AnyMatrix::Lil(m), FormatKind::Lil) => {
                    let height = m.max_line_len() as u64 + 1;
                    prop_assert_eq!(stream_bytes(&e.streams, "Inx"), height * p * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), height * p * vb);
                }
                (AnyMatrix::Ell(m), FormatKind::Ell) => {
                    let w = m.width() as u64;
                    prop_assert_eq!(stream_bytes(&e.streams, "colInx"), w * p * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), w * p * vb);
                }
                (AnyMatrix::Dia(m), FormatKind::Dia) => {
                    prop_assert_eq!(
                        stream_bytes(&e.streams, "diags"),
                        m.num_diagonals() as u64 * (p + 1) * vb
                    );
                }
                (other, kind) => {
                    prop_assert!(
                        false,
                        "{} encoded into unexpected structure {:?}",
                        kind,
                        other.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn coo_accounts_duplicates_exactly_like_csr(tile in dup_tile_strategy()) {
        // The regression this pins: COO/DOK used to size their streams from
        // the raw pre-merge nnz while CSR/CSC sized from the merged stored
        // count, so the same tile was accounted inconsistently across
        // formats whenever it contained duplicate coordinates.
        let cfg = HwConfig::with_partition_size(P);
        let coo = EncodedPartition::encode(&tile, FormatKind::Coo, &cfg).unwrap();
        let dok = EncodedPartition::encode(&tile, FormatKind::Dok, &cfg).unwrap();
        let csr = EncodedPartition::encode(&tile, FormatKind::Csr, &cfg).unwrap();
        prop_assert_eq!(coo.matrix.nnz(), csr.matrix.nnz());
        prop_assert_eq!(coo.useful_bytes, csr.useful_bytes);
        prop_assert_eq!(coo.total_bytes(), dok.total_bytes());
        // Same stored entries -> same per-entry stream sizes: COO's value
        // stream equals CSR's, its index streams equal CSR's colInx.
        let vals = |e: &EncodedPartition| {
            e.streams.iter().find(|s| s.name == "values").map_or(0, |s| s.bytes)
        };
        prop_assert_eq!(vals(&coo), vals(&csr));
        prop_assert_eq!(stream_bytes(&coo.streams, "rowInx"), stream_bytes(&csr.streams, "colInx"));
    }

    #[test]
    fn pre_merging_is_a_no_op_for_every_format(tile in dup_tile_strategy()) {
        // Since every format now merges duplicates during encoding,
        // feeding it an already-merged tile must change nothing.
        let cfg = HwConfig::with_partition_size(P);
        let merged_coo = sparsemat::Csr::from(&tile).to_coo();

        let coo_raw = EncodedPartition::encode(&tile, FormatKind::Coo, &cfg).unwrap();
        let coo_merged = EncodedPartition::encode(&merged_coo, FormatKind::Coo, &cfg).unwrap();
        prop_assert_eq!(coo_raw.total_bytes(), coo_merged.total_bytes());
        prop_assert_eq!(coo_raw.useful_bytes, coo_merged.useful_bytes);

        let csr_raw = EncodedPartition::encode(&tile, FormatKind::Csr, &cfg).unwrap();
        let csr_merged = EncodedPartition::encode(&merged_coo, FormatKind::Csr, &cfg).unwrap();
        prop_assert_eq!(csr_raw.total_bytes(), csr_merged.total_bytes());
        prop_assert_eq!(csr_raw.useful_bytes, csr_merged.useful_bytes);
    }
}
