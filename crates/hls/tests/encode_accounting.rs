//! Property tests pinning `EncodedPartition::encode` stream-byte accounting
//! to the *actual* lengths of the encoded `sparsemat` structures — for
//! every characterized format, including tiles with duplicate coordinates
//! (which CSR/CSC/LIL/ELL/DIA merge during encoding while COO/DOK stream
//! verbatim).

use copernicus_hls::{EncodedPartition, HwConfig, Stream};
use proptest::prelude::*;
use sparsemat::{AnyMatrix, Coo, FormatKind, Matrix, Triplet};

const P: usize = 16;

/// A tile that may contain repeated coordinates (values accumulate).
fn dup_tile_strategy() -> impl Strategy<Value = Coo<f32>> {
    let cells = P * P;
    proptest::collection::vec((0..cells, prop_oneof![-9i32..0, 1i32..=9]), 1..=cells / 2).prop_map(
        |pairs| {
            let triplets = pairs
                .into_iter()
                .map(|(cell, v)| Triplet::new(cell / P, cell % P, v as f32))
                .collect();
            Coo::from_triplets(P, P, triplets).expect("in range")
        },
    )
}

fn stream_bytes(streams: &[Stream], name: &str) -> u64 {
    streams
        .iter()
        .find(|s| s.name == name)
        .map_or(0, |s| s.bytes)
}

proptest! {
    #[test]
    fn stream_bytes_match_the_encoded_structures(tile in dup_tile_strategy()) {
        let cfg = HwConfig::with_partition_size(P);
        let vb = cfg.value_bytes as u64;
        let ib = cfg.index_bytes as u64;
        let p = P as u64;
        let raw_nnz = tile.nnz() as u64;

        for kind in FormatKind::CHARACTERIZED {
            let e = EncodedPartition::encode(&tile, kind, &cfg).unwrap();
            // Universal identities: the total is exactly the stream sum and
            // the useful payload is the encoded structure's entry count.
            prop_assert_eq!(
                e.total_bytes(),
                e.streams.iter().map(|s| s.bytes).sum::<u64>(),
                "{}", kind
            );
            prop_assert_eq!(e.useful_bytes, e.matrix.nnz() as u64 * vb, "{}", kind);

            match (&e.matrix, kind) {
                (AnyMatrix::Dense(_), FormatKind::Dense) => {
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), p * p * vb);
                }
                (AnyMatrix::Csr(m), FormatKind::Csr) => {
                    let stored = m.nnz() as u64;
                    prop_assert!(stored <= raw_nnz, "CSR must merge duplicates");
                    prop_assert_eq!(stream_bytes(&e.streams, "offsets"), (p + 1) * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "colInx"), stored * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), stored * vb);
                }
                (AnyMatrix::Csc(m), FormatKind::Csc) => {
                    let stored = m.nnz() as u64;
                    prop_assert!(stored <= raw_nnz, "CSC must merge duplicates");
                    prop_assert_eq!(stream_bytes(&e.streams, "offsets"), (p + 1) * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "rowInx"), stored * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), stored * vb);
                }
                (AnyMatrix::Bcsr(m), FormatKind::Bcsr) => {
                    let b2 = (m.block_size() * m.block_size()) as u64;
                    prop_assert_eq!(
                        stream_bytes(&e.streams, "offsets"),
                        (m.block_rows() as u64 + 1) * ib
                    );
                    prop_assert_eq!(
                        stream_bytes(&e.streams, "colInx"),
                        m.num_blocks() as u64 * ib
                    );
                    prop_assert_eq!(
                        stream_bytes(&e.streams, "values"),
                        m.num_blocks() as u64 * b2 * vb
                    );
                }
                (AnyMatrix::Coo(m), FormatKind::Coo | FormatKind::Dok) => {
                    // COO/DOK stream the tuple list verbatim — duplicates
                    // travel as separate (row, col, value) entries.
                    prop_assert_eq!(m.nnz() as u64, raw_nnz);
                    prop_assert_eq!(stream_bytes(&e.streams, "rowInx"), raw_nnz * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "colInx"), raw_nnz * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), raw_nnz * vb);
                }
                (AnyMatrix::Lil(m), FormatKind::Lil) => {
                    let height = m.max_line_len() as u64 + 1;
                    prop_assert_eq!(stream_bytes(&e.streams, "Inx"), height * p * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), height * p * vb);
                }
                (AnyMatrix::Ell(m), FormatKind::Ell) => {
                    let w = m.width() as u64;
                    prop_assert_eq!(stream_bytes(&e.streams, "colInx"), w * p * ib);
                    prop_assert_eq!(stream_bytes(&e.streams, "values"), w * p * vb);
                }
                (AnyMatrix::Dia(m), FormatKind::Dia) => {
                    prop_assert_eq!(
                        stream_bytes(&e.streams, "diags"),
                        m.num_diagonals() as u64 * (p + 1) * vb
                    );
                }
                (other, kind) => {
                    prop_assert!(
                        false,
                        "{} encoded into unexpected structure {:?}",
                        kind,
                        other.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_merge_shrinks_merging_formats_only(tile in dup_tile_strategy()) {
        // Re-encoding from the merged CSR view must cost COO strictly less
        // whenever the tile actually contained duplicates, while CSR's own
        // byte count is invariant under pre-merging.
        let cfg = HwConfig::with_partition_size(P);
        let merged_coo = sparsemat::Csr::from(&tile).to_coo();
        let had_duplicates = merged_coo.nnz() < tile.nnz();

        let coo_raw = EncodedPartition::encode(&tile, FormatKind::Coo, &cfg).unwrap();
        let coo_merged = EncodedPartition::encode(&merged_coo, FormatKind::Coo, &cfg).unwrap();
        prop_assert_eq!(
            coo_raw.total_bytes() > coo_merged.total_bytes(),
            had_duplicates
        );

        let csr_raw = EncodedPartition::encode(&tile, FormatKind::Csr, &cfg).unwrap();
        let csr_merged = EncodedPartition::encode(&merged_coo, FormatKind::Csr, &cfg).unwrap();
        prop_assert_eq!(csr_raw.total_bytes(), csr_merged.total_bytes());
        prop_assert_eq!(csr_raw.useful_bytes, csr_merged.useful_bytes);
    }
}
