//! Determinism contract for intra-run partition parallelism: every output a
//! run can produce — reports, traces, SpMV vectors, lane scaling reports —
//! must be byte-identical between a serial run and a `par_tiles(n)` run at
//! any worker count. Timings are closed-form cycle counts reduced back in
//! grid order, so parallelism is purely a host-side speedup.

use copernicus_hls::{HwConfig, RunRequest, Session};
use copernicus_telemetry::{PhaseProfiler, RecordingSink};
use sparsemat::{Coo, FormatKind, Matrix};

/// A multi-partition matrix (48×48 over 16-wide tiles = a 3×3 grid) with
/// diagonals, off-diagonal bands, and a few scattered cells so every grid
/// cell is non-empty and the formats exercise distinct layouts.
fn matrix() -> Coo<f32> {
    let mut coo = Coo::new(48, 48);
    for i in 0..48usize {
        coo.push(i, i, 1.0 + i as f32).unwrap();
        if i + 3 < 48 {
            coo.push(i, i + 3, -0.25 * i as f32).unwrap();
        }
        if i >= 17 {
            coo.push(i, i - 17, 2.0).unwrap();
        }
    }
    coo.push(0, 47, 9.0).unwrap();
    coo.push(47, 0, -9.0).unwrap();
    coo
}

#[test]
fn reports_and_traces_identical_at_any_worker_count() {
    let m = matrix();
    let mut serial = Session::new(HwConfig::default()).unwrap();
    for jobs in [2usize, 3, 8, 64] {
        let mut par = Session::new(HwConfig::default())
            .unwrap()
            .with_tile_jobs(jobs);
        for kind in FormatKind::CHARACTERIZED {
            let mut sink_s = RecordingSink::new();
            let mut sink_p = RecordingSink::new();
            let base = serial
                .run(RunRequest::matrix(&m, kind).with_sink(&mut sink_s))
                .unwrap();
            let tiled = par
                .run(RunRequest::matrix(&m, kind).with_sink(&mut sink_p))
                .unwrap();
            assert_eq!(base, tiled, "{kind} outcome diverged at tile_jobs={jobs}");
            assert_eq!(
                sink_s, sink_p,
                "{kind} trace stream diverged at tile_jobs={jobs}"
            );
        }
    }
}

#[test]
fn spmv_vectors_identical_under_tile_parallelism() {
    let m = matrix();
    let x: Vec<f32> = (0..m.ncols()).map(|i| (i % 7) as f32 - 3.0).collect();
    let mut serial = Session::new(HwConfig::default()).unwrap();
    let mut par = Session::new(HwConfig::default()).unwrap().with_tile_jobs(4);
    for kind in FormatKind::CHARACTERIZED {
        let base = serial
            .run(RunRequest::matrix(&m, kind).consume_spmv(&x))
            .unwrap();
        let tiled = par
            .run(RunRequest::matrix(&m, kind).consume_spmv(&x))
            .unwrap();
        assert_eq!(base.y, tiled.y, "{kind} SpMV result diverged");
        assert_eq!(base.report, tiled.report, "{kind} SpMV report diverged");
    }
}

#[test]
fn lane_scaling_reports_identical_under_tile_parallelism() {
    let m = matrix();
    let mut serial = Session::new(HwConfig::default()).unwrap();
    let mut par = Session::new(HwConfig::default()).unwrap().with_tile_jobs(4);
    for kind in FormatKind::CHARACTERIZED {
        for lanes in [1usize, 2, 4] {
            let base = serial
                .run(RunRequest::matrix(&m, kind).with_lanes(lanes))
                .unwrap();
            let tiled = par
                .run(RunRequest::matrix(&m, kind).with_lanes(lanes))
                .unwrap();
            assert_eq!(
                base.parallel, tiled.parallel,
                "{kind} lane report diverged at lanes={lanes}"
            );
        }
    }
}

#[test]
fn per_request_override_wins_and_restores_the_session_setting() {
    let m = matrix();
    let mut session = Session::new(HwConfig::default()).unwrap().with_tile_jobs(3);
    assert_eq!(session.tile_jobs(), 3);
    let base = session
        .run(RunRequest::matrix(&m, FormatKind::Csr))
        .unwrap();
    let overridden = session
        .run(RunRequest::matrix(&m, FormatKind::Csr).par_tiles(7))
        .unwrap();
    assert_eq!(base, overridden);
    // The override is scoped to the one request.
    assert_eq!(session.tile_jobs(), 3);
    // Zero clamps to serial rather than erroring.
    let clamped = session
        .run(RunRequest::matrix(&m, FormatKind::Csr).par_tiles(0))
        .unwrap();
    assert_eq!(base, clamped);
    assert_eq!(session.tile_jobs(), 3);
}

#[test]
fn profiler_attachment_does_not_perturb_parallel_outputs() {
    let m = matrix();
    let mut plain = Session::new(HwConfig::default()).unwrap().with_tile_jobs(4);
    let profiler = std::sync::Arc::new(PhaseProfiler::new());
    let mut profiled = Session::new(HwConfig::default())
        .unwrap()
        .with_tile_jobs(4)
        .with_profiler(profiler);
    for kind in FormatKind::CHARACTERIZED {
        let a = plain.run(RunRequest::matrix(&m, kind)).unwrap();
        let b = profiled.run(RunRequest::matrix(&m, kind)).unwrap();
        assert_eq!(a, b, "{kind} report changed under profiling");
    }
}

#[test]
fn warm_session_reruns_stay_identical() {
    // Scratch pools (worker scratches included) must not leak state between
    // runs: hammer one session across formats and check against a fresh one.
    let m = matrix();
    let mut warm = Session::new(HwConfig::default()).unwrap().with_tile_jobs(4);
    for _ in 0..3 {
        for kind in FormatKind::CHARACTERIZED {
            let mut fresh = Session::new(HwConfig::default()).unwrap();
            let expect = fresh.run(RunRequest::matrix(&m, kind)).unwrap();
            let got = warm.run(RunRequest::matrix(&m, kind)).unwrap();
            assert_eq!(expect, got, "{kind} diverged on a warm session");
        }
    }
}
