//! Property-based tests of the platform model: functional correctness of
//! every decompressor, closed-form cycle identities, and metric invariants.

use copernicus_hls::{decompress, EncodedPartition, HwConfig, RunRequest, Session};
use proptest::prelude::*;
use sparsemat::{Coo, Dia, FormatKind, Lil, Matrix, Triplet};

/// Strategy: a random tile exactly `p×p` with unique coordinates.
fn tile_strategy(p: usize) -> impl Strategy<Value = Coo<f32>> {
    let cells = p * p;
    proptest::collection::btree_map(0..cells, prop_oneof![-9i32..0, 1i32..=9], 1..=cells / 2)
        .prop_map(move |map| {
            let triplets = map
                .into_iter()
                .map(|(cell, v)| Triplet::new(cell / p, cell % p, v as f32))
                .collect();
            Coo::from_triplets(p, p, triplets).expect("in range")
        })
}

/// Strategy: a random matrix larger than one partition.
fn matrix_strategy() -> impl Strategy<Value = Coo<f32>> {
    let n = 48usize;
    proptest::collection::btree_map(0..n * n, prop_oneof![-9i32..0, 1i32..=9], 0..=160).prop_map(
        move |map| {
            let triplets = map
                .into_iter()
                .map(|(cell, v)| Triplet::new(cell / n, cell % n, v as f32))
                .collect();
            Coo::from_triplets(n, n, triplets).expect("in range")
        },
    )
}

proptest! {
    #[test]
    fn every_decompressor_is_functionally_exact(tile in tile_strategy(16)) {
        let cfg = HwConfig::with_partition_size(16);
        let expect = tile.to_dense();
        for kind in FormatKind::CHARACTERIZED {
            let part = EncodedPartition::encode(&tile, kind, &cfg).unwrap();
            let d = decompress(&part, &cfg);
            prop_assert_eq!(d.assemble(16), expect.clone(), "{} corrupted the tile", kind);
        }
    }

    #[test]
    fn cycle_counts_match_closed_forms(tile in tile_strategy(16)) {
        let cfg = HwConfig::with_partition_size(16);
        let p = 16u64;
        let nnz = tile.nnz() as u64;
        let nzr = tile.nonzero_rows() as u64;
        let l = cfg.bram_read_latency;

        let cycles = |kind: FormatKind| {
            let part = EncodedPartition::encode(&tile, kind, &cfg).unwrap();
            let d = decompress(&part, &cfg);
            (d.decomp_cycles, d.dot_issues)
        };

        // CSR: nzr offset reads + one cycle per element; nzr dots.
        prop_assert_eq!(cycles(FormatKind::Csr), (nzr * l + nnz, nzr));
        // CSC: full rescan of all tuples for each of the p output rows.
        prop_assert_eq!(cycles(FormatKind::Csc), (p * nnz, nzr));
        // COO: one pipelined pass.
        prop_assert_eq!(cycles(FormatKind::Coo), (l + nnz, nzr));
        // LIL: per non-zero row one parallel read + logic, plus end marker.
        prop_assert_eq!(cycles(FormatKind::Lil), (nzr * (l + 2) + l, nzr));
        // ELL: one cycle per row, all rows, width-independent.
        prop_assert_eq!(cycles(FormatKind::Ell), (p, p));
        // DIA: per row a scan over all stored diagonals.
        let ndiag = Dia::from(&tile).num_diagonals() as u64;
        prop_assert_eq!(cycles(FormatKind::Dia), (l + p * ndiag, nzr));
        // Dense: free decompression, every row issues.
        prop_assert_eq!(cycles(FormatKind::Dense), (0, p));
    }

    #[test]
    fn transfer_byte_formulas_hold(tile in tile_strategy(16)) {
        let cfg = HwConfig::with_partition_size(16);
        let nnz = tile.nnz() as u64;
        let bytes = |kind: FormatKind| {
            EncodedPartition::encode(&tile, kind, &cfg).unwrap().total_bytes()
        };
        prop_assert_eq!(bytes(FormatKind::Dense), 16 * 16 * 4);
        prop_assert_eq!(bytes(FormatKind::Csr), (17 + 2 * nnz) * 4);
        prop_assert_eq!(bytes(FormatKind::Csc), (17 + 2 * nnz) * 4);
        prop_assert_eq!(bytes(FormatKind::Coo), 3 * nnz * 4);
        let w = sparsemat::Ell::from(&tile).width() as u64;
        prop_assert_eq!(bytes(FormatKind::Ell), 2 * w * 16 * 4);
        let maxcol = Lil::from(&tile).max_line_len() as u64;
        prop_assert_eq!(bytes(FormatKind::Lil), 2 * (maxcol + 1) * 16 * 4);
        let ndiag = Dia::from(&tile).num_diagonals() as u64;
        prop_assert_eq!(bytes(FormatKind::Dia), ndiag * 17 * 4);
    }

    #[test]
    fn utilization_bounds_hold(tile in tile_strategy(16)) {
        let cfg = HwConfig::with_partition_size(16);
        for kind in FormatKind::CHARACTERIZED {
            let e = EncodedPartition::encode(&tile, kind, &cfg).unwrap();
            let u = e.bandwidth_utilization();
            prop_assert!((0.0..=1.0).contains(&u), "{kind}: {u}");
        }
        // COO exactly 1/3; CSR/CSC below 1/2 (they add offsets on top of
        // one index per value).
        let coo = EncodedPartition::encode(&tile, FormatKind::Coo, &cfg).unwrap();
        prop_assert!((coo.bandwidth_utilization() - 1.0 / 3.0).abs() < 1e-12);
        let csr = EncodedPartition::encode(&tile, FormatKind::Csr, &cfg).unwrap();
        prop_assert!(csr.bandwidth_utilization() < 0.5);
    }

    #[test]
    fn platform_spmv_matches_reference_for_all_formats(
        (m, x) in matrix_strategy().prop_flat_map(|m| {
            let n = m.ncols();
            let x = proptest::collection::vec((-5i32..=5).prop_map(|v| v as f32), n);
            (Just(m), x)
        })
    ) {
        let expect = m.spmv(&x).unwrap();
        let mut session = Session::new(HwConfig::default()).unwrap();
        for kind in FormatKind::CHARACTERIZED {
            let outcome = session.run(RunRequest::matrix(&m, kind).consume_spmv(&x)).unwrap();
            prop_assert_eq!(&outcome.y.unwrap(), &expect, "{} diverged", kind);
            prop_assert_eq!(outcome.report.partitions > 0, m.nnz() > 0);
        }
    }

    #[test]
    fn dense_sigma_is_one_and_others_positive(m in matrix_strategy()) {
        prop_assume!(m.nnz() > 0);
        let mut session = Session::new(HwConfig::default()).unwrap();
        let dense = session.run(RunRequest::matrix(&m, FormatKind::Dense)).unwrap().report;
        prop_assert!((dense.sigma() - 1.0).abs() < 1e-12);
        for kind in FormatKind::CHARACTERIZED {
            let r = session.run(RunRequest::matrix(&m, kind)).unwrap().report;
            prop_assert!(r.sigma() > 0.0, "{kind}");
            prop_assert!(r.balance_ratio > 0.0, "{kind}");
            prop_assert!(r.total_cycles >= r.total_mem_cycles.max(r.total_compute_cycles), "{kind}");
        }
    }

    #[test]
    fn partition_size_sweep_preserves_functionality(m in matrix_strategy(), p in 4usize..=32) {
        prop_assume!(m.nnz() > 0);
        let mut session = Session::new(HwConfig::with_partition_size(p)).unwrap();
        let x: Vec<f32> = (0..m.ncols()).map(|i| (i % 5) as f32 - 2.0).collect();
        let expect = m.spmv(&x).unwrap();
        let y = session
            .run(RunRequest::matrix(&m, FormatKind::Bcsr).consume_spmv(&x))
            .unwrap()
            .y
            .unwrap();
        prop_assert_eq!(y, expect);
    }

    #[test]
    fn csc_never_beats_csr_on_compute(tile in tile_strategy(16)) {
        // The orientation mismatch can only cost cycles.
        let cfg = HwConfig::with_partition_size(16);
        let csr = decompress(&EncodedPartition::encode(&tile, FormatKind::Csr, &cfg).unwrap(), &cfg);
        let csc = decompress(&EncodedPartition::encode(&tile, FormatKind::Csc, &cfg).unwrap(), &cfg);
        prop_assert!(csc.compute_cycles(&cfg) >= csr.compute_cycles(&cfg));
    }

    #[test]
    fn trace_spans_always_sum_to_report_totals(m in matrix_strategy()) {
        // The telemetry layer's defining invariant, over random matrices:
        // recorded stage spans account for every report total exactly, and
        // the instrumented report is bit-identical to the plain one.
        let mut session = Session::new(HwConfig::default()).unwrap();
        for kind in FormatKind::CHARACTERIZED {
            let mut sink = copernicus_telemetry::RecordingSink::new();
            let traced = session
                .run(RunRequest::matrix(&m, kind).with_sink(&mut sink))
                .unwrap()
                .report;
            let plain = session.run(RunRequest::matrix(&m, kind)).unwrap().report;
            prop_assert_eq!(&traced, &plain, "{} report changed under tracing", kind);
            use copernicus_telemetry::Stage;
            prop_assert_eq!(sink.stage_cycles(Stage::MemRead), traced.total_mem_cycles, "{}", kind);
            prop_assert_eq!(sink.stage_cycles(Stage::Compute), traced.total_compute_cycles, "{}", kind);
            prop_assert_eq!(sink.stage_cycles(Stage::Decompress), traced.total_decomp_cycles, "{}", kind);
            prop_assert_eq!(sink.stage_cycles(Stage::WriteBack), traced.total_writeback_cycles, "{}", kind);
            prop_assert_eq!(sink.count("partition_start"), traced.partitions, "{}", kind);
        }
    }

    #[test]
    fn bcsr_dot_issues_cover_all_rows_of_nonzero_block_rows(tile in tile_strategy(16)) {
        let cfg = HwConfig::with_partition_size(16);
        let bcsr = sparsemat::Bcsr::from_coo(&tile, 4).unwrap();
        let d = decompress(&EncodedPartition::encode(&tile, FormatKind::Bcsr, &cfg).unwrap(), &cfg);
        prop_assert_eq!(d.dot_issues, (bcsr.nonzero_block_rows() * 4) as u64);
        prop_assert!(d.dot_issues >= tile.nonzero_rows() as u64);
    }
}
