//! Second-stage stream codecs: entropy/transform coding layered over the
//! per-format transfer streams of [`EncodedPartition`](crate::EncodedPartition).
//!
//! The paper's formats are *structural* encodings — they decide which
//! elements travel. Real storage and transfer stacks layer a second
//! compression stage on top of the index/value streams, trading transfer
//! bytes for decoder cycles: exactly the compression-ratio versus
//! decompression-latency trade-off (σ) Copernicus characterizes, one level
//! deeper.
//!
//! Three codecs are modeled, each a [`Codec`] reachable through the
//! [`codec_for`] registry (a static dispatch table in the style of chd-rs's
//! `Decompress` match):
//!
//! * **RLE** — byte-level run-length coding. Wins on the long zero/padding
//!   runs of Dense, ELL and DIA value streams.
//! * **Delta+varint** — interprets the stream as little-endian `u32` words,
//!   zigzag-delta-codes consecutive words and emits LEB128 varints. Built
//!   for sorted index streams (CSR `colInx`, offsets), where consecutive
//!   deltas are small.
//! * **Canonical Huffman** — order-0 entropy coding with a canonical code
//!   table, the coder/model split of websqz: the model is the byte
//!   histogram, the coder the canonical bit assignment.
//!
//! Every codec is *functional* (encode/decode round-trip, property-tested)
//! and carries a [`CodecCost`] — the cycles-per-byte second-stage decoder
//! model the pipeline adds to the compute stage. Streams where the coded
//! form would be larger than the structural form are transferred raw
//! (`coded_bytes == bytes`), so second-stage coding never inflates a
//! transfer; the cost model charges entropy-decode cycles only for streams
//! that actually shipped coded.

use std::fmt;
use std::str::FromStr;

/// Which second-stage codec a platform applies to its transfer streams.
///
/// `None` (the default) reproduces the paper's platform exactly: structural
/// encoding only, with every report bit-identical to the pre-codec model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum CodecKind {
    /// No second stage: streams travel structurally encoded, as in the
    /// paper.
    #[default]
    None,
    /// Byte-level run-length coding.
    Rle,
    /// Zigzag delta of little-endian `u32` words + LEB128 varints.
    DeltaVarint,
    /// Canonical order-0 Huffman coding.
    Huffman,
}

impl CodecKind {
    /// Every kind, registry order (`None` first).
    pub const ALL: [CodecKind; 4] = [
        CodecKind::None,
        CodecKind::Rle,
        CodecKind::DeltaVarint,
        CodecKind::Huffman,
    ];
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CodecKind::None => "none",
            CodecKind::Rle => "rle",
            CodecKind::DeltaVarint => "delta-varint",
            CodecKind::Huffman => "huffman",
        })
    }
}

impl FromStr for CodecKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(CodecKind::None),
            "rle" => Ok(CodecKind::Rle),
            "delta-varint" | "delta_varint" => Ok(CodecKind::DeltaVarint),
            "huffman" => Ok(CodecKind::Huffman),
            other => Err(format!(
                "unknown codec {other:?} (expected none, rle, delta-varint or huffman)"
            )),
        }
    }
}

/// A malformed coded stream handed to [`Codec::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// The codec that rejected the stream.
    pub codec: CodecKind,
    /// What was wrong with it.
    pub detail: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} decode failed: {}", self.codec, self.detail)
    }
}

impl std::error::Error for CodecError {}

fn err(codec: CodecKind, detail: impl Into<String>) -> CodecError {
    CodecError {
        codec,
        detail: detail.into(),
    }
}

/// The second-stage decoder cost model of one codec: a per-stream setup
/// charge (table builds, state resets) plus cycles per coded byte consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecCost {
    /// Fixed cycles to prime the decoder for one stream.
    pub setup_cycles: u64,
    /// Decoder cycles per *coded* byte consumed.
    pub cycles_per_byte: u64,
}

impl CodecCost {
    /// Decoder cycles for one stream of `coded_bytes` coded bytes.
    pub fn stream_cycles(&self, coded_bytes: u64) -> u64 {
        self.setup_cycles + self.cycles_per_byte * coded_bytes
    }
}

/// One second-stage stream codec: identity, transform, and decoder cost.
///
/// Implementations are stateless and `Sync`, so one static instance serves
/// every campaign worker.
pub trait Codec: Sync {
    /// The registry id of this codec.
    fn id(&self) -> CodecKind;

    /// Compresses `src`, appending the coded form to `out` (which is
    /// cleared first).
    fn encode_bytes(&self, src: &[u8], out: &mut Vec<u8>);

    /// Inverts [`Codec::encode_bytes`], appending the original bytes to
    /// `out` (cleared first).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] describing the first structural defect of a
    /// malformed coded stream.
    fn decode_bytes(&self, src: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError>;

    /// The second-stage decoder cost model.
    fn cost_model(&self) -> CodecCost;
}

/// The codec registry: the static dispatch table mapping a [`CodecKind`] to
/// its implementation. `CodecKind::None` has no implementation — the
/// pipeline skips the second stage entirely.
pub fn codec_for(kind: CodecKind) -> Option<&'static dyn Codec> {
    match kind {
        CodecKind::None => None,
        CodecKind::Rle => Some(&Rle),
        CodecKind::DeltaVarint => Some(&DeltaVarint),
        CodecKind::Huffman => Some(&Huffman),
    }
}

// ---------------------------------------------------------------------------
// RLE
// ---------------------------------------------------------------------------

/// Byte-level run-length coding: `(count, byte)` pairs with `1 <= count <=
/// 255`. A stream that is mostly padding zeros (Dense/ELL/DIA values)
/// collapses dramatically; incompressible streams double, which the
/// store-raw escape in the encode path absorbs.
#[derive(Debug)]
pub struct Rle;

impl Codec for Rle {
    fn id(&self) -> CodecKind {
        CodecKind::Rle
    }

    fn encode_bytes(&self, src: &[u8], out: &mut Vec<u8>) {
        out.clear();
        let mut i = 0;
        while i < src.len() {
            let byte = src[i];
            let mut run = 1usize;
            while run < 255 && i + run < src.len() && src[i + run] == byte {
                run += 1;
            }
            out.push(run as u8);
            out.push(byte);
            i += run;
        }
    }

    fn decode_bytes(&self, src: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        if !src.len().is_multiple_of(2) {
            return Err(err(self.id(), "odd-length run list"));
        }
        for pair in src.chunks_exact(2) {
            let (count, byte) = (pair[0], pair[1]);
            if count == 0 {
                return Err(err(self.id(), "zero-length run"));
            }
            out.resize(out.len() + count as usize, byte);
        }
        Ok(())
    }

    fn cost_model(&self) -> CodecCost {
        // One pipelined table-free expansion per coded byte.
        CodecCost {
            setup_cycles: 0,
            cycles_per_byte: 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Delta + varint
// ---------------------------------------------------------------------------

/// Zigzag delta + LEB128 varint coding over little-endian `u32` words.
///
/// Wire format: one header byte holding the count of trailing raw bytes
/// (`len % 4`, i.e. 0..=3), then the varint region, then the raw tail
/// verbatim. Varints are self-delimiting, so the decoder consumes them
/// until only the tail remains.
#[derive(Debug)]
pub struct DeltaVarint;

fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

impl Codec for DeltaVarint {
    fn id(&self) -> CodecKind {
        CodecKind::DeltaVarint
    }

    fn encode_bytes(&self, src: &[u8], out: &mut Vec<u8>) {
        out.clear();
        let tail = src.len() % 4;
        out.push(tail as u8);
        let mut prev = 0u32;
        for word in src[..src.len() - tail].chunks_exact(4) {
            let w = u32::from_le_bytes([word[0], word[1], word[2], word[3]]);
            let mut zz = zigzag(w.wrapping_sub(prev) as i32);
            prev = w;
            loop {
                if zz < 0x80 {
                    out.push(zz as u8);
                    break;
                }
                out.push((zz as u8 & 0x7f) | 0x80);
                zz >>= 7;
            }
        }
        out.extend_from_slice(&src[src.len() - tail..]);
    }

    fn decode_bytes(&self, src: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        let Some((&tail, body)) = src.split_first() else {
            return Err(err(self.id(), "missing tail header"));
        };
        let tail = tail as usize;
        if tail > 3 {
            return Err(err(self.id(), format!("tail count {tail} exceeds 3")));
        }
        if tail > body.len() {
            return Err(err(self.id(), "tail longer than body"));
        }
        let (varints, raw_tail) = body.split_at(body.len() - tail);
        let mut prev = 0u32;
        let mut i = 0;
        while i < varints.len() {
            let mut zz = 0u32;
            let mut shift = 0u32;
            loop {
                let Some(&b) = varints.get(i) else {
                    return Err(err(self.id(), "truncated varint"));
                };
                i += 1;
                if shift >= 32 || (shift == 28 && (b & 0x7f) > 0x0f) {
                    return Err(err(self.id(), "varint overflows u32"));
                }
                zz |= u32::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            let word = prev.wrapping_add(unzigzag(zz) as u32);
            prev = word;
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.extend_from_slice(raw_tail);
        Ok(())
    }

    fn cost_model(&self) -> CodecCost {
        // Shift-accumulate per coded byte, prefix-sum per word — one cycle
        // per coded byte in a pipelined decoder.
        CodecCost {
            setup_cycles: 0,
            cycles_per_byte: 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical Huffman
// ---------------------------------------------------------------------------

/// Canonical order-0 Huffman coding.
///
/// Wire format: 4-byte little-endian original length, 256 code-length
/// bytes (the canonical table — the "model"), then the MSB-first bitstream
/// (the "coder"). Codes are assigned canonically by `(length, symbol)`, so
/// encoder and decoder derive identical tables from the lengths alone.
#[derive(Debug)]
pub struct Huffman;

/// Builds code lengths from byte frequencies: repeatedly merge the two
/// lightest subtrees, ties broken by smallest member symbol — fully
/// deterministic, no heap required at a 256-symbol alphabet. A single
/// distinct symbol gets length 1. Depths stay far below 64 for any input
/// under ~10 TB (a depth-`d` code needs Fibonacci-scale frequencies).
fn code_lengths(counts: &[u64; 256]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let mut nodes: Vec<(u64, u8, Vec<u8>)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(s, &c)| (c, s as u8, vec![s as u8]))
        .collect();
    if nodes.len() == 1 {
        lengths[nodes[0].1 as usize] = 1;
        return lengths;
    }
    while nodes.len() > 1 {
        nodes.sort_by_key(|&(freq, min_sym, _)| (freq, min_sym));
        let (fa, _, ma) = nodes.remove(0);
        let (fb, mb_sym, mut mb) = nodes.remove(0);
        for &s in ma.iter().chain(mb.iter()) {
            lengths[s as usize] += 1;
        }
        let min_sym = ma[0].min(mb_sym);
        let mut members = ma;
        members.append(&mut mb);
        nodes.push((fa + fb, min_sym, members));
    }
    lengths
}

/// Canonical code assignment: symbols sorted by `(length, symbol)`, codes
/// counted up and left-shifted at each length increase.
fn canonical_codes(lengths: &[u8; 256]) -> Vec<(u8, u64, u8)> {
    let mut order: Vec<(u8, u8)> = lengths
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l > 0)
        .map(|(s, &l)| (l, s as u8))
        .collect();
    order.sort_unstable();
    let mut codes = Vec::with_capacity(order.len());
    let mut next = 0u64;
    let mut last_len = 0u8;
    for &(len, sym) in &order {
        next <<= u32::from(len - last_len);
        codes.push((sym, next, len));
        next += 1;
        last_len = len;
    }
    codes
}

impl Codec for Huffman {
    fn id(&self) -> CodecKind {
        CodecKind::Huffman
    }

    fn encode_bytes(&self, src: &[u8], out: &mut Vec<u8>) {
        out.clear();
        debug_assert!(src.len() <= u32::MAX as usize, "stream exceeds u32 length");
        out.extend_from_slice(&(src.len() as u32).to_le_bytes());
        let mut counts = [0u64; 256];
        for &b in src {
            counts[b as usize] += 1;
        }
        let lengths = code_lengths(&counts);
        out.extend_from_slice(&lengths);
        let mut table = [(0u64, 0u8); 256];
        for (sym, code, len) in canonical_codes(&lengths) {
            table[sym as usize] = (code, len);
        }
        let mut bit_buf = 0u64;
        let mut bit_count = 0u32;
        for &b in src {
            let (code, len) = table[b as usize];
            bit_buf = (bit_buf << len) | code;
            bit_count += u32::from(len);
            while bit_count >= 8 {
                bit_count -= 8;
                out.push((bit_buf >> bit_count) as u8);
            }
        }
        if bit_count > 0 {
            out.push((bit_buf << (8 - bit_count)) as u8);
        }
    }

    fn decode_bytes(&self, src: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        if src.len() < 4 + 256 {
            return Err(err(self.id(), "header shorter than 260 bytes"));
        }
        let n = u32::from_le_bytes([src[0], src[1], src[2], src[3]]) as usize;
        let mut lengths = [0u8; 256];
        lengths.copy_from_slice(&src[4..260]);
        let bits = &src[260..];
        if n == 0 {
            return Ok(());
        }
        let codes = canonical_codes(&lengths);
        if codes.is_empty() {
            return Err(err(self.id(), "no symbols in the code table"));
        }
        // Canonical decode tables indexed by code length.
        let max_len = codes.iter().map(|&(_, _, l)| l).max().unwrap_or(0) as usize;
        let mut first_code = vec![0u64; max_len + 1];
        let mut first_index = vec![0usize; max_len + 1];
        let mut count = vec![0usize; max_len + 1];
        for (i, &(_, code, len)) in codes.iter().enumerate() {
            let l = len as usize;
            if count[l] == 0 {
                first_code[l] = code;
                first_index[l] = i;
            }
            count[l] += 1;
        }
        let mut code = 0u64;
        let mut len = 0usize;
        let mut bit = 0usize;
        while out.len() < n {
            let Some(&byte) = bits.get(bit / 8) else {
                return Err(err(self.id(), "bitstream ends before all symbols"));
            };
            code = (code << 1) | u64::from((byte >> (7 - bit % 8)) & 1);
            len += 1;
            bit += 1;
            if len > max_len {
                return Err(err(self.id(), "bit pattern matches no code"));
            }
            if count[len] > 0
                && code >= first_code[len]
                && code < first_code[len] + count[len] as u64
            {
                let idx = first_index[len] + (code - first_code[len]) as usize;
                out.push(codes[idx].0);
                code = 0;
                len = 0;
            }
        }
        Ok(())
    }

    fn cost_model(&self) -> CodecCost {
        // Canonical-table rebuild per stream, then a two-cycle
        // shift/compare/emit loop per coded byte.
        CodecCost {
            setup_cycles: 64,
            cycles_per_byte: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &dyn Codec, src: &[u8]) -> Vec<u8> {
        let mut coded = Vec::new();
        codec.encode_bytes(src, &mut coded);
        let mut back = Vec::new();
        codec
            .decode_bytes(&coded, &mut back)
            .unwrap_or_else(|e| panic!("{e} on {src:?} -> {coded:?}"));
        assert_eq!(back, src, "{} round trip", codec.id());
        coded
    }

    fn samples() -> Vec<Vec<u8>> {
        vec![
            vec![],
            vec![0],
            vec![7; 1000],
            (0..=255u8).collect(),
            (0..64u32).flat_map(|i| (i * 3).to_le_bytes()).collect(),
            vec![1, 2, 3],           // non-word-aligned tail
            vec![0xff; 513],         // long run crossing the 255 cap
            b"abracadabra".to_vec(), // skewed histogram
            (0..97u8).map(|i| i.wrapping_mul(53)).collect(),
        ]
    }

    #[test]
    fn every_codec_round_trips_the_samples() {
        for kind in [CodecKind::Rle, CodecKind::DeltaVarint, CodecKind::Huffman] {
            let codec = codec_for(kind).expect("registered");
            assert_eq!(codec.id(), kind);
            for s in samples() {
                roundtrip(codec, &s);
            }
        }
    }

    #[test]
    fn registry_covers_every_kind_once() {
        assert!(codec_for(CodecKind::None).is_none());
        for kind in CodecKind::ALL {
            if kind == CodecKind::None {
                continue;
            }
            assert_eq!(codec_for(kind).expect("registered").id(), kind);
        }
    }

    #[test]
    fn kind_parses_and_displays_symmetrically() {
        for kind in CodecKind::ALL {
            assert_eq!(kind.to_string().parse::<CodecKind>(), Ok(kind));
        }
        assert_eq!(
            "delta_varint".parse::<CodecKind>(),
            Ok(CodecKind::DeltaVarint)
        );
        assert!("zstd".parse::<CodecKind>().is_err());
        assert_eq!(CodecKind::default(), CodecKind::None);
    }

    #[test]
    fn rle_collapses_runs_and_rejects_malformed_input() {
        let mut coded = Vec::new();
        Rle.encode_bytes(&[0u8; 600], &mut coded);
        assert_eq!(coded, vec![255, 0, 255, 0, 90, 0]);
        let mut out = Vec::new();
        assert!(Rle.decode_bytes(&[1], &mut out).is_err(), "odd length");
        assert!(Rle.decode_bytes(&[0, 7], &mut out).is_err(), "zero run");
    }

    #[test]
    fn delta_varint_shrinks_sorted_index_streams() {
        // A sorted u32 index stream (deltas of 1) codes to ~1 byte per
        // 4-byte word plus the header.
        let src: Vec<u8> = (100..400u32).flat_map(|i| i.to_le_bytes()).collect();
        let coded = roundtrip(&DeltaVarint, &src);
        assert!(
            coded.len() < src.len() / 3,
            "{} vs {}",
            coded.len(),
            src.len()
        );
    }

    #[test]
    fn delta_varint_rejects_malformed_input() {
        let mut out = Vec::new();
        assert!(DeltaVarint.decode_bytes(&[], &mut out).is_err());
        assert!(
            DeltaVarint.decode_bytes(&[9], &mut out).is_err(),
            "bad tail"
        );
        assert!(
            DeltaVarint.decode_bytes(&[0, 0x80], &mut out).is_err(),
            "truncated varint"
        );
        assert!(
            DeltaVarint
                .decode_bytes(&[0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut out)
                .is_err(),
            "varint overflow"
        );
    }

    #[test]
    fn huffman_beats_raw_on_skewed_streams_and_rejects_malformed_input() {
        let mut src = vec![0u8; 4000];
        src.extend_from_slice(&[1u8; 100]);
        let coded = roundtrip(&Huffman, &src);
        assert!(coded.len() < src.len() / 2, "{}", coded.len());
        let mut out = Vec::new();
        assert!(Huffman.decode_bytes(&[0; 10], &mut out).is_err(), "short");
        // Valid header claiming 4 symbols but an empty code table.
        let mut bad = vec![4, 0, 0, 0];
        bad.extend_from_slice(&[0u8; 256]);
        assert!(Huffman.decode_bytes(&bad, &mut out).is_err());
        // Claiming more symbols than the bitstream holds.
        let mut coded = Vec::new();
        Huffman.encode_bytes(b"aab", &mut coded);
        coded[0] = 200;
        assert!(Huffman.decode_bytes(&coded, &mut out).is_err());
    }

    #[test]
    fn cost_models_are_ordered_by_decoder_complexity() {
        let rle = Rle.cost_model();
        let dv = DeltaVarint.cost_model();
        let huff = Huffman.cost_model();
        assert_eq!(rle.stream_cycles(100), 100);
        assert_eq!(dv.stream_cycles(100), 100);
        assert_eq!(huff.stream_cycles(100), 64 + 200);
        assert!(huff.cycles_per_byte > rle.cycles_per_byte);
    }
}
