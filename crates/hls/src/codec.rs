//! Second-stage stream codecs: entropy/transform coding layered over the
//! per-format transfer streams of [`EncodedPartition`](crate::EncodedPartition).
//!
//! The paper's formats are *structural* encodings — they decide which
//! elements travel. Real storage and transfer stacks layer a second
//! compression stage on top of the index/value streams, trading transfer
//! bytes for decoder cycles: exactly the compression-ratio versus
//! decompression-latency trade-off (σ) Copernicus characterizes, one level
//! deeper.
//!
//! Three codecs are modeled, each a [`Codec`] reachable through the
//! [`codec_for`] registry (a static dispatch table in the style of chd-rs's
//! `Decompress` match):
//!
//! * **RLE** — byte-level run-length coding. Wins on the long zero/padding
//!   runs of Dense, ELL and DIA value streams.
//! * **Delta+varint** — interprets the stream as little-endian `u32` words,
//!   zigzag-delta-codes consecutive words and emits LEB128 varints. Built
//!   for sorted index streams (CSR `colInx`, offsets), where consecutive
//!   deltas are small.
//! * **Canonical Huffman** — order-0 entropy coding with a canonical code
//!   table, the coder/model split of websqz: the model is the byte
//!   histogram, the coder the canonical bit assignment.
//!
//! Every codec is *functional* (encode/decode round-trip, property-tested)
//! and carries a [`CodecCost`] — the cycles-per-byte second-stage decoder
//! model the pipeline adds to the compute stage. Streams where the coded
//! form would be larger than the structural form are transferred raw
//! (`coded_bytes == bytes`), so second-stage coding never inflates a
//! transfer; the cost model charges entropy-decode cycles only for streams
//! that actually shipped coded.

use std::fmt;
use std::str::FromStr;

/// Which second-stage codec a platform applies to its transfer streams.
///
/// `None` (the default) reproduces the paper's platform exactly: structural
/// encoding only, with every report bit-identical to the pre-codec model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum CodecKind {
    /// No second stage: streams travel structurally encoded, as in the
    /// paper.
    #[default]
    None,
    /// Byte-level run-length coding.
    Rle,
    /// Zigzag delta of little-endian `u32` words + LEB128 varints.
    DeltaVarint,
    /// Canonical order-0 Huffman coding.
    Huffman,
}

impl CodecKind {
    /// Every kind, registry order (`None` first).
    pub const ALL: [CodecKind; 4] = [
        CodecKind::None,
        CodecKind::Rle,
        CodecKind::DeltaVarint,
        CodecKind::Huffman,
    ];
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CodecKind::None => "none",
            CodecKind::Rle => "rle",
            CodecKind::DeltaVarint => "delta-varint",
            CodecKind::Huffman => "huffman",
        })
    }
}

impl FromStr for CodecKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(CodecKind::None),
            "rle" => Ok(CodecKind::Rle),
            "delta-varint" | "delta_varint" => Ok(CodecKind::DeltaVarint),
            "huffman" => Ok(CodecKind::Huffman),
            other => Err(format!(
                "unknown codec {other:?} (expected none, rle, delta-varint or huffman)"
            )),
        }
    }
}

/// A stream a codec cannot handle: a malformed coded stream handed to
/// [`Codec::decode_bytes`], or an input [`Codec::encode_bytes`] cannot
/// represent on the wire (e.g. a stream longer than Huffman's `u32` length
/// header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// The codec that rejected the stream.
    pub codec: CodecKind,
    /// What was wrong with it.
    pub detail: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} codec failed: {}", self.codec, self.detail)
    }
}

impl std::error::Error for CodecError {}

fn err(codec: CodecKind, detail: impl Into<String>) -> CodecError {
    CodecError {
        codec,
        detail: detail.into(),
    }
}

/// The second-stage decoder cost model of one codec: a per-stream setup
/// charge (table builds, state resets) plus cycles per coded byte consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecCost {
    /// Fixed cycles to prime the decoder for one stream.
    pub setup_cycles: u64,
    /// Decoder cycles per *coded* byte consumed.
    pub cycles_per_byte: u64,
}

impl CodecCost {
    /// Decoder cycles for one stream of `coded_bytes` coded bytes.
    pub fn stream_cycles(&self, coded_bytes: u64) -> u64 {
        self.setup_cycles + self.cycles_per_byte * coded_bytes
    }
}

/// Reusable decoder state pooled through
/// [`EncodeScratch`](crate::EncodeScratch) so steady-state decoding
/// allocates nothing: the Huffman primary lookup table keeps its capacity
/// between streams, and the other codecs need no state at all.
#[derive(Debug, Default)]
pub struct CodecScratch {
    /// Huffman primary lookup table, `1 << min(max_len, PRIMARY_BITS)`
    /// entries packed as `(symbol << 4) | code_len` (`0` = no short code).
    primary: Vec<u16>,
}

impl CodecScratch {
    /// A fresh scratch with no capacity reserved yet.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One second-stage stream codec: identity, transform, and decoder cost.
///
/// Implementations are stateless and `Sync`, so one static instance serves
/// every campaign worker.
pub trait Codec: Sync {
    /// The registry id of this codec.
    fn id(&self) -> CodecKind;

    /// Compresses `src`, appending the coded form to `out` (which is
    /// cleared first).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when `src` cannot be represented in the
    /// codec's wire format (e.g. longer than Huffman's `u32` length
    /// header). `out` is left empty in that case so a truncated stream can
    /// never ship.
    fn encode_bytes(&self, src: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError>;

    /// Inverts [`Codec::encode_bytes`], appending the original bytes to
    /// `out` (cleared first), reusing `scratch` so warm decoding allocates
    /// nothing beyond `out` itself.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] describing the first structural defect of a
    /// malformed coded stream.
    fn decode_bytes_with(
        &self,
        src: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut CodecScratch,
    ) -> Result<(), CodecError>;

    /// [`Codec::decode_bytes_with`] against a throwaway scratch — the
    /// convenience form for one-shot decodes.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] describing the first structural defect of a
    /// malformed coded stream.
    fn decode_bytes(&self, src: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        self.decode_bytes_with(src, out, &mut CodecScratch::new())
    }

    /// The second-stage decoder cost model.
    fn cost_model(&self) -> CodecCost;
}

/// The codec registry: the static dispatch table mapping a [`CodecKind`] to
/// its implementation. `CodecKind::None` has no implementation — the
/// pipeline skips the second stage entirely.
pub fn codec_for(kind: CodecKind) -> Option<&'static dyn Codec> {
    match kind {
        CodecKind::None => None,
        CodecKind::Rle => Some(&Rle),
        CodecKind::DeltaVarint => Some(&DeltaVarint),
        CodecKind::Huffman => Some(&Huffman),
    }
}

// ---------------------------------------------------------------------------
// RLE
// ---------------------------------------------------------------------------

/// Byte-level run-length coding: `(count, byte)` pairs with `1 <= count <=
/// 255`. A stream that is mostly padding zeros (Dense/ELL/DIA values)
/// collapses dramatically; incompressible streams double, which the
/// store-raw escape in the encode path absorbs.
#[derive(Debug)]
pub struct Rle;

impl Codec for Rle {
    fn id(&self) -> CodecKind {
        CodecKind::Rle
    }

    fn encode_bytes(&self, src: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        let mut i = 0;
        while i < src.len() {
            let byte = src[i];
            let limit = src.len().min(i + 255);
            // Extend the run a word at a time while 8 bytes repeat, then
            // byte-at-a-time to the exact boundary — same runs as the
            // scalar scan, one compare per 8 bytes on long runs.
            let pattern = u64::from_ne_bytes([byte; 8]);
            let mut j = i + 1;
            while j + 8 <= limit {
                let mut word = [0u8; 8];
                word.copy_from_slice(&src[j..j + 8]);
                if u64::from_ne_bytes(word) != pattern {
                    break;
                }
                j += 8;
            }
            while j < limit && src[j] == byte {
                j += 1;
            }
            out.push((j - i) as u8);
            out.push(byte);
            i = j;
        }
        Ok(())
    }

    fn decode_bytes_with(
        &self,
        src: &[u8],
        out: &mut Vec<u8>,
        _scratch: &mut CodecScratch,
    ) -> Result<(), CodecError> {
        out.clear();
        if !src.len().is_multiple_of(2) {
            return Err(err(self.id(), "odd-length run list"));
        }
        for pair in src.chunks_exact(2) {
            let (count, byte) = (pair[0], pair[1]);
            if count == 0 {
                return Err(err(self.id(), "zero-length run"));
            }
            out.resize(out.len() + count as usize, byte);
        }
        Ok(())
    }

    fn cost_model(&self) -> CodecCost {
        // One pipelined table-free expansion per coded byte.
        CodecCost {
            setup_cycles: 0,
            cycles_per_byte: 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Delta + varint
// ---------------------------------------------------------------------------

/// Zigzag delta + LEB128 varint coding over little-endian `u32` words.
///
/// Wire format: one header byte holding the count of trailing raw bytes
/// (`len % 4`, i.e. 0..=3), then the varint region, then the raw tail
/// verbatim. Varints are self-delimiting, so the decoder consumes them
/// until only the tail remains.
#[derive(Debug)]
pub struct DeltaVarint;

fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

impl Codec for DeltaVarint {
    fn id(&self) -> CodecKind {
        CodecKind::DeltaVarint
    }

    fn encode_bytes(&self, src: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        let tail = src.len() % 4;
        out.push(tail as u8);
        let mut prev = 0u32;
        for word in src[..src.len() - tail].chunks_exact(4) {
            let w = u32::from_le_bytes([word[0], word[1], word[2], word[3]]);
            let mut zz = zigzag(w.wrapping_sub(prev) as i32);
            prev = w;
            loop {
                if zz < 0x80 {
                    out.push(zz as u8);
                    break;
                }
                out.push((zz as u8 & 0x7f) | 0x80);
                zz >>= 7;
            }
        }
        out.extend_from_slice(&src[src.len() - tail..]);
        Ok(())
    }

    fn decode_bytes_with(
        &self,
        src: &[u8],
        out: &mut Vec<u8>,
        _scratch: &mut CodecScratch,
    ) -> Result<(), CodecError> {
        out.clear();
        let Some((&tail, body)) = src.split_first() else {
            return Err(err(self.id(), "missing tail header"));
        };
        let tail = tail as usize;
        if tail > 3 {
            return Err(err(self.id(), format!("tail count {tail} exceeds 3")));
        }
        if tail > body.len() {
            return Err(err(self.id(), "tail longer than body"));
        }
        let (varints, raw_tail) = body.split_at(body.len() - tail);
        let mut prev = 0u32;
        let mut i = 0;
        while i < varints.len() {
            let mut zz = 0u32;
            let mut shift = 0u32;
            loop {
                let Some(&b) = varints.get(i) else {
                    return Err(err(self.id(), "truncated varint"));
                };
                i += 1;
                if shift >= 32 || (shift == 28 && (b & 0x7f) > 0x0f) {
                    return Err(err(self.id(), "varint overflows u32"));
                }
                zz |= u32::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            let word = prev.wrapping_add(unzigzag(zz) as u32);
            prev = word;
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.extend_from_slice(raw_tail);
        Ok(())
    }

    fn cost_model(&self) -> CodecCost {
        // Shift-accumulate per coded byte, prefix-sum per word — one cycle
        // per coded byte in a pipelined decoder.
        CodecCost {
            setup_cycles: 0,
            cycles_per_byte: 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical Huffman
// ---------------------------------------------------------------------------

/// Canonical order-0 Huffman coding.
///
/// Wire format: 4-byte little-endian original length, 256 code-length
/// bytes (the canonical table — the "model"), then the MSB-first bitstream
/// (the "coder"). Codes are assigned canonically by `(length, symbol)`, so
/// encoder and decoder derive identical tables from the lengths alone.
#[derive(Debug)]
pub struct Huffman;

/// Maximum node count of a 256-leaf Huffman merge tree: 256 leaves plus
/// 255 internal nodes.
const MAX_NODES: usize = 511;

/// Width of the primary decode lookup table in bits (capped by the actual
/// maximum code length). 11 bits covers every code of the characterized
/// stream histograms while keeping the table at 2 KiB of `u16`s.
const PRIMARY_BITS: usize = 11;

/// Builds code lengths from byte frequencies: repeatedly merge the two
/// lightest subtrees, ties broken by smallest member symbol — fully
/// deterministic, no heap required at a 256-symbol alphabet. A single
/// distinct symbol gets length 1. Depths stay far below 64 for any input
/// under ~10 TB (a depth-`d` code needs Fibonacci-scale frequencies).
///
/// The merge tracks parent pointers over a fixed arena instead of per-node
/// member lists: each subtree carries its `head` (first member symbol, in
/// the order the old list-based merge concatenated members) and a `stored`
/// tie-break symbol updated as `a.head.min(b.stored)` — exactly the
/// `ma[0].min(mb_sym)` rule of the list-based merge, so the resulting
/// lengths (and thus every coded byte) are bit-identical. `(freq, stored)`
/// keys are unique: `stored` is always a member of the subtree and
/// subtrees are disjoint.
fn code_lengths(counts: &[u64; 256]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let mut freq = [0u64; MAX_NODES];
    let mut stored = [0u8; MAX_NODES];
    let mut head = [0u8; MAX_NODES];
    let mut parent = [u16::MAX; MAX_NODES];
    // Live roots, as indices into the arena.
    let mut active = [0u16; MAX_NODES];
    let mut leaves = 0usize;
    for (s, &c) in counts.iter().enumerate() {
        if c > 0 {
            freq[leaves] = c;
            stored[leaves] = s as u8;
            head[leaves] = s as u8;
            active[leaves] = leaves as u16;
            leaves += 1;
        }
    }
    if leaves == 1 {
        lengths[stored[0] as usize] = 1;
        return lengths;
    }
    let mut live = leaves;
    let mut next_node = leaves;
    while live > 1 {
        // The two smallest live roots by (freq, stored) — the same pair the
        // sort-and-pop merge selected.
        let mut ai = 0usize;
        for i in 1..live {
            let (n, b) = (active[i] as usize, active[ai] as usize);
            if (freq[n], stored[n]) < (freq[b], stored[b]) {
                ai = i;
            }
        }
        let a = active[ai] as usize;
        active[ai] = active[live - 1];
        live -= 1;
        let mut bi = 0usize;
        for i in 1..live {
            let (n, b) = (active[i] as usize, active[bi] as usize);
            if (freq[n], stored[n]) < (freq[b], stored[b]) {
                bi = i;
            }
        }
        let b = active[bi] as usize;
        freq[next_node] = freq[a] + freq[b];
        head[next_node] = head[a];
        stored[next_node] = head[a].min(stored[b]);
        parent[a] = next_node as u16;
        parent[b] = next_node as u16;
        active[bi] = next_node as u16;
        next_node += 1;
    }
    for leaf in 0..leaves {
        let mut depth = 0u8;
        let mut node = leaf;
        while parent[node] != u16::MAX {
            node = parent[node] as usize;
            depth += 1;
        }
        lengths[stored[leaf] as usize] = depth;
    }
    lengths
}

/// One canonical code: `(symbol, code bits, length)`.
type CanonicalCode = (u8, u64, u8);

/// Canonical code assignment into a caller-provided table: symbols sorted
/// by `(length, symbol)`, codes counted up and left-shifted at each length
/// increase. Returns the number of coded symbols.
fn canonical_codes_into(lengths: &[u8; 256], codes: &mut [CanonicalCode; 256]) -> usize {
    let mut n = 0;
    for (s, &l) in lengths.iter().enumerate() {
        if l > 0 {
            codes[n] = (s as u8, 0, l);
            n += 1;
        }
    }
    // Unique (length, symbol) keys, so the unstable sort is deterministic.
    codes[..n].sort_unstable_by_key(|&(sym, _, len)| (len, sym));
    let mut next = 0u64;
    let mut last_len = 0u8;
    for c in &mut codes[..n] {
        next <<= u32::from(c.2 - last_len);
        c.1 = next;
        next += 1;
        last_len = c.2;
    }
    n
}

/// The next `width` bits of `bits` starting at bit `pos`, MSB-first,
/// zero-padded past the end of the stream. `width <= PRIMARY_BITS`, so the
/// window always fits three bytes.
#[inline]
fn peek_bits(bits: &[u8], pos: usize, width: usize) -> usize {
    let byte = pos / 8;
    let shift = pos % 8;
    let b0 = u32::from(bits.get(byte).copied().unwrap_or(0));
    let b1 = u32::from(bits.get(byte + 1).copied().unwrap_or(0));
    let b2 = u32::from(bits.get(byte + 2).copied().unwrap_or(0));
    let window = (b0 << 16) | (b1 << 8) | b2;
    ((window >> (24 - shift - width)) & ((1 << width) - 1)) as usize
}

impl Codec for Huffman {
    fn id(&self) -> CodecKind {
        CodecKind::Huffman
    }

    fn encode_bytes(&self, src: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        if src.len() > u32::MAX as usize {
            return Err(err(
                self.id(),
                format!(
                    "stream of {} bytes exceeds the u32 length header",
                    src.len()
                ),
            ));
        }
        out.extend_from_slice(&(src.len() as u32).to_le_bytes());
        // Four independent sub-histograms keep the count chains out of each
        // other's way; u64 adds commute, so the merged counts are exact.
        let mut lanes = [[0u64; 256]; 4];
        let mut chunks = src.chunks_exact(4);
        for quad in chunks.by_ref() {
            lanes[0][quad[0] as usize] += 1;
            lanes[1][quad[1] as usize] += 1;
            lanes[2][quad[2] as usize] += 1;
            lanes[3][quad[3] as usize] += 1;
        }
        for &b in chunks.remainder() {
            lanes[0][b as usize] += 1;
        }
        let mut counts = [0u64; 256];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = lanes[0][i] + lanes[1][i] + lanes[2][i] + lanes[3][i];
        }
        let lengths = code_lengths(&counts);
        out.extend_from_slice(&lengths);
        let mut codes = [(0u8, 0u64, 0u8); 256];
        let ncodes = canonical_codes_into(&lengths, &mut codes);
        let mut table = [(0u64, 0u8); 256];
        for &(sym, code, len) in &codes[..ncodes] {
            table[sym as usize] = (code, len);
        }
        let mut bit_buf = 0u64;
        let mut bit_count = 0u32;
        for &b in src {
            let (code, len) = table[b as usize];
            bit_buf = (bit_buf << len) | code;
            bit_count += u32::from(len);
            while bit_count >= 8 {
                bit_count -= 8;
                out.push((bit_buf >> bit_count) as u8);
            }
        }
        if bit_count > 0 {
            out.push((bit_buf << (8 - bit_count)) as u8);
        }
        Ok(())
    }

    fn decode_bytes_with(
        &self,
        src: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut CodecScratch,
    ) -> Result<(), CodecError> {
        out.clear();
        if src.len() < 4 + 256 {
            return Err(err(self.id(), "header shorter than 260 bytes"));
        }
        let n = u32::from_le_bytes([src[0], src[1], src[2], src[3]]) as usize;
        let mut lengths = [0u8; 256];
        lengths.copy_from_slice(&src[4..260]);
        let bits = &src[260..];
        if n == 0 {
            return Ok(());
        }
        let mut code_table = [(0u8, 0u64, 0u8); 256];
        let ncodes = canonical_codes_into(&lengths, &mut code_table);
        if ncodes == 0 {
            return Err(err(self.id(), "no symbols in the code table"));
        }
        let codes = &code_table[..ncodes];
        // Canonical decode tables indexed by code length; a wire length
        // byte can claim up to 255 bits, so the per-length arrays span the
        // full u8 range on the stack.
        let max_len = codes.iter().map(|&(_, _, l)| l).max().unwrap_or(0) as usize;
        let mut first_code = [0u64; 256];
        let mut first_index = [0usize; 256];
        let mut count = [0usize; 256];
        for (i, &(_, code, len)) in codes.iter().enumerate() {
            let l = len as usize;
            if count[l] == 0 {
                first_code[l] = code;
                first_index[l] = i;
            }
            count[l] += 1;
        }
        // Primary lookup table over the next `primary_bits` bits. Codes are
        // walked longest-first so a shorter code overwrites the aligned
        // subranges of any longer one, reproducing the bit-at-a-time
        // walk's shortest-match-first semantics even for tables that are
        // not prefix-free (possible on malformed input).
        let primary_bits = max_len.min(PRIMARY_BITS);
        scratch.primary.clear();
        scratch.primary.resize(1 << primary_bits, 0u16);
        for &(sym, code, len) in codes.iter().rev() {
            let len = len as usize;
            if len > primary_bits || code >= 1u64 << len {
                continue;
            }
            let base = (code as usize) << (primary_bits - len);
            let span = 1usize << (primary_bits - len);
            let entry = (u16::from(sym) << 4) | len as u16;
            for slot in &mut scratch.primary[base..base + span] {
                *slot = entry;
            }
        }
        let total_bits = bits.len() * 8;
        let mut pos = 0usize;
        'symbols: while out.len() < n {
            let entry = scratch.primary[peek_bits(bits, pos, primary_bits)];
            let hit_len = (entry & 0xf) as usize;
            if hit_len != 0 && pos + hit_len <= total_bits {
                out.push((entry >> 4) as u8);
                pos += hit_len;
                continue;
            }
            // Slow path — codes longer than the primary table, the stream
            // tail, and malformed tables: the bit-at-a-time canonical walk,
            // preserving its exact error reporting.
            let mut code = 0u64;
            let mut len = 0usize;
            loop {
                if pos >= total_bits {
                    return Err(err(self.id(), "bitstream ends before all symbols"));
                }
                code = (code << 1) | u64::from((bits[pos / 8] >> (7 - pos % 8)) & 1);
                pos += 1;
                len += 1;
                if len > max_len {
                    return Err(err(self.id(), "bit pattern matches no code"));
                }
                if count[len] > 0
                    && code >= first_code[len]
                    && code < first_code[len] + count[len] as u64
                {
                    let idx = first_index[len] + (code - first_code[len]) as usize;
                    out.push(codes[idx].0);
                    continue 'symbols;
                }
            }
        }
        Ok(())
    }

    fn cost_model(&self) -> CodecCost {
        // Canonical-table rebuild per stream, then a two-cycle
        // shift/compare/emit loop per coded byte.
        CodecCost {
            setup_cycles: 64,
            cycles_per_byte: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &dyn Codec, src: &[u8]) -> Vec<u8> {
        let mut coded = Vec::new();
        codec.encode_bytes(src, &mut coded).expect("encodable");
        let mut back = Vec::new();
        codec
            .decode_bytes(&coded, &mut back)
            .unwrap_or_else(|e| panic!("{e} on {src:?} -> {coded:?}"));
        assert_eq!(back, src, "{} round trip", codec.id());
        coded
    }

    fn samples() -> Vec<Vec<u8>> {
        vec![
            vec![],
            vec![0],
            vec![7; 1000],
            (0..=255u8).collect(),
            (0..64u32).flat_map(|i| (i * 3).to_le_bytes()).collect(),
            vec![1, 2, 3],           // non-word-aligned tail
            vec![0xff; 513],         // long run crossing the 255 cap
            b"abracadabra".to_vec(), // skewed histogram
            (0..97u8).map(|i| i.wrapping_mul(53)).collect(),
        ]
    }

    #[test]
    fn every_codec_round_trips_the_samples() {
        for kind in [CodecKind::Rle, CodecKind::DeltaVarint, CodecKind::Huffman] {
            let codec = codec_for(kind).expect("registered");
            assert_eq!(codec.id(), kind);
            for s in samples() {
                roundtrip(codec, &s);
            }
        }
    }

    #[test]
    fn registry_covers_every_kind_once() {
        assert!(codec_for(CodecKind::None).is_none());
        for kind in CodecKind::ALL {
            if kind == CodecKind::None {
                continue;
            }
            assert_eq!(codec_for(kind).expect("registered").id(), kind);
        }
    }

    #[test]
    fn kind_parses_and_displays_symmetrically() {
        for kind in CodecKind::ALL {
            assert_eq!(kind.to_string().parse::<CodecKind>(), Ok(kind));
        }
        assert_eq!(
            "delta_varint".parse::<CodecKind>(),
            Ok(CodecKind::DeltaVarint)
        );
        assert!("zstd".parse::<CodecKind>().is_err());
        assert_eq!(CodecKind::default(), CodecKind::None);
    }

    #[test]
    fn rle_collapses_runs_and_rejects_malformed_input() {
        let mut coded = Vec::new();
        Rle.encode_bytes(&[0u8; 600], &mut coded).expect("encodes");
        assert_eq!(coded, vec![255, 0, 255, 0, 90, 0]);
        let mut out = Vec::new();
        assert!(Rle.decode_bytes(&[1], &mut out).is_err(), "odd length");
        assert!(Rle.decode_bytes(&[0, 7], &mut out).is_err(), "zero run");
    }

    #[test]
    fn delta_varint_shrinks_sorted_index_streams() {
        // A sorted u32 index stream (deltas of 1) codes to ~1 byte per
        // 4-byte word plus the header.
        let src: Vec<u8> = (100..400u32).flat_map(|i| i.to_le_bytes()).collect();
        let coded = roundtrip(&DeltaVarint, &src);
        assert!(
            coded.len() < src.len() / 3,
            "{} vs {}",
            coded.len(),
            src.len()
        );
    }

    #[test]
    fn delta_varint_rejects_malformed_input() {
        let mut out = Vec::new();
        assert!(DeltaVarint.decode_bytes(&[], &mut out).is_err());
        assert!(
            DeltaVarint.decode_bytes(&[9], &mut out).is_err(),
            "bad tail"
        );
        assert!(
            DeltaVarint.decode_bytes(&[0, 0x80], &mut out).is_err(),
            "truncated varint"
        );
        assert!(
            DeltaVarint
                .decode_bytes(&[0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut out)
                .is_err(),
            "varint overflow"
        );
    }

    #[test]
    fn huffman_beats_raw_on_skewed_streams_and_rejects_malformed_input() {
        let mut src = vec![0u8; 4000];
        src.extend_from_slice(&[1u8; 100]);
        let coded = roundtrip(&Huffman, &src);
        assert!(coded.len() < src.len() / 2, "{}", coded.len());
        let mut out = Vec::new();
        assert!(Huffman.decode_bytes(&[0; 10], &mut out).is_err(), "short");
        // Valid header claiming 4 symbols but an empty code table.
        let mut bad = vec![4, 0, 0, 0];
        bad.extend_from_slice(&[0u8; 256]);
        assert!(Huffman.decode_bytes(&bad, &mut out).is_err());
        // Claiming more symbols than the bitstream holds.
        let mut coded = Vec::new();
        Huffman.encode_bytes(b"aab", &mut coded).expect("encodes");
        coded[0] = 200;
        assert!(Huffman.decode_bytes(&coded, &mut out).is_err());
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn huffman_rejects_streams_longer_than_the_u32_length_header() {
        // 4 GiB + 1 of untouched zero pages: the guard must fire before the
        // histogram pass ever reads the data, so this stays cheap.
        let src = vec![0u8; u32::MAX as usize + 1];
        let mut out = vec![0xAA];
        let e = Huffman.encode_bytes(&src, &mut out).unwrap_err();
        assert_eq!(e.codec, CodecKind::Huffman);
        assert!(e.detail.contains("u32"), "{}", e.detail);
        assert!(out.is_empty(), "no truncated stream may ship");
    }

    #[test]
    fn huffman_round_trips_codes_deeper_than_the_primary_table() {
        // Fibonacci-scale frequencies force code depths past PRIMARY_BITS,
        // exercising the table-miss slow path on well-formed input.
        let (mut a, mut b) = (1u64, 1u64);
        let mut src = Vec::new();
        for sym in 0..20u8 {
            src.extend(std::iter::repeat_n(sym, a as usize));
            (a, b) = (b, a + b);
        }
        let coded = roundtrip(&Huffman, &src);
        let lengths = &coded[4..260];
        let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
        assert!(max_len > PRIMARY_BITS, "max code length {max_len}");
    }

    /// The list-based merge the parent-pointer `code_lengths` replaced,
    /// kept verbatim as the reference for its exact tie-breaking.
    fn reference_code_lengths(counts: &[u64; 256]) -> [u8; 256] {
        let mut lengths = [0u8; 256];
        let mut nodes: Vec<(u64, u8, Vec<u8>)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(s, &c)| (c, s as u8, vec![s as u8]))
            .collect();
        if nodes.len() == 1 {
            lengths[nodes[0].1 as usize] = 1;
            return lengths;
        }
        while nodes.len() > 1 {
            nodes.sort_by_key(|&(freq, min_sym, _)| (freq, min_sym));
            let (fa, _, ma) = nodes.remove(0);
            let (fb, mb_sym, mut mb) = nodes.remove(0);
            for &s in ma.iter().chain(mb.iter()) {
                lengths[s as usize] += 1;
            }
            let min_sym = ma[0].min(mb_sym);
            let mut members = ma;
            members.append(&mut mb);
            nodes.push((fa + fb, min_sym, members));
        }
        lengths
    }

    #[test]
    fn parent_pointer_merge_matches_the_list_based_merge() {
        // Deterministic LCG over a tiny frequency range so equal-frequency
        // ties (the delicate part of the merge order) are everywhere.
        let mut state = 0x2545F4914F6CDD1Du64;
        for case in 0..200 {
            let mut counts = [0u64; 256];
            let symbols = 1 + (case * 7) % 256;
            for c in counts.iter_mut().take(symbols) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = (state >> 33) % 5; // zeros included: sparse alphabets
            }
            counts[0] = counts[0].max(1); // at least one symbol
            assert_eq!(
                code_lengths(&counts),
                reference_code_lengths(&counts),
                "case {case}"
            );
        }
    }

    #[test]
    fn pooled_decode_matches_the_allocating_decode() {
        let mut scratch = CodecScratch::new();
        for kind in [CodecKind::Rle, CodecKind::DeltaVarint, CodecKind::Huffman] {
            let codec = codec_for(kind).expect("registered");
            for s in samples() {
                let mut coded = Vec::new();
                codec.encode_bytes(&s, &mut coded).expect("encodable");
                let mut fresh = Vec::new();
                codec.decode_bytes(&coded, &mut fresh).expect("decodes");
                let mut pooled = Vec::new();
                // One scratch reused across every codec and stream.
                codec
                    .decode_bytes_with(&coded, &mut pooled, &mut scratch)
                    .expect("decodes");
                assert_eq!(pooled, fresh, "{kind}");
            }
        }
    }

    #[test]
    fn cost_models_are_ordered_by_decoder_complexity() {
        let rle = Rle.cost_model();
        let dv = DeltaVarint.cost_model();
        let huff = Huffman.cost_model();
        assert_eq!(rle.stream_cycles(100), 100);
        assert_eq!(dv.stream_cycles(100), 100);
        assert_eq!(huff.stream_cycles(100), 64 + 200);
        assert!(huff.cycles_per_byte > rle.cycles_per_byte);
    }
}
