//! Cycle-level model of the Copernicus HLS SpMV platform (§4–5 of the
//! paper).
//!
//! The paper's measurement substrate is a Xilinx xc7z020 FPGA programmed
//! through Vivado HLS; this crate is its simulation stand-in (see
//! `DESIGN.md` for the substitution argument). It models the full
//! architecture of Fig. 2:
//!
//! * an AXI-Stream memory interface ([`EncodedPartition`] — per-format byte
//!   accounting and transfer latency),
//! * an optional second-stage stream codec ([`codec`] — RLE, delta+varint,
//!   canonical Huffman over each transfer stream, with per-codec decoder
//!   cost models feeding the compute stage),
//! * one *decompressor per format* ([`decomp`]) whose cycle counts follow
//!   the paper's HLS listings 1–7 statement by statement (II=1 pipelined
//!   loops, single-cycle unrolled bodies over partitioned BRAMs, explicit
//!   `offsets` reads),
//! * a fine-grained dot-product engine (multiplier array + balanced adder
//!   tree, [`HwConfig::dot_latency`]),
//! * the three-stage outer pipeline ([`Platform`] — memory-read, compute,
//!   memory-write, bottleneck-overlapped across partitions),
//! * synthesis-side models: FPGA [`resources`] (Table 2) and [`power`]
//!   (Table 2 + Fig. 13),
//! * pluggable hardware [`backend`]s behind one trait: the HLS pipeline
//!   above, an analytical cache-hierarchy CPU model, and a per-partition
//!   heterogeneous dispatcher driven by the paper's balance ratio.
//!
//! Every decompressor is *functional*: it reconstructs the dense rows and
//! the platform cross-checks them against the reference tile (the analog of
//! the paper's C/RTL co-simulation), so the timing numbers always describe
//! a datapath that provably computes the right answer.
//!
//! # Example
//!
//! All runs go through one [`Session`], which owns the reusable encode /
//! decompress scratch buffers and accepts a [`RunRequest`] describing the
//! input, format and options (trace sink, SpMV consume, lane count):
//!
//! ```
//! use copernicus_hls::{HwConfig, RunRequest, Session};
//! use sparsemat::{Coo, FormatKind};
//!
//! # fn main() -> Result<(), copernicus_hls::PlatformError> {
//! // A very sparse matrix: one entry every fourth row.
//! let mut a = Coo::<f32>::new(32, 32);
//! for i in (0..32).step_by(4) {
//!     a.push(i, i, 2.0)?;
//! }
//! let mut session = Session::new(HwConfig::with_partition_size(16))?;
//! let report = session.run(RunRequest::matrix(&a, FormatKind::Csr))?.report;
//! assert!(report.sigma() < 1.0); // CSR skips the zero rows, dense cannot
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Library paths must propagate PlatformError, not die; CI runs clippy with
// `-D warnings`, making this a gate.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod codec;
pub mod config;
pub mod decomp;
pub mod encode;
pub mod explain;
pub mod pipeline;
pub mod power;
pub mod resources;
pub mod scratch;
pub mod session;

pub use backend::{
    backend_for, Backend, BackendKind, CpuCacheBackend, CpuParams, HeteroBackend, HlsStreamBackend,
};
pub use codec::{codec_for, Codec, CodecCost, CodecError, CodecKind, CodecScratch};
pub use config::{ceil_log2, HwConfig};
pub use decomp::{decompress, decompress_with, Decompression};
pub use encode::{EncodedPartition, Stream};
pub use explain::{explain, CostBreakdown, CostTerm};
pub use pipeline::{ParallelReport, PartitionTiming, Platform, PlatformError, RunReport};
pub use power::PowerBreakdown;
pub use resources::Resources;
pub use scratch::EncodeScratch;
pub use session::{Input, RunOutcome, RunRequest, Session};
