//! Hardware configuration of the modeled platform (§4.1 of the paper).

use crate::backend::{BackendKind, CpuParams};
use crate::codec::CodecKind;

/// Configuration of the modeled HLS SpMV platform.
///
/// Defaults mirror the paper's setup: a Zynq-7000 xc7z020 at 250 MHz fed by
/// a DDR3 channel through AXI-Stream, 4-byte values and indices, 4×4 BCSR
/// blocks, an ELL compute width of six, and BRAM reads that cost two cycles
/// (address + data registers).
///
/// ```
/// use copernicus_hls::HwConfig;
///
/// let cfg = HwConfig::with_partition_size(16);
/// assert_eq!(cfg.partition_size, 16);
/// // 1 multiplier stage + ⌈log2 16⌉ adder-tree stages + 1 accumulate.
/// assert_eq!(cfg.dot_latency(16), 6);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HwConfig {
    /// Fabric clock in MHz (the paper sets 250 MHz).
    pub clock_mhz: f64,
    /// Bytes the AXI/DDR3 channel delivers per fabric cycle (64-bit bus).
    pub bus_bytes_per_cycle: usize,
    /// Fixed cycles to set up one partition's burst transfer.
    pub burst_setup_cycles: u64,
    /// BRAM read latency in cycles (`L_bram`).
    pub bram_read_latency: u64,
    /// Bytes per streamed value (f32 → 4).
    pub value_bytes: usize,
    /// Bytes per streamed index (the paper's COO utilization of ~1/3 implies
    /// index width = value width).
    pub index_bytes: usize,
    /// Partition edge length `p` (8, 16 or 32 in the paper).
    pub partition_size: usize,
    /// BCSR block edge length (4 in the paper).
    pub bcsr_block: usize,
    /// Width of the dedicated ELL compute path ("In Copernicus, we set this
    /// width to six").
    pub ell_hw_width: usize,
    /// When true, [`crate::Platform`] cross-checks every decompressed row
    /// against the dense reference — the analog of the paper's C/RTL
    /// co-simulation. Costs time on large runs; on by default.
    pub verify_functional: bool,
    /// Second-stage codec applied to every transfer stream after structural
    /// encoding ([`CodecKind::None`] reproduces the paper's platform
    /// bit-for-bit). Coded streams larger than the structural form are
    /// shipped raw, so enabling a codec never increases transfer bytes.
    pub stream_codec: CodecKind,
    /// Hardware model that costs every partition ([`BackendKind::Hls`]
    /// reproduces the paper's platform bit-for-bit). The format/codec
    /// fields above stay backend-independent: they describe what is
    /// transferred and decoded, the backend decides what that costs.
    pub backend: BackendKind,
    /// Parameters of the CPU cache-hierarchy model, used by the `cpu`
    /// and `hetero` backends and ignored by `hls`.
    pub cpu: CpuParams,
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig {
            clock_mhz: 250.0,
            bus_bytes_per_cycle: 8,
            burst_setup_cycles: 4,
            bram_read_latency: 2,
            value_bytes: 4,
            index_bytes: 4,
            partition_size: 16,
            bcsr_block: 4,
            ell_hw_width: 6,
            verify_functional: true,
            stream_codec: CodecKind::None,
            backend: BackendKind::Hls,
            cpu: CpuParams::default(),
        }
    }
}

impl HwConfig {
    /// The default platform at a given partition size.
    pub fn with_partition_size(p: usize) -> Self {
        HwConfig {
            partition_size: p,
            ..HwConfig::default()
        }
    }

    /// Latency in cycles of one dot-product issue on an engine of `width`
    /// lanes: one multiplier stage, a balanced adder tree of
    /// `⌈log2 width⌉` stages, and one accumulate stage.
    ///
    /// This is the `T_dot` of the paper's σ definition (Eq. 1).
    pub fn dot_latency(&self, width: usize) -> u64 {
        1 + ceil_log2(width) + 1
    }

    /// `T_dot` for the full-width engine matched to the partition size —
    /// the denominator of σ uses `p × dot_latency_full()`.
    pub fn dot_latency_full(&self) -> u64 {
        self.dot_latency(self.partition_size)
    }

    /// Cycles to stream `bytes` over the memory channel, including burst
    /// setup.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        self.burst_setup_cycles + bytes.div_ceil(self.bus_bytes_per_cycle as u64)
    }

    /// Converts a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (zero sizes,
    /// zero clock, block larger than partition).
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_mhz <= 0.0 {
            return Err(format!("clock must be positive, got {}", self.clock_mhz));
        }
        if self.bus_bytes_per_cycle == 0 {
            return Err("bus width must be positive".into());
        }
        if self.partition_size == 0 {
            return Err("partition size must be positive".into());
        }
        if self.bcsr_block == 0 || self.bcsr_block > self.partition_size {
            return Err(format!(
                "BCSR block {} must be in 1..=partition size {}",
                self.bcsr_block, self.partition_size
            ));
        }
        if self.ell_hw_width == 0 {
            return Err("ELL hardware width must be positive".into());
        }
        if self.value_bytes == 0 || self.index_bytes == 0 {
            return Err("value/index widths must be positive".into());
        }
        self.cpu.validate()?;
        Ok(())
    }
}

/// `⌈log2 n⌉` as a cycle count; 0 for `n <= 1`.
pub fn ceil_log2(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = HwConfig::default();
        assert_eq!(cfg.clock_mhz, 250.0);
        assert_eq!(cfg.partition_size, 16);
        assert_eq!(cfg.bcsr_block, 4);
        assert_eq!(cfg.ell_hw_width, 6);
        assert_eq!(cfg.stream_codec, CodecKind::None);
        assert_eq!(cfg.backend, BackendKind::Hls);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_covers_the_cpu_params() {
        let mut cfg = HwConfig::default();
        cfg.cpu.simd_width = 0;
        let err = cfg.validate().expect_err("bad CPU params must fail");
        assert!(err.contains("simd_width"), "error names the field: {err}");
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(6), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(32), 5);
        // Extremes stay finite: no shift overflow at either end.
        assert_eq!(ceil_log2(usize::MAX), usize::BITS as u64);
        assert_eq!(HwConfig::default().dot_latency(0), 2);
        assert_eq!(HwConfig::default().dot_latency(1), 2);
    }

    #[test]
    fn dot_latency_grows_with_width() {
        let cfg = HwConfig::default();
        assert_eq!(cfg.dot_latency(1), 2);
        assert_eq!(cfg.dot_latency(6), 5);
        assert_eq!(cfg.dot_latency(8), 5);
        assert_eq!(cfg.dot_latency(16), 6);
        assert_eq!(cfg.dot_latency(32), 7);
        assert_eq!(cfg.dot_latency_full(), 6);
    }

    #[test]
    fn transfer_cycles_round_up_and_include_setup() {
        let cfg = HwConfig::default();
        assert_eq!(cfg.transfer_cycles(0), 4);
        assert_eq!(cfg.transfer_cycles(1), 5);
        assert_eq!(cfg.transfer_cycles(8), 5);
        assert_eq!(cfg.transfer_cycles(9), 6);
    }

    #[test]
    fn cycles_to_seconds_at_250mhz() {
        let cfg = HwConfig::default();
        assert!((cfg.cycles_to_seconds(250_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let bad = |f: fn(&mut HwConfig)| {
            let mut cfg = HwConfig::default();
            f(&mut cfg);
            cfg.validate().is_err()
        };
        assert!(bad(|c| c.bcsr_block = 64));
        assert!(bad(|c| c.partition_size = 0));
        assert!(bad(|c| c.clock_mhz = 0.0));
        assert!(bad(|c| c.ell_hw_width = 0));
    }
}
