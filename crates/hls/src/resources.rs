//! FPGA resource model (Table 2 of the paper).
//!
//! Resource utilization is a *synthesis* characteristic — the paper reads it
//! from Vivado's reports for the xc7z020, not from workload execution. This
//! module therefore anchors each format's BRAM_18K / FF / LUT figures on the
//! paper's published design points (partition sizes 8, 16, 32 — Table 2)
//! and interpolates geometrically in `log2(p)` between / beyond them so the
//! ablation benches can explore non-paper partition sizes with sane
//! structural scaling.
//!
//! At the paper's partition sizes the model reproduces Table 2 exactly by
//! construction; everywhere else it is an extrapolation and is labeled as
//! such in `EXPERIMENTS.md`.

use sparsemat::FormatKind;

/// Resource usage of one format's full platform instance (all of Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Resources {
    /// 18-kbit BRAM blocks.
    pub bram_18k: f64,
    /// Flip-flops, in thousands (Table 2's `FF (×1000)` column).
    pub ff_k: f64,
    /// Look-up tables, in thousands (Table 2's `LUT (×1000)` column).
    pub lut_k: f64,
}

/// Totals available on the xc7z020 (the "Total" row of Table 2).
pub const DEVICE_TOTALS: Resources = Resources {
    bram_18k: 140.0,
    ff_k: 106.4,
    lut_k: 53.2,
};

/// One format's Table-2 anchor row: values at partition sizes 8, 16, 32.
#[derive(Debug, Clone, Copy)]
struct Anchor {
    format: FormatKind,
    bram: [f64; 3],
    ff_k: [f64; 3],
    lut_k: [f64; 3],
    /// Dynamic power (W) at partition sizes 8, 16, 32 (Table 2's last
    /// columns) — consumed by [`crate::power`].
    pub(crate) dyn_w: [f64; 3],
}

/// Table 2 of the paper, transcribed.
const TABLE2: [Anchor; 8] = [
    Anchor {
        format: FormatKind::Dense,
        bram: [8.0, 16.0, 32.0],
        ff_k: [1.5, 1.9, 4.3],
        lut_k: [0.7, 0.7, 1.2],
        dyn_w: [0.02, 0.08, 0.03],
    },
    Anchor {
        format: FormatKind::Csr,
        bram: [2.0, 2.0, 8.0],
        ff_k: [0.7, 0.8, 3.8],
        lut_k: [0.9, 0.9, 1.1],
        dyn_w: [0.04, 0.04, 0.07],
    },
    Anchor {
        format: FormatKind::Bcsr,
        bram: [8.0, 16.0, 32.0],
        ff_k: [1.6, 2.4, 4.4],
        lut_k: [1.2, 1.4, 2.2],
        dyn_w: [0.05, 0.06, 0.06],
    },
    Anchor {
        format: FormatKind::Csc,
        bram: [1.0, 1.0, 9.0],
        ff_k: [0.9, 1.0, 2.7],
        lut_k: [1.0, 1.2, 1.1],
        dyn_w: [0.01, 0.05, 0.03],
    },
    Anchor {
        format: FormatKind::Lil,
        bram: [4.0, 4.0, 6.0],
        ff_k: [2.9, 5.8, 9.1],
        lut_k: [1.6, 2.7, 4.8],
        dyn_w: [0.05, 0.08, 0.07],
    },
    Anchor {
        format: FormatKind::Ell,
        bram: [1.0, 7.0, 9.0],
        ff_k: [2.0, 3.2, 0.9],
        lut_k: [0.9, 1.0, 0.8],
        dyn_w: [0.06, 0.10, 0.06],
    },
    Anchor {
        format: FormatKind::Coo,
        bram: [3.0, 3.0, 8.0],
        ff_k: [1.8, 1.3, 3.2],
        lut_k: [1.2, 2.5, 5.4],
        dyn_w: [0.02, 0.04, 0.04],
    },
    Anchor {
        format: FormatKind::Dia,
        bram: [3.0, 3.0, 11.0],
        ff_k: [2.2, 5.0, 9.2],
        lut_k: [1.5, 2.8, 4.6],
        dyn_w: [0.07, 0.12, 0.05],
    },
];

fn anchor(format: FormatKind) -> Option<&'static Anchor> {
    // DOK shares COO's datapath (§5.2), SELL/JDS are not synthesized.
    let format = if format == FormatKind::Dok {
        FormatKind::Coo
    } else {
        format
    };
    TABLE2.iter().find(|a| a.format == format)
}

/// Piecewise-geometric interpolation over the anchors at p = 8, 16, 32 in
/// `log2(p)` space; clamped extrapolation outside [8, 32] scales by the
/// nearest segment's growth rate.
pub(crate) fn interpolate(values: &[f64; 3], p: usize) -> f64 {
    let x = (p.max(1) as f64).log2();
    let xs = [3.0f64, 4.0, 5.0]; // log2 of 8, 16, 32
                                 // Pick the segment to (ex|in)terpolate on.
    let (i, j) = if x <= xs[1] { (0, 1) } else { (1, 2) };
    let (x0, x1) = (xs[i], xs[j]);
    let (y0, y1) = (values[i].max(1e-9), values[j].max(1e-9));
    let t = (x - x0) / (x1 - x0);
    // Geometric interpolation keeps everything positive and scales
    // multiplicatively with p, like array capacities do.
    y0 * (y1 / y0).powf(t)
}

/// Estimates the resources of one format's platform at partition size `p`.
///
/// Exactly Table 2 at `p ∈ {8, 16, 32}`; structural extrapolation
/// elsewhere. `Dok` maps onto COO's datapath; `Sell`/`Jds` have no
/// synthesized instance and return `None`.
pub fn estimate(format: FormatKind, p: usize) -> Option<Resources> {
    let a = anchor(format)?;
    Some(Resources {
        bram_18k: interpolate(&a.bram, p),
        ff_k: interpolate(&a.ff_k, p),
        lut_k: interpolate(&a.lut_k, p),
    })
}

/// Utilization of the device: each resource as a fraction of
/// [`DEVICE_TOTALS`].
pub fn utilization(r: &Resources) -> Resources {
    Resources {
        bram_18k: r.bram_18k / DEVICE_TOTALS.bram_18k,
        ff_k: r.ff_k / DEVICE_TOTALS.ff_k,
        lut_k: r.lut_k / DEVICE_TOTALS.lut_k,
    }
}

/// The exact Table-2 row for a paper partition size, if `p` is one.
pub fn paper_point(format: FormatKind, p: usize) -> Option<Resources> {
    let idx = match p {
        8 => 0,
        16 => 1,
        32 => 2,
        _ => return None,
    };
    let a = anchor(format)?;
    Some(Resources {
        bram_18k: a.bram[idx],
        ff_k: a.ff_k[idx],
        lut_k: a.lut_k[idx],
    })
}

pub(crate) fn dyn_power_anchor(format: FormatKind) -> Option<&'static [f64; 3]> {
    anchor(format).map(|a| &a.dyn_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table2_at_paper_points() {
        for a in &TABLE2 {
            for (i, &p) in [8usize, 16, 32].iter().enumerate() {
                let r = estimate(a.format, p).unwrap();
                assert!((r.bram_18k - a.bram[i]).abs() < 1e-9, "{} p={p}", a.format);
                assert!((r.ff_k - a.ff_k[i]).abs() < 1e-9, "{} p={p}", a.format);
                assert!((r.lut_k - a.lut_k[i]).abs() < 1e-9, "{} p={p}", a.format);
            }
        }
    }

    #[test]
    fn dense_and_bcsr_bram_equals_partition_size() {
        // §6.4: "BCSR utilizes the same blocks as the dense implementation
        // does."
        for p in [8, 16, 32] {
            assert_eq!(estimate(FormatKind::Dense, p).unwrap().bram_18k, p as f64);
            assert_eq!(estimate(FormatKind::Bcsr, p).unwrap().bram_18k, p as f64);
        }
    }

    #[test]
    fn csr_and_csc_use_fewest_brams_at_16() {
        // §6.4: "CSR and CSC utilized the lowest number of BRAM blocks."
        let csr = estimate(FormatKind::Csr, 16).unwrap().bram_18k;
        let csc = estimate(FormatKind::Csc, 16).unwrap().bram_18k;
        for kind in [
            FormatKind::Dense,
            FormatKind::Bcsr,
            FormatKind::Lil,
            FormatKind::Ell,
            FormatKind::Coo,
            FormatKind::Dia,
        ] {
            let other = estimate(kind, 16).unwrap().bram_18k;
            assert!(csr <= other && csc <= other, "{kind}");
        }
    }

    #[test]
    fn interpolation_is_monotone_between_anchors() {
        let r12 = estimate(FormatKind::Coo, 12).unwrap();
        let r8 = estimate(FormatKind::Coo, 8).unwrap();
        let r16 = estimate(FormatKind::Coo, 16).unwrap();
        assert!(r8.bram_18k <= r12.bram_18k && r12.bram_18k <= r16.bram_18k);
        let r24 = estimate(FormatKind::Coo, 24).unwrap();
        let r32 = estimate(FormatKind::Coo, 32).unwrap();
        assert!(r16.bram_18k <= r24.bram_18k && r24.bram_18k <= r32.bram_18k);
    }

    #[test]
    fn extrapolation_beyond_32_keeps_growing_when_segment_grows() {
        let r32 = estimate(FormatKind::Csr, 32).unwrap();
        let r64 = estimate(FormatKind::Csr, 64).unwrap();
        assert!(r64.bram_18k > r32.bram_18k);
    }

    #[test]
    fn dok_maps_to_coo_and_variants_are_absent() {
        assert_eq!(
            estimate(FormatKind::Dok, 16).unwrap(),
            estimate(FormatKind::Coo, 16).unwrap()
        );
        assert!(estimate(FormatKind::Sell, 16).is_none());
        assert!(estimate(FormatKind::Jds, 16).is_none());
    }

    #[test]
    fn utilization_is_fraction_of_device() {
        let r = estimate(FormatKind::Dia, 32).unwrap();
        let u = utilization(&r);
        assert!((u.bram_18k - 11.0 / 140.0).abs() < 1e-9);
        assert!(u.ff_k > 0.0 && u.ff_k < 1.0);
        assert!(u.lut_k > 0.0 && u.lut_k < 1.0);
    }

    #[test]
    fn paper_point_is_exact_and_only_for_paper_sizes() {
        assert_eq!(
            paper_point(FormatKind::Ell, 16).unwrap(),
            Resources {
                bram_18k: 7.0,
                ff_k: 3.2,
                lut_k: 1.0
            }
        );
        assert!(paper_point(FormatKind::Ell, 12).is_none());
    }

    #[test]
    fn ell_small_partitions_trade_bram_for_ff() {
        // §6.4: "in a small partition size, the buffering is automatically
        // implemented using FFs rather than BRAM blocks."
        let r8 = estimate(FormatKind::Ell, 8).unwrap();
        let r32 = estimate(FormatKind::Ell, 32).unwrap();
        assert!(r8.bram_18k < r32.bram_18k);
        assert!(r8.ff_k > r32.ff_k);
    }
}
