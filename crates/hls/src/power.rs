//! Power model (Table 2's dynamic-power columns, Fig. 13's breakdown, and
//! the static-power classes of §6.4).
//!
//! Like the resource model, total dynamic power is a synthesis
//! characteristic anchored on the paper's Vivado reports at partition sizes
//! 8/16/32 (with geometric interpolation elsewhere). The Fig. 13
//! *breakdown* into logic / BRAM / signal components is derived from the
//! resource mix: logic power follows LUT usage, BRAM power follows block
//! count, and signal power — which the paper observes dominates the overall
//! trend — takes the remainder.

use crate::resources::{self, Resources};
use sparsemat::FormatKind;

/// Static power of the designs built around the wider input buffers
/// (dense, CSR, BCSR, LIL, ELL) — §6.4.
pub const STATIC_POWER_HIGH_W: f64 = 0.121;
/// Static power of the CSC / COO / DIA designs — §6.4.
pub const STATIC_POWER_LOW_W: f64 = 0.103;

/// Dynamic-power breakdown in watts (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerBreakdown {
    /// Power switched in LUT logic.
    pub logic_w: f64,
    /// Power switched in BRAM blocks.
    pub bram_w: f64,
    /// Power switched in routed signals.
    pub signals_w: f64,
}

impl PowerBreakdown {
    /// Total dynamic power.
    pub fn total_w(&self) -> f64 {
        self.logic_w + self.bram_w + self.signals_w
    }
}

/// Total dynamic power (W) of a format's platform at partition size `p` —
/// Table 2's `DY Power(W)` columns at the paper's sizes, interpolated
/// elsewhere. `None` for formats without a synthesized instance.
pub fn dynamic_power(format: FormatKind, p: usize) -> Option<f64> {
    let anchors = resources::dyn_power_anchor(format)?;
    Some(resources::interpolate(anchors, p))
}

/// Static power (W) of a format's design (§6.4 gives two classes).
///
/// `None` for formats without a synthesized instance.
pub fn static_power(format: FormatKind) -> Option<f64> {
    match format {
        FormatKind::Dense
        | FormatKind::Csr
        | FormatKind::Bcsr
        | FormatKind::Lil
        | FormatKind::Ell => Some(STATIC_POWER_HIGH_W),
        FormatKind::Csc | FormatKind::Coo | FormatKind::Dok | FormatKind::Dia => {
            Some(STATIC_POWER_LOW_W)
        }
        FormatKind::Bcsc | FormatKind::Sell | FormatKind::Jds => None,
    }
}

/// Per-BRAM-block dynamic power used to apportion the Fig. 13 breakdown
/// (W per active 18K block, a typical 7-series figure at 250 MHz).
const BRAM_W_PER_BLOCK: f64 = 0.0008;
/// Per-kLUT dynamic power used to apportion the logic share.
const LOGIC_W_PER_KLUT: f64 = 0.004;

/// Splits a format's dynamic power into the Fig.-13 logic / BRAM / signal
/// components, consistent with the Table-2 total.
///
/// The apportioning rule: BRAM and logic each get an activity-weighted
/// share of the total derived from the resource mix; signal power is the
/// remainder — matching §6.4's observation that "the trend of overall
/// dynamic power consumption partially depends on BRAM, but more generally
/// follows the same trend as the power consumption of signals."
pub fn breakdown(format: FormatKind, p: usize) -> Option<PowerBreakdown> {
    let total = dynamic_power(format, p)?;
    let r: Resources = resources::estimate(format, p)?;
    let bram_raw = r.bram_18k * BRAM_W_PER_BLOCK;
    let logic_raw = r.lut_k * LOGIC_W_PER_KLUT;
    // Cap structural components at 70% of the total so signals always hold
    // a meaningful share.
    let cap = 0.7 * total;
    let scale = if bram_raw + logic_raw > cap {
        cap / (bram_raw + logic_raw)
    } else {
        1.0
    };
    let bram_w = bram_raw * scale;
    let logic_w = logic_raw * scale;
    Some(PowerBreakdown {
        logic_w,
        bram_w,
        signals_w: total - bram_w - logic_w,
    })
}

/// Energy in joules for a run of `seconds` on a format's platform:
/// `(dynamic + static) × time`. `None` for unsynthesized formats.
pub fn energy_joules(format: FormatKind, p: usize, seconds: f64) -> Option<f64> {
    Some((dynamic_power(format, p)? + static_power(format)?) * seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_power_matches_table2() {
        assert_eq!(dynamic_power(FormatKind::Dense, 16), Some(0.08));
        assert_eq!(dynamic_power(FormatKind::Dia, 16), Some(0.12));
        assert_eq!(dynamic_power(FormatKind::Csc, 8), Some(0.01));
        assert_eq!(dynamic_power(FormatKind::Coo, 32), Some(0.04));
    }

    #[test]
    fn static_power_classes_match_section_6_4() {
        for kind in [
            FormatKind::Dense,
            FormatKind::Csr,
            FormatKind::Bcsr,
            FormatKind::Lil,
            FormatKind::Ell,
        ] {
            assert_eq!(static_power(kind), Some(STATIC_POWER_HIGH_W), "{kind}");
        }
        for kind in [FormatKind::Csc, FormatKind::Coo, FormatKind::Dia] {
            assert_eq!(static_power(kind), Some(STATIC_POWER_LOW_W), "{kind}");
        }
        assert!(static_power(FormatKind::Sell).is_none());
    }

    #[test]
    fn breakdown_sums_to_total() {
        for kind in FormatKind::CHARACTERIZED {
            for p in [8, 16, 32] {
                let b = breakdown(kind, p).unwrap();
                let total = dynamic_power(kind, p).unwrap();
                assert!((b.total_w() - total).abs() < 1e-12, "{kind} p={p}");
                assert!(b.logic_w >= 0.0 && b.bram_w >= 0.0 && b.signals_w >= 0.0);
            }
        }
    }

    #[test]
    fn signals_hold_a_meaningful_share() {
        // §6.4: overall dynamic power "more generally follows the same trend
        // as the power consumption of signals" — signals must never vanish.
        for kind in FormatKind::CHARACTERIZED {
            let b = breakdown(kind, 16).unwrap();
            let total = b.total_w();
            assert!(b.signals_w >= 0.3 * total, "{kind}: {b:?}");
        }
    }

    #[test]
    fn coo_consumes_least_dynamic_power_among_sparse_at_16() {
        // §6.4: "for SuiteSparse matrices, not only does COO consume the
        // least dynamic power..." (CSC's 8×8 point is lower, but at the
        // default 16 COO ties for the minimum among the sparse formats).
        let coo = dynamic_power(FormatKind::Coo, 16).unwrap();
        for kind in [
            FormatKind::Csr,
            FormatKind::Bcsr,
            FormatKind::Lil,
            FormatKind::Ell,
            FormatKind::Dia,
        ] {
            assert!(coo <= dynamic_power(kind, 16).unwrap(), "{kind}");
        }
    }

    #[test]
    fn energy_combines_dynamic_and_static() {
        let e = energy_joules(FormatKind::Coo, 16, 2.0).unwrap();
        assert!((e - (0.04 + STATIC_POWER_LOW_W) * 2.0).abs() < 1e-12);
    }

    #[test]
    fn dok_inherits_coo_power() {
        assert_eq!(
            dynamic_power(FormatKind::Dok, 16),
            dynamic_power(FormatKind::Coo, 16)
        );
        assert_eq!(static_power(FormatKind::Dok), Some(STATIC_POWER_LOW_W));
    }
}
