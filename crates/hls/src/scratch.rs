//! Reusable per-tile buffers for the measurement hot path.
//!
//! Every partition that flows through the platform used to allocate a fresh
//! `Vec<Stream>`, one `Vec<f32>` per emitted dense row, and — with
//! [`HwConfig::verify_functional`](crate::HwConfig) on — two whole `p×p`
//! [`Dense`](sparsemat::Dense) matrices just to cross-check the
//! decompressor. On a campaign sweeping hundreds of thousands of tiles the
//! harness spent more time in the allocator than in the model.
//!
//! [`EncodeScratch`] pools all of those buffers. One scratch lives for the
//! duration of a [`Session`](crate::Session) (or one deprecated
//! `Platform::run*` shim call) and is threaded through
//! [`EncodedPartition::encode_with`](crate::EncodedPartition::encode_with)
//! and [`decompress_with`](crate::decompress_with); the pipeline recycles
//! every buffer after the tile's timing has been extracted. Buffer reuse is
//! invisible in the output: recycled rows are re-zeroed before reuse, so
//! the bytes of every report, trace span and measurement are identical to
//! the allocating path (test-enforced).

use crate::codec::CodecScratch;
use crate::decomp::Decompression;
use crate::encode::{EncodedPartition, Stream};
use sparsemat::{AnyMatrix, Coo, FormatKind, Matrix, Triplet};

/// Reusable buffers threaded through the encode → decompress → verify path
/// so steady-state tile processing performs no heap allocation.
///
/// The scratch is deliberately dumb: it never caps its pools because the
/// pipeline processes one tile at a time, which bounds the live buffer
/// count at `p + block size` rows. Dropping the scratch drops the pools.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// Recycled stream list for the next [`EncodedPartition`].
    streams: Vec<Stream>,
    /// Pool of dense row buffers for the decompressor models.
    rows: Vec<Vec<f32>>,
    /// Pool of contribution lists for [`Decompression`].
    contribs: Vec<Vec<(usize, Vec<f32>)>>,
    /// COO scatter table (`rows[r]` while the tuple pass runs).
    opt_rows: Vec<Option<Vec<f32>>>,
    /// BCSR per-block-row staging list (holds `b` rows while one block-row
    /// is scattered, drained into the contribution list).
    row_stage: Vec<Vec<f32>>,
    /// LIL per-column cursor row.
    cursors: Vec<usize>,
    /// Functional-verification accumulator for the decompressed rows.
    acc_model: Vec<f32>,
    /// `(base, len)` row spans of `acc_model` written by the current tile.
    touched_model: Vec<(usize, usize)>,
    /// Functional-verification accumulator for the reference tile.
    acc_tile: Vec<f32>,
    /// Cells of `acc_tile` written by the current tile.
    touched_tile: Vec<usize>,
    /// Serialized stream bytes for the second-stage codec pass.
    payload: Vec<u8>,
    /// Coded output of the second-stage codec pass.
    coded: Vec<u8>,
    /// Recycled encoded matrices, at most one per format kind, rebuilt in
    /// place by the next tile of the same format.
    matrices: Vec<AnyMatrix<f32>>,
    /// Triplet workspace for the in-place format conversions.
    tmp_triplets: Vec<Triplet<f32>>,
    /// Pooled second-stage decoder state (Huffman primary table).
    codec: CodecScratch,
    /// Per-worker scratches for the intra-run tile-parallel path, kept warm
    /// between runs of the same session.
    workers: Vec<EncodeScratch>,
}

impl EncodeScratch {
    /// An empty scratch; pools fill as tiles are processed.
    pub fn new() -> Self {
        EncodeScratch::default()
    }

    /// Takes the recycled stream list (empty) for an encode pass.
    pub(crate) fn take_streams(&mut self) -> Vec<Stream> {
        let mut streams = std::mem::take(&mut self.streams);
        streams.clear();
        streams
    }

    /// The payload/coded byte pools for the second-stage codec pass; the
    /// codec clears each before use, so no handing-back step is needed.
    pub(crate) fn byte_pools(&mut self) -> (&mut Vec<u8>, &mut Vec<u8>) {
        (&mut self.payload, &mut self.coded)
    }

    /// Takes the pooled matrix of the given format kind, if one was
    /// recycled; its buffers are rebuilt in place by the `assign_from_coo`
    /// family instead of allocating a fresh conversion.
    pub(crate) fn take_matrix(&mut self, kind: FormatKind) -> Option<AnyMatrix<f32>> {
        let i = self.matrices.iter().position(|m| m.kind() == kind)?;
        Some(self.matrices.swap_remove(i))
    }

    /// The triplet workspace for the in-place format conversions.
    pub(crate) fn tmp_triplets(&mut self) -> &mut Vec<Triplet<f32>> {
        &mut self.tmp_triplets
    }

    /// The pooled second-stage decoder state, for
    /// [`Codec::decode_bytes_with`](crate::Codec::decode_bytes_with).
    pub fn codec_scratch(&mut self) -> &mut CodecScratch {
        &mut self.codec
    }

    /// Takes exactly `n` worker scratches for a tile-parallel pass,
    /// reusing pooled ones (warm buffers) before building fresh ones.
    pub(crate) fn take_workers(&mut self, n: usize) -> Vec<EncodeScratch> {
        let mut pool = std::mem::take(&mut self.workers);
        pool.truncate(n);
        while pool.len() < n {
            pool.push(EncodeScratch::new());
        }
        pool
    }

    /// Returns the worker scratches after a tile-parallel pass.
    pub(crate) fn give_workers(&mut self, pool: Vec<EncodeScratch>) {
        self.workers = pool;
    }

    /// A zeroed dense row of length `p`, reusing a pooled buffer when one
    /// is available.
    pub(crate) fn row(&mut self, p: usize) -> Vec<f32> {
        let mut row = self.rows.pop().unwrap_or_default();
        row.clear();
        row.resize(p, 0.0);
        row
    }

    /// A dense row holding a copy of `src`, reusing a pooled buffer when
    /// one is available (skips the zero-fill [`EncodeScratch::row`] pays).
    pub(crate) fn row_from(&mut self, src: &[f32]) -> Vec<f32> {
        let mut row = self.rows.pop().unwrap_or_default();
        row.clear();
        row.extend_from_slice(src);
        row
    }

    /// Returns an unused row buffer to the pool.
    pub(crate) fn give_row(&mut self, row: Vec<f32>) {
        self.rows.push(row);
    }

    /// Takes the (empty) BCSR block-row staging list.
    pub(crate) fn take_row_stage(&mut self) -> Vec<Vec<f32>> {
        std::mem::take(&mut self.row_stage)
    }

    /// Returns the drained BCSR block-row staging list.
    pub(crate) fn give_row_stage(&mut self, stage: Vec<Vec<f32>>) {
        debug_assert!(stage.is_empty());
        self.row_stage = stage;
    }

    /// Takes an empty contribution list for a decompress pass.
    pub(crate) fn take_contribs(&mut self) -> Vec<(usize, Vec<f32>)> {
        let mut contribs = self.contribs.pop().unwrap_or_default();
        contribs.clear();
        contribs
    }

    /// Takes the COO scatter table, cleared and sized to `p` empty slots.
    pub(crate) fn take_opt_rows(&mut self, p: usize) -> Vec<Option<Vec<f32>>> {
        let mut opt = std::mem::take(&mut self.opt_rows);
        opt.clear();
        opt.resize_with(p, || None);
        opt
    }

    /// Returns the (drained) COO scatter table.
    pub(crate) fn give_opt_rows(&mut self, mut opt: Vec<Option<Vec<f32>>>) {
        opt.clear();
        self.opt_rows = opt;
    }

    /// Takes the LIL cursor row, zeroed and sized to `p`.
    pub(crate) fn take_cursors(&mut self, p: usize) -> Vec<usize> {
        let mut cursors = std::mem::take(&mut self.cursors);
        cursors.clear();
        cursors.resize(p, 0);
        cursors
    }

    /// Returns the LIL cursor row.
    pub(crate) fn give_cursors(&mut self, cursors: Vec<usize>) {
        self.cursors = cursors;
    }

    /// Recycles an encoded partition's buffers once its transfer accounting
    /// has been folded into the timing: the stream list and the encoded
    /// matrix itself, whose arrays the next tile of the same format rebuilds
    /// in place.
    pub fn recycle_encoded(&mut self, encoded: EncodedPartition) {
        let EncodedPartition {
            matrix,
            mut streams,
            ..
        } = encoded;
        streams.clear();
        self.streams = streams;
        let kind = matrix.kind();
        self.matrices.retain(|m| m.kind() != kind);
        self.matrices.push(matrix);
    }

    /// Recycles a decompression's row buffers once its contributions have
    /// been consumed.
    pub fn recycle_decompression(&mut self, d: Decompression) {
        let mut contribs = d.contributions;
        for (_, row) in contribs.drain(..) {
            self.rows.push(row);
        }
        self.contribs.push(contribs);
    }

    /// Functional verification without materializing dense matrices: both
    /// the decompressed contributions and the reference tile accumulate
    /// into persistent `p²` scratch planes (the model side in the exact
    /// `f32` addition order of [`Decompression::assemble`], the tile side
    /// in `Coo::to_dense` order), and only the touched spans are compared.
    /// Equivalent to `d.assemble(p) == tile.to_dense()` bit for bit,
    /// without the two `p×p` allocations.
    ///
    /// The model-side add, compare and reset passes each run over whole
    /// contribution-row slices (one `(base, len)` span per emitted row)
    /// instead of branching per cell. Cells a span covers beyond the old
    /// per-non-zero bookkeeping hold `+0.0` from the model unless the tile
    /// touched them — in which case the per-cell tile pass compares them
    /// anyway — so the verdict is unchanged.
    pub(crate) fn verify_tile(&mut self, d: &Decompression, tile: &Coo<f32>, p: usize) -> bool {
        let cells = p * p;
        if self.acc_model.len() < cells {
            self.acc_model.resize(cells, 0.0);
            self.acc_tile.resize(cells, 0.0);
        }
        for (r, row) in &d.contributions {
            let base = r * p;
            for (a, &v) in self.acc_model[base..base + row.len()].iter_mut().zip(row) {
                *a += v;
            }
            self.touched_model.push((base, row.len()));
        }
        for t in tile.iter() {
            let i = t.row * p + t.col;
            self.acc_tile[i] += t.val;
            self.touched_tile.push(i);
        }
        let ok = self.touched_model.iter().all(|&(base, len)| {
            self.acc_model[base..base + len] == self.acc_tile[base..base + len]
        }) && self
            .touched_tile
            .iter()
            .all(|&i| self.acc_model[i] == self.acc_tile[i]);
        for &(base, len) in &self.touched_model {
            self.acc_model[base..base + len].fill(0.0);
        }
        for &i in &self.touched_tile {
            self.acc_tile[i] = 0.0;
        }
        self.touched_model.clear();
        self.touched_tile.clear();
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decompress_with, HwConfig};
    use sparsemat::{FormatKind, Matrix};

    fn cfg() -> HwConfig {
        HwConfig::with_partition_size(16)
    }

    fn tile(entries: &[(usize, usize, f32)]) -> Coo<f32> {
        let mut coo = Coo::new(16, 16);
        for &(r, c, v) in entries {
            coo.push(r, c, v).unwrap();
        }
        coo
    }

    #[test]
    fn verify_accepts_every_characterized_format() {
        let t = tile(&[(0, 0, 1.0), (3, 7, -2.5), (9, 2, 3.0), (15, 15, 4.0)]);
        let cfg = cfg();
        let mut scratch = EncodeScratch::new();
        for kind in FormatKind::CHARACTERIZED {
            let part = EncodedPartition::encode_with(&t, kind, &cfg, &mut scratch).unwrap();
            let d = decompress_with(&part, &cfg, &mut scratch);
            assert!(scratch.verify_tile(&d, &t, 16), "{kind}");
            scratch.recycle_decompression(d);
            scratch.recycle_encoded(part);
        }
    }

    #[test]
    fn verify_matches_the_dense_comparison_on_mismatches() {
        let t = tile(&[(1, 1, 2.0), (4, 4, -3.0)]);
        let cfg = cfg();
        let mut scratch = EncodeScratch::new();
        let part = EncodedPartition::encode_with(&t, FormatKind::Csr, &cfg, &mut scratch).unwrap();
        let mut d = decompress_with(&part, &cfg, &mut scratch);
        // Corrupt one emitted value: the old Dense comparison would reject
        // this, and so must the scratch path.
        d.contributions[0].1[1] = 99.0;
        assert_ne!(d.assemble(16), t.to_dense());
        assert!(!scratch.verify_tile(&d, &t, 16));
        // The scratch planes reset after a failed verify too.
        let clean = decompress_with(&part, &cfg, &mut scratch);
        assert!(scratch.verify_tile(&clean, &t, 16));
    }

    #[test]
    fn verify_accumulates_duplicate_coordinates_like_to_dense() {
        // Duplicate pushes accumulate in both the tile and the COO
        // decompressor; exact cancellation leaves a 0.0 == 0.0 cell.
        let mut t = Coo::new(16, 16);
        t.push(2, 3, 5.0).unwrap();
        t.push(2, 3, -5.0).unwrap();
        t.push(7, 1, 1.5).unwrap();
        t.push(7, 1, 2.5).unwrap();
        let cfg = cfg();
        let mut scratch = EncodeScratch::new();
        for kind in [FormatKind::Coo, FormatKind::Csr, FormatKind::Lil] {
            let part = EncodedPartition::encode_with(&t, kind, &cfg, &mut scratch).unwrap();
            let d = decompress_with(&part, &cfg, &mut scratch);
            assert_eq!(
                scratch.verify_tile(&d, &t, 16),
                d.assemble(16) == t.to_dense(),
                "{kind}"
            );
            scratch.recycle_decompression(d);
        }
    }

    #[test]
    fn verify_treats_signed_zero_like_ieee_equality() {
        // A -0.0 contribution against an untouched (+0.0) tile cell: Dense
        // PartialEq says equal, and so must the scratch comparison.
        let t = tile(&[(0, 0, 1.0)]);
        let mut scratch = EncodeScratch::new();
        let d = Decompression {
            contributions: vec![(0, {
                let mut row = vec![0.0f32; 16];
                row[0] = 1.0;
                row[5] = -0.0;
                row
            })],
            decomp_cycles: 0,
            dot_issues: 1,
            engine_width: 16,
            bram_reads: 0,
        };
        assert_eq!(
            d.assemble(16) == t.to_dense(),
            scratch.verify_tile(&d, &t, 16)
        );
        assert!(scratch.verify_tile(&d, &t, 16));
    }

    #[test]
    fn recycled_rows_come_back_zeroed() {
        let mut scratch = EncodeScratch::new();
        let mut row = scratch.row(4);
        row[2] = 7.0;
        scratch.give_row(row);
        assert_eq!(scratch.row(4), vec![0.0f32; 4]);
        // Pool shrink/grow across partition sizes stays zeroed too.
        let mut row = scratch.row(8);
        assert_eq!(row, vec![0.0f32; 8]);
        row[7] = 1.0;
        scratch.give_row(row);
        assert_eq!(scratch.row(2), vec![0.0f32; 2]);
    }
}
