//! Cost explanation: decomposes one partition's cycles into the named
//! terms of §5.2's per-format cost models, so a user can see *why* a
//! format is slow on their data ("CSC: 16 output rows × 113-tuple rescan
//! = 1808 cycles").
//!
//! Every breakdown is tested to sum exactly to the corresponding
//! [`decompress`](crate::decompress) cycle count — the explanation can
//! never drift from the model.

use crate::{decompress, EncodedPartition, HwConfig};
use sparsemat::{AnyMatrix, Dia, Lil, Matrix};

/// One named cost term of a partition's processing.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostTerm {
    /// Human-readable description of the term.
    pub label: String,
    /// Cycles attributed to it.
    pub cycles: u64,
}

/// A partition's full cost story: compute-side terms plus the memory
/// transfer, with the bottleneck called out.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostBreakdown {
    /// Format the partition is encoded in.
    pub format: sparsemat::FormatKind,
    /// Decompression cost terms (sum = `T_decomp`).
    pub decomp_terms: Vec<CostTerm>,
    /// Dot-product cost term.
    pub dot_term: CostTerm,
    /// Memory transfer cost (data + metadata on the stream).
    pub memory_cycles: u64,
    /// Total compute cycles (= Σ decomp terms + dot term).
    pub compute_cycles: u64,
}

impl CostBreakdown {
    /// Which pipeline stage bounds this partition.
    pub fn bottleneck(&self) -> &'static str {
        if self.memory_cycles >= self.compute_cycles {
            "memory"
        } else {
            "compute"
        }
    }

    /// Renders the breakdown as indented text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: compute {} cycles vs memory {} cycles -> {}-bound\n",
            self.format,
            self.compute_cycles,
            self.memory_cycles,
            self.bottleneck()
        );
        for t in &self.decomp_terms {
            out.push_str(&format!("  {:>8} cycles  {}\n", t.cycles, t.label));
        }
        out.push_str(&format!(
            "  {:>8} cycles  {}\n",
            self.dot_term.cycles, self.dot_term.label
        ));
        out
    }
}

/// Explains one encoded partition's cost in the §5.2 vocabulary.
pub fn explain(part: &EncodedPartition, cfg: &HwConfig) -> CostBreakdown {
    let d = decompress(part, cfg);
    let p = cfg.partition_size as u64;
    let l = cfg.bram_read_latency;
    let nnz = part.matrix.nnz() as u64;
    let t_dot = cfg.dot_latency(d.engine_width);

    let decomp_terms: Vec<CostTerm> = match &part.matrix {
        AnyMatrix::Dense(_) => vec![CostTerm {
            label: "rows stream straight to the engine (no decompression)".into(),
            cycles: 0,
        }],
        AnyMatrix::Csr(m) => {
            let nzr = (0..m.nrows()).filter(|&r| m.row_nnz(r) > 0).count() as u64;
            vec![
                CostTerm {
                    label: format!(
                        "{nzr} non-zero rows x {l}-cycle offsets read (Listing 1 line 7)"
                    ),
                    cycles: nzr * l,
                },
                CostTerm {
                    label: format!("{nnz} elements through the pipelined II=1 copy loop"),
                    cycles: nnz,
                },
            ]
        }
        AnyMatrix::Csc(_) => vec![CostTerm {
            label: format!(
                "{p} output rows x {nnz}-tuple rescan (orientation mismatch, Listing 3)"
            ),
            cycles: p * nnz,
        }],
        AnyMatrix::Bcsr(m) => {
            let nbr = m.nonzero_block_rows() as u64;
            let nblk = m.num_blocks() as u64;
            vec![
                CostTerm {
                    label: format!("{nbr} non-zero block-rows x {l}-cycle offsets read"),
                    cycles: nbr * l,
                },
                CostTerm {
                    label: format!("{nblk} blocks through the unrolled copy (1 cycle each)"),
                    cycles: nblk,
                },
            ]
        }
        AnyMatrix::Coo(_) | AnyMatrix::Dok(_) => vec![
            CostTerm {
                label: format!("initial tuple fetch ({l} cycles)"),
                cycles: l,
            },
            CostTerm {
                label: format!("{nnz} tuples through the pipelined II=1 scatter"),
                cycles: nnz,
            },
        ],
        AnyMatrix::Lil(m) => {
            let nzr = lil_nonzero_rows(m) as u64;
            vec![
                CostTerm {
                    label: format!(
                        "{nzr} emitted rows x (parallel column read {l} + min-scan/assign 2)"
                    ),
                    cycles: nzr * (l + 2),
                },
                CostTerm {
                    label: format!("end-of-rows marker read ({l} cycles)"),
                    cycles: l,
                },
            ]
        }
        AnyMatrix::Ell(_) => vec![CostTerm {
            label: format!("{p} rows x 1 cycle (fully unrolled, zero rows not skippable)"),
            cycles: p,
        }],
        AnyMatrix::Dia(m) => {
            let ndiag = dia_count(m) as u64;
            vec![
                CostTerm {
                    label: format!("initial diagonal fetch ({l} cycles)"),
                    cycles: l,
                },
                CostTerm {
                    label: format!("{p} rows x {ndiag}-diagonal II=1 scan (Listing 7)"),
                    cycles: p * ndiag,
                },
            ]
        }
        AnyMatrix::Bcsc(_) | AnyMatrix::Sell(_) | AnyMatrix::Jds(_) => {
            unreachable!("EncodedPartition rejects uncharacterized formats")
        }
    };
    CostBreakdown {
        format: part.kind(),
        dot_term: CostTerm {
            label: format!(
                "{} dot products x {} cycles on the width-{} engine",
                d.dot_issues, t_dot, d.engine_width
            ),
            cycles: d.dot_issues * t_dot,
        },
        memory_cycles: part.memory_cycles(cfg),
        compute_cycles: d.compute_cycles(cfg),
        decomp_terms,
    }
}

fn lil_nonzero_rows(m: &Lil<f32>) -> usize {
    m.distinct_cross_indices()
}

fn dia_count(m: &Dia<f32>) -> usize {
    m.num_diagonals()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{Coo, FormatKind};

    fn tile() -> Coo<f32> {
        let mut coo = Coo::new(16, 16);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 5, 2.0).unwrap();
        coo.push(3, 3, 3.0).unwrap();
        coo.push(9, 1, 4.0).unwrap();
        coo.push(15, 15, 5.0).unwrap();
        coo
    }

    #[test]
    fn terms_sum_exactly_to_the_model_for_every_format() {
        let cfg = HwConfig::with_partition_size(16);
        let t = tile();
        for kind in FormatKind::CHARACTERIZED {
            let part = EncodedPartition::encode(&t, kind, &cfg).unwrap();
            let d = decompress(&part, &cfg);
            let b = explain(&part, &cfg);
            let term_sum: u64 = b.decomp_terms.iter().map(|t| t.cycles).sum();
            assert_eq!(term_sum, d.decomp_cycles, "{kind} decomp terms drifted");
            assert_eq!(
                term_sum + b.dot_term.cycles,
                b.compute_cycles,
                "{kind} total drifted"
            );
            assert_eq!(b.compute_cycles, d.compute_cycles(&cfg), "{kind}");
        }
    }

    #[test]
    fn bottleneck_matches_the_cycle_comparison() {
        let cfg = HwConfig::with_partition_size(16);
        let t = tile();
        let csc = explain(
            &EncodedPartition::encode(&t, FormatKind::Csc, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(csc.bottleneck(), "compute");
        let dense = explain(
            &EncodedPartition::encode(&t, FormatKind::Dense, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(dense.bottleneck(), "memory");
    }

    #[test]
    fn render_names_the_listing_level_terms() {
        let cfg = HwConfig::with_partition_size(16);
        let t = tile();
        let s = explain(
            &EncodedPartition::encode(&t, FormatKind::Csr, &cfg).unwrap(),
            &cfg,
        )
        .render();
        assert!(s.contains("offsets read"), "{s}");
        assert!(s.contains("dot products"), "{s}");
        assert!(s.contains("-bound"), "{s}");
    }

    #[test]
    fn dok_is_explained_like_coo() {
        let cfg = HwConfig::with_partition_size(16);
        let t = tile();
        let coo = explain(
            &EncodedPartition::encode(&t, FormatKind::Coo, &cfg).unwrap(),
            &cfg,
        );
        let dok = explain(
            &EncodedPartition::encode(&t, FormatKind::Dok, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(coo.compute_cycles, dok.compute_cycles);
        assert_eq!(coo.decomp_terms.len(), dok.decomp_terms.len());
    }
}
