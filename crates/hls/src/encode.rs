//! Per-partition encoding and transfer-size accounting.
//!
//! The memory side of the characterization: for each format, how many bytes
//! cross the AXI stream when one compressed `p×p` partition is transferred
//! (data *and* metadata), and how many of those bytes are "useful" — the
//! actual non-zero values. The ratio is the paper's memory-bandwidth
//! utilization metric (§4.2: "the ratio of useful data over all transmitted
//! data (i.e., useful data plus metadata)").

use crate::codec::codec_for;
use crate::{EncodeScratch, HwConfig};
use sparsemat::{AnyMatrix, Bcsr, Coo, Dia, Ell, FormatKind, Lil, Matrix, SparseError};

/// One named transfer stream of an encoded partition (values, indices,
/// offsets, …) with its byte count — the AXIS streamlines of Fig. 2.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Stream {
    /// Array name as the paper's listings call it.
    pub name: &'static str,
    /// Bytes of the structural encoding streamed for one partition.
    pub bytes: u64,
    /// Bytes actually crossing the bus after the second-stage codec.
    /// Equals `bytes` when no codec is configured or when the coded form
    /// would be larger than the structural form (the stream ships raw), so
    /// `coded_bytes <= bytes` always holds.
    pub coded_bytes: u64,
}

impl Stream {
    /// A stream carrying its structural encoding uncoded.
    fn structural(name: &'static str, bytes: u64) -> Self {
        Stream {
            name,
            bytes,
            coded_bytes: bytes,
        }
    }
}

/// A `p×p` partition encoded in one characterized format, with its transfer
/// accounting.
#[derive(Debug, Clone)]
pub struct EncodedPartition {
    /// The encoded matrix (kept concrete behind [`AnyMatrix`] so the
    /// decompressor models can reach format internals).
    pub matrix: AnyMatrix<f32>,
    /// Transfer streams (data + metadata).
    pub streams: Vec<Stream>,
    /// Bytes of genuinely useful payload (non-zero values only).
    pub useful_bytes: u64,
}

impl EncodedPartition {
    /// Encodes one partition's COO tile in the given format and computes its
    /// transfer accounting.
    ///
    /// `Dok` is accepted and accounted exactly like `Coo` — §5.2: "The same
    /// procedure is also applicable to DOK."
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::UnknownFormat`] for formats the paper does not
    /// characterize on the platform (`Sell`, `Jds`).
    pub fn encode(
        tile: &Coo<f32>,
        format: FormatKind,
        cfg: &HwConfig,
    ) -> Result<Self, SparseError> {
        Self::encode_with(tile, format, cfg, &mut EncodeScratch::new())
    }

    /// Like [`EncodedPartition::encode`], but reuses the buffers held by
    /// `scratch` instead of allocating per tile: the stream list, the codec
    /// byte pools, and — via [`EncodeScratch::recycle_encoded`] — the
    /// encoded matrix itself, whose arrays the next tile of the same format
    /// rebuilds in place. Output is bit-identical to
    /// [`EncodedPartition::encode`] (test-enforced).
    ///
    /// # Errors
    ///
    /// Same as [`EncodedPartition::encode`].
    pub fn encode_with(
        tile: &Coo<f32>,
        format: FormatKind,
        cfg: &HwConfig,
        scratch: &mut EncodeScratch,
    ) -> Result<Self, SparseError> {
        let mut streams = scratch.take_streams();
        let vb = cfg.value_bytes as u64;
        let ib = cfg.index_bytes as u64;
        let p = cfg.partition_size as u64;
        debug_assert!(streams.is_empty());

        let matrix = match format {
            FormatKind::Dense => {
                // The dense baseline streams every cell, zeros included.
                streams.push(Stream::structural("values", p * p * vb));
                match scratch.take_matrix(FormatKind::Dense) {
                    Some(AnyMatrix::Dense(mut d)) => {
                        d.assign_from_coo(tile);
                        AnyMatrix::Dense(d)
                    }
                    _ => AnyMatrix::Dense(tile.to_dense()),
                }
            }
            FormatKind::Csr => {
                let csr = match scratch.take_matrix(FormatKind::Csr) {
                    Some(AnyMatrix::Csr(mut m)) => {
                        m.assign_from_coo(tile, scratch.tmp_triplets());
                        m
                    }
                    _ => sparsemat::Csr::from(tile),
                };
                // Duplicate COO coordinates merge during encoding, so the
                // streamed entry count is the *encoded* structure's.
                let stored = csr.nnz() as u64;
                streams.push(Stream::structural("offsets", (p + 1) * ib));
                streams.push(Stream::structural("colInx", stored * ib));
                streams.push(Stream::structural("values", stored * vb));
                AnyMatrix::Csr(csr)
            }
            FormatKind::Csc => {
                let csc = match scratch.take_matrix(FormatKind::Csc) {
                    Some(AnyMatrix::Csc(mut m)) => {
                        m.assign_from_coo(tile, scratch.tmp_triplets());
                        m
                    }
                    _ => sparsemat::Csc::from(tile),
                };
                let stored = csc.nnz() as u64;
                streams.push(Stream::structural("offsets", (p + 1) * ib));
                streams.push(Stream::structural("rowInx", stored * ib));
                streams.push(Stream::structural("values", stored * vb));
                AnyMatrix::Csc(csc)
            }
            FormatKind::Bcsr => {
                let bcsr = match scratch.take_matrix(FormatKind::Bcsr) {
                    Some(AnyMatrix::Bcsr(mut m)) => {
                        m.assign_from_coo(tile, cfg.bcsr_block, scratch.tmp_triplets())?;
                        m
                    }
                    _ => Bcsr::from_coo(tile, cfg.bcsr_block)?,
                };
                let block_rows = bcsr.block_rows() as u64;
                let nblk = bcsr.num_blocks() as u64;
                let b2 = (cfg.bcsr_block * cfg.bcsr_block) as u64;
                streams.push(Stream::structural("offsets", (block_rows + 1) * ib));
                streams.push(Stream::structural("colInx", nblk * ib));
                // The whole block is streamed, intra-block zeros too —
                // the paper's first BCSR downside.
                streams.push(Stream::structural("values", nblk * b2 * vb));
                AnyMatrix::Bcsr(bcsr)
            }
            FormatKind::Coo | FormatKind::Dok => {
                // (row, col, value) per entry; DOK streams identically.
                // Duplicate coordinates merge during encoding exactly as
                // CSR/CSC merge them, so every format accounts (and ships)
                // the *encoded* structure, not the raw triplet list.
                let coo = match scratch.take_matrix(FormatKind::Coo) {
                    Some(AnyMatrix::Coo(mut m)) => {
                        m.assign_from(tile);
                        if !m.is_compressed() {
                            m.compress();
                        }
                        m
                    }
                    _ if tile.is_compressed() => tile.clone(),
                    _ => {
                        let mut merged = tile.clone();
                        merged.compress();
                        merged
                    }
                };
                let stored = coo.nnz() as u64;
                streams.push(Stream::structural("rowInx", stored * ib));
                streams.push(Stream::structural("colInx", stored * ib));
                streams.push(Stream::structural("values", stored * vb));
                AnyMatrix::Coo(coo)
            }
            FormatKind::Lil => {
                let lil = match scratch.take_matrix(FormatKind::Lil) {
                    Some(AnyMatrix::Lil(mut m)) => {
                        m.assign_from_coo_columns(tile, scratch.tmp_triplets());
                        m
                    }
                    _ => Lil::from_coo_columns(tile),
                };
                // values[HEIGHT][WIDTH] + Inx[HEIGHT][WIDTH] where HEIGHT is
                // the longest column plus the end-marker row §5.2 describes.
                let height = lil.max_line_len() as u64 + 1;
                streams.push(Stream::structural("Inx", height * p * ib));
                streams.push(Stream::structural("values", height * p * vb));
                AnyMatrix::Lil(lil)
            }
            FormatKind::Ell => {
                let ell = match scratch.take_matrix(FormatKind::Ell) {
                    Some(AnyMatrix::Ell(mut m)) => {
                        m.assign_from_coo_natural(tile, scratch.tmp_triplets());
                        m
                    }
                    _ => Ell::from_coo_natural(tile),
                };
                let w = ell.width() as u64;
                streams.push(Stream::structural("colInx", w * p * ib));
                streams.push(Stream::structural("values", w * p * vb));
                AnyMatrix::Ell(ell)
            }
            FormatKind::Dia => {
                let dia = match scratch.take_matrix(FormatKind::Dia) {
                    Some(AnyMatrix::Dia(mut m)) => {
                        m.assign_from_coo(tile);
                        m
                    }
                    _ => Dia::from_coo(tile),
                };
                // Listing 7 stores `diags[NUM_DIAGONALS][MAX_DIAGONAL_LEN]`:
                // every stored diagonal travels as a fixed-length row of
                // p + 1 elements (header + maximum diagonal length, §2),
                // zero-padded when the diagonal is shorter. This padding is
                // exactly why §6.3 finds DIA's bandwidth utilization on
                // non-diagonal band matrices no better than the generic
                // formats.
                streams.push(Stream::structural(
                    "diags",
                    dia.num_diagonals() as u64 * (p + 1) * vb,
                ));
                AnyMatrix::Dia(dia)
            }
            other @ (FormatKind::Bcsc | FormatKind::Sell | FormatKind::Jds) => {
                return Err(SparseError::UnknownFormat(format!(
                    "{other} is not part of the characterized platform"
                )));
            }
        };

        // Second stage: run each stream's serialized bytes through the
        // configured codec. Streams whose coded form is no smaller ship raw
        // (`coded_bytes == bytes`), so the second stage never inflates a
        // transfer.
        let (payload, coded) = scratch.byte_pools();
        if let Some(codec) = codec_for(cfg.stream_codec) {
            for s in &mut streams {
                stream_payload(&matrix, s.name, cfg, payload);
                debug_assert_eq!(
                    payload.len() as u64,
                    s.bytes,
                    "{} payload vs accounting for {}",
                    s.name,
                    matrix.kind()
                );
                // A stream the codec cannot represent (e.g. beyond Huffman's
                // u32 length header) ships raw rather than truncated.
                if codec.encode_bytes(payload, coded).is_ok() {
                    s.coded_bytes = s.bytes.min(coded.len() as u64);
                }
            }
        }

        // Useful payload = the non-zero values the encoded structure
        // actually carries (duplicates merged where the format merges them).
        let useful_bytes = matrix.nnz() as u64 * vb;
        Ok(EncodedPartition {
            matrix,
            streams,
            useful_bytes,
        })
    }

    /// Total bytes of the structural encoding (data + metadata), before any
    /// second-stage codec.
    pub fn total_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.bytes).sum()
    }

    /// Bytes actually crossing the bus after second-stage coding. Equals
    /// [`EncodedPartition::total_bytes`] when no codec is configured.
    pub fn transfer_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.coded_bytes).sum()
    }

    /// Memory-bandwidth utilization of this partition: useful / total
    /// structural bytes — the paper's §4.2 metric, independent of the
    /// second-stage codec so codec sweeps stay comparable to the paper.
    pub fn bandwidth_utilization(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.useful_bytes as f64 / total as f64
        }
    }

    /// Memory latency in cycles to stream this partition in (§4.2 metric i),
    /// over the coded byte counts.
    pub fn memory_cycles(&self, cfg: &HwConfig) -> u64 {
        cfg.transfer_cycles(self.transfer_bytes())
    }

    /// Second-stage decoder cycles for this partition: the configured
    /// codec's per-stream setup plus cycles per coded byte, charged only for
    /// streams that actually shipped coded (raw streams bypass the decoder).
    /// Zero when no codec is configured.
    pub fn entropy_cycles(&self, cfg: &HwConfig) -> u64 {
        let Some(codec) = codec_for(cfg.stream_codec) else {
            return 0;
        };
        let cost = codec.cost_model();
        self.streams
            .iter()
            .filter(|s| s.coded_bytes < s.bytes)
            .map(|s| cost.stream_cycles(s.coded_bytes))
            .sum()
    }

    /// The format this partition is encoded in.
    pub fn kind(&self) -> FormatKind {
        self.matrix.kind()
    }
}

/// Appends the first `width` little-endian bytes of `le`, zero-padded when
/// `le` is shorter — so serialized widths always match the configured
/// index/value byte widths the accounting uses.
fn push_truncated(out: &mut Vec<u8>, le: &[u8], width: usize) {
    let n = width.min(le.len());
    out.extend_from_slice(&le[..n]);
    out.resize(out.len() + (width - n), 0);
}

fn push_index(out: &mut Vec<u8>, v: usize, ib: usize) {
    push_truncated(out, &(v as u64).to_le_bytes(), ib);
}

fn push_value(out: &mut Vec<u8>, v: f32, vb: usize) {
    push_truncated(out, &v.to_le_bytes(), vb);
}

/// Serializes a whole index slice. At the default 4-byte width this is a
/// single reserve plus fixed-size appends (`as u32` keeps the same low
/// bytes the truncating path keeps); other widths fall back per element.
fn push_indices(out: &mut Vec<u8>, indices: &[usize], ib: usize) {
    if ib == 4 {
        out.reserve(indices.len() * 4);
        for &i in indices {
            out.extend_from_slice(&(i as u32).to_le_bytes());
        }
    } else {
        for &i in indices {
            push_index(out, i, ib);
        }
    }
}

/// Serializes a whole value slice; fixed-size appends at the native 4-byte
/// `f32` width, per-element truncation otherwise.
fn push_values(out: &mut Vec<u8>, values: &[f32], vb: usize) {
    if vb == 4 {
        out.reserve(values.len() * 4);
        for &v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    } else {
        for &v in values {
            push_value(out, v, vb);
        }
    }
}

/// Serializes the named transfer stream of an encoded partition into `out`
/// (cleared first), exactly as it would cross the AXI stream: little-endian,
/// `index_bytes`/`value_bytes` wide, padding included. The resulting length
/// always equals the [`Stream::bytes`] accounting for that stream — the
/// second-stage codec compresses precisely these bytes.
pub(crate) fn stream_payload(
    matrix: &AnyMatrix<f32>,
    name: &str,
    cfg: &HwConfig,
    out: &mut Vec<u8>,
) {
    out.clear();
    let ib = cfg.index_bytes;
    let vb = cfg.value_bytes;
    let p = cfg.partition_size;
    match (matrix, name) {
        (AnyMatrix::Dense(m), "values") => push_values(out, m.as_slice(), vb),
        (AnyMatrix::Csr(m), "offsets") => push_indices(out, m.offsets(), ib),
        (AnyMatrix::Csr(m), "colInx") => push_indices(out, m.indices(), ib),
        (AnyMatrix::Csr(m), "values") => push_values(out, m.values(), vb),
        (AnyMatrix::Csc(m), "offsets") => push_indices(out, m.offsets(), ib),
        (AnyMatrix::Csc(m), "rowInx") => push_indices(out, m.indices(), ib),
        (AnyMatrix::Csc(m), "values") => push_values(out, m.values(), vb),
        (AnyMatrix::Bcsr(m), "offsets") => push_indices(out, m.offsets(), ib),
        (AnyMatrix::Bcsr(m), "colInx") => push_indices(out, m.indices(), ib),
        (AnyMatrix::Bcsr(m), "values") => push_values(out, m.values(), vb),
        (AnyMatrix::Coo(m), "rowInx") => {
            out.reserve(m.nnz() * ib);
            for t in m.iter() {
                push_index(out, t.row, ib);
            }
        }
        (AnyMatrix::Coo(m), "colInx") => {
            out.reserve(m.nnz() * ib);
            for t in m.iter() {
                push_index(out, t.col, ib);
            }
        }
        (AnyMatrix::Coo(m), "values") => {
            out.reserve(m.nnz() * vb);
            for t in m.iter() {
                push_value(out, t.val, vb);
            }
        }
        // LIL travels as HEIGHT rows of WIDTH lanes (§5.2): slot h of every
        // line, end-marker (all-ones index, zero value) past a line's end.
        (AnyMatrix::Lil(m), "Inx") => {
            for h in 0..m.max_line_len() + 1 {
                for l in 0..m.num_lines() {
                    let inx = m.line(l).get(h).map_or(usize::MAX, |&(i, _)| i);
                    push_index(out, inx, ib);
                }
            }
        }
        (AnyMatrix::Lil(m), "values") => {
            for h in 0..m.max_line_len() + 1 {
                for l in 0..m.num_lines() {
                    let val = m.line(l).get(h).map_or(0.0, |&(_, v)| v);
                    push_value(out, val, vb);
                }
            }
        }
        (AnyMatrix::Ell(m), "colInx") => push_indices(out, m.raw_slots().0, ib),
        (AnyMatrix::Ell(m), "values") => push_values(out, m.raw_slots().1, vb),
        // Each stored diagonal travels as its offset header plus p values,
        // zero-padded — `diags[NUM_DIAGONALS][MAX_DIAGONAL_LEN]` of
        // Listing 7 with the header in slot 0.
        (AnyMatrix::Dia(m), "diags") => {
            for k in 0..m.num_diagonals() {
                push_truncated(out, &(m.offsets()[k] as i64).to_le_bytes(), vb);
                let diag = m.diagonal(k);
                push_values(out, diag, vb);
                // Zero-pad in one resize: a zero value serializes to `vb`
                // zero bytes at any width.
                out.resize(out.len() + p.saturating_sub(diag.len()) * vb, 0);
            }
        }
        _ => debug_assert!(false, "no stream {name:?} on a {} partition", matrix.kind()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(entries: &[(usize, usize, f32)], p: usize) -> Coo<f32> {
        let mut coo = Coo::new(p, p);
        for &(r, c, v) in entries {
            coo.push(r, c, v).unwrap();
        }
        coo
    }

    fn cfg() -> HwConfig {
        HwConfig::with_partition_size(16)
    }

    #[test]
    fn coo_utilization_is_one_third() {
        // §6.3: "the memory bandwidth utilization of COO is always 0.3
        // since it always transmits two indices per one non-zero entry."
        let t = tile(&[(0, 0, 1.0), (3, 7, 2.0), (9, 2, 3.0)], 16);
        let e = EncodedPartition::encode(&t, FormatKind::Coo, &cfg()).unwrap();
        assert!((e.bandwidth_utilization() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dok_accounts_like_coo() {
        let t = tile(&[(0, 0, 1.0), (3, 7, 2.0)], 16);
        let coo = EncodedPartition::encode(&t, FormatKind::Coo, &cfg()).unwrap();
        let dok = EncodedPartition::encode(&t, FormatKind::Dok, &cfg()).unwrap();
        assert_eq!(coo.total_bytes(), dok.total_bytes());
        assert_eq!(coo.useful_bytes, dok.useful_bytes);
    }

    #[test]
    fn dia_utilization_near_one_for_diagonal_tile() {
        // §6.3: DIA's utilization on diagonal matrices is p/(p+1), the
        // "slight difference [...] because of saving the diagonal number."
        let entries: Vec<(usize, usize, f32)> = (0..16).map(|i| (i, i, 1.0)).collect();
        let t = tile(&entries, 16);
        let e = EncodedPartition::encode(&t, FormatKind::Dia, &cfg()).unwrap();
        assert!((e.bandwidth_utilization() - 16.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn dense_transfers_all_cells() {
        let t = tile(&[(1, 1, 5.0)], 16);
        let e = EncodedPartition::encode(&t, FormatKind::Dense, &cfg()).unwrap();
        assert_eq!(e.total_bytes(), 16 * 16 * 4);
        assert_eq!(e.useful_bytes, 4);
    }

    #[test]
    fn csr_streams_offsets_indices_values() {
        let t = tile(&[(0, 0, 1.0), (0, 5, 2.0), (4, 4, 3.0)], 16);
        let e = EncodedPartition::encode(&t, FormatKind::Csr, &cfg()).unwrap();
        let names: Vec<&str> = e.streams.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["offsets", "colInx", "values"]);
        assert_eq!(e.total_bytes(), (17 + 3 + 3) as u64 * 4);
    }

    #[test]
    fn bcsr_transfers_full_blocks() {
        // One entry → one 4x4 block → 16 values despite nnz = 1.
        let t = tile(&[(0, 0, 1.0)], 16);
        let e = EncodedPartition::encode(&t, FormatKind::Bcsr, &cfg()).unwrap();
        let values = e.streams.iter().find(|s| s.name == "values").unwrap();
        assert_eq!(values.bytes, 16 * 4);
        assert!(e.bandwidth_utilization() < 0.1);
    }

    #[test]
    fn ell_bytes_scale_with_longest_row() {
        let short = tile(&[(0, 0, 1.0)], 16);
        let long = tile(&[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)], 16);
        let cfg = cfg();
        let e_short = EncodedPartition::encode(&short, FormatKind::Ell, &cfg).unwrap();
        let e_long = EncodedPartition::encode(&long, FormatKind::Ell, &cfg).unwrap();
        assert_eq!(e_short.total_bytes(), 2 * 16 * 4);
        assert_eq!(e_long.total_bytes(), 3 * 2 * 16 * 4);
    }

    #[test]
    fn lil_bytes_use_longest_column_plus_marker() {
        // Column 0 has two entries → height = 3 rows of width 16, twice
        // (values + indices).
        let t = tile(&[(0, 0, 1.0), (5, 0, 2.0), (3, 8, 3.0)], 16);
        let e = EncodedPartition::encode(&t, FormatKind::Lil, &cfg()).unwrap();
        assert_eq!(e.total_bytes(), 2 * 3 * 16 * 4);
    }

    #[test]
    fn memory_cycles_match_transfer_formula() {
        let t = tile(&[(0, 0, 1.0)], 16);
        let cfg = cfg();
        let e = EncodedPartition::encode(&t, FormatKind::Dense, &cfg).unwrap();
        assert_eq!(e.memory_cycles(&cfg), 4 + (16 * 16 * 4) / 8);
    }

    #[test]
    fn uncharacterized_formats_are_rejected() {
        let t = tile(&[(0, 0, 1.0)], 16);
        assert!(EncodedPartition::encode(&t, FormatKind::Sell, &cfg()).is_err());
        assert!(EncodedPartition::encode(&t, FormatKind::Jds, &cfg()).is_err());
    }

    #[test]
    fn coo_merges_duplicate_coordinates_like_csr() {
        let t = tile(&[(0, 0, 1.0), (0, 0, 2.0), (3, 7, 2.0)], 16);
        let coo = EncodedPartition::encode(&t, FormatKind::Coo, &cfg()).unwrap();
        let csr = EncodedPartition::encode(&t, FormatKind::Csr, &cfg()).unwrap();
        assert_eq!(coo.matrix.nnz(), 2, "duplicate (0,0) must merge");
        assert_eq!(coo.matrix.nnz(), csr.matrix.nnz());
        assert_eq!(coo.useful_bytes, csr.useful_bytes);
        // 2 stored entries × (2 indices + 1 value) × 4 bytes.
        assert_eq!(coo.total_bytes(), 2 * 3 * 4);
    }

    #[test]
    fn stream_payloads_match_the_accounting_for_every_format() {
        let t = tile(&[(0, 0, 1.0), (2, 3, -2.0), (15, 15, 4.0), (7, 7, 1.0)], 16);
        let cfg = cfg();
        let mut payload = Vec::new();
        for kind in FormatKind::CHARACTERIZED {
            let e = EncodedPartition::encode(&t, kind, &cfg).unwrap();
            for s in &e.streams {
                stream_payload(&e.matrix, s.name, &cfg, &mut payload);
                assert_eq!(payload.len() as u64, s.bytes, "{kind}/{}", s.name);
            }
        }
    }

    #[test]
    fn codecs_never_inflate_and_none_is_identity() {
        let t = tile(&[(0, 0, 1.0), (2, 3, -2.0), (15, 15, 4.0), (7, 7, 1.0)], 16);
        let mut cfg = cfg();
        for codec in crate::CodecKind::ALL {
            cfg.stream_codec = codec;
            for kind in FormatKind::CHARACTERIZED {
                let e = EncodedPartition::encode(&t, kind, &cfg).unwrap();
                for s in &e.streams {
                    assert!(s.coded_bytes <= s.bytes, "{codec}/{kind}/{}", s.name);
                }
                assert!(e.transfer_bytes() <= e.total_bytes());
                if codec == crate::CodecKind::None {
                    assert_eq!(e.transfer_bytes(), e.total_bytes());
                    assert_eq!(e.entropy_cycles(&cfg), 0);
                }
            }
        }
    }

    #[test]
    fn rle_collapses_the_dense_zero_plane() {
        let t = tile(&[(0, 0, 1.0)], 16);
        let mut cfg = cfg();
        cfg.stream_codec = crate::CodecKind::Rle;
        let e = EncodedPartition::encode(&t, FormatKind::Dense, &cfg).unwrap();
        assert!(
            e.transfer_bytes() < e.total_bytes() / 10,
            "{} of {}",
            e.transfer_bytes(),
            e.total_bytes()
        );
        assert!(
            e.entropy_cycles(&cfg) > 0,
            "coded streams cost decode cycles"
        );
        assert!(e.memory_cycles(&cfg) < cfg.transfer_cycles(e.total_bytes()));
        // Utilization stays the paper's structural metric.
        assert!((e.bandwidth_utilization() - 4.0 / (16.0 * 16.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_in_unit_interval_for_all_formats() {
        let t = tile(&[(0, 0, 1.0), (2, 3, -2.0), (15, 15, 4.0), (7, 7, 1.0)], 16);
        let cfg = cfg();
        for kind in FormatKind::CHARACTERIZED {
            let e = EncodedPartition::encode(&t, kind, &cfg).unwrap();
            let u = e.bandwidth_utilization();
            assert!((0.0..=1.0).contains(&u), "{kind}: {u}");
        }
    }
}
