//! Per-partition encoding and transfer-size accounting.
//!
//! The memory side of the characterization: for each format, how many bytes
//! cross the AXI stream when one compressed `p×p` partition is transferred
//! (data *and* metadata), and how many of those bytes are "useful" — the
//! actual non-zero values. The ratio is the paper's memory-bandwidth
//! utilization metric (§4.2: "the ratio of useful data over all transmitted
//! data (i.e., useful data plus metadata)").

use crate::{EncodeScratch, HwConfig};
use sparsemat::{AnyMatrix, Bcsr, Coo, Dia, Ell, FormatKind, Lil, Matrix, SparseError};

/// One named transfer stream of an encoded partition (values, indices,
/// offsets, …) with its byte count — the AXIS streamlines of Fig. 2.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Stream {
    /// Array name as the paper's listings call it.
    pub name: &'static str,
    /// Bytes transferred on this stream for one partition.
    pub bytes: u64,
}

/// A `p×p` partition encoded in one characterized format, with its transfer
/// accounting.
#[derive(Debug, Clone)]
pub struct EncodedPartition {
    /// The encoded matrix (kept concrete behind [`AnyMatrix`] so the
    /// decompressor models can reach format internals).
    pub matrix: AnyMatrix<f32>,
    /// Transfer streams (data + metadata).
    pub streams: Vec<Stream>,
    /// Bytes of genuinely useful payload (non-zero values only).
    pub useful_bytes: u64,
}

impl EncodedPartition {
    /// Encodes one partition's COO tile in the given format and computes its
    /// transfer accounting.
    ///
    /// `Dok` is accepted and accounted exactly like `Coo` — §5.2: "The same
    /// procedure is also applicable to DOK."
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::UnknownFormat`] for formats the paper does not
    /// characterize on the platform (`Sell`, `Jds`).
    pub fn encode(
        tile: &Coo<f32>,
        format: FormatKind,
        cfg: &HwConfig,
    ) -> Result<Self, SparseError> {
        Self::encode_into(tile, format, cfg, Vec::new())
    }

    /// Like [`EncodedPartition::encode`], but reuses the stream buffer held
    /// by `scratch` instead of allocating one per tile. Returning the
    /// finished partition through [`EncodeScratch::recycle_encoded`] keeps
    /// the steady-state encode path allocation-free for the stream list.
    ///
    /// # Errors
    ///
    /// Same as [`EncodedPartition::encode`].
    pub fn encode_with(
        tile: &Coo<f32>,
        format: FormatKind,
        cfg: &HwConfig,
        scratch: &mut EncodeScratch,
    ) -> Result<Self, SparseError> {
        Self::encode_into(tile, format, cfg, scratch.take_streams())
    }

    fn encode_into(
        tile: &Coo<f32>,
        format: FormatKind,
        cfg: &HwConfig,
        mut streams: Vec<Stream>,
    ) -> Result<Self, SparseError> {
        let vb = cfg.value_bytes as u64;
        let ib = cfg.index_bytes as u64;
        let p = cfg.partition_size as u64;
        let nnz = tile.nnz() as u64;
        debug_assert!(streams.is_empty());

        let matrix = match format {
            FormatKind::Dense => {
                // The dense baseline streams every cell, zeros included.
                streams.push(Stream {
                    name: "values",
                    bytes: p * p * vb,
                });
                AnyMatrix::Dense(tile.to_dense())
            }
            FormatKind::Csr => {
                let csr = sparsemat::Csr::from(tile);
                // Duplicate COO coordinates merge during encoding, so the
                // streamed entry count is the *encoded* structure's.
                let stored = csr.nnz() as u64;
                streams.push(Stream {
                    name: "offsets",
                    bytes: (p + 1) * ib,
                });
                streams.push(Stream {
                    name: "colInx",
                    bytes: stored * ib,
                });
                streams.push(Stream {
                    name: "values",
                    bytes: stored * vb,
                });
                AnyMatrix::Csr(csr)
            }
            FormatKind::Csc => {
                let csc = sparsemat::Csc::from(tile);
                let stored = csc.nnz() as u64;
                streams.push(Stream {
                    name: "offsets",
                    bytes: (p + 1) * ib,
                });
                streams.push(Stream {
                    name: "rowInx",
                    bytes: stored * ib,
                });
                streams.push(Stream {
                    name: "values",
                    bytes: stored * vb,
                });
                AnyMatrix::Csc(csc)
            }
            FormatKind::Bcsr => {
                let bcsr = Bcsr::from_coo(tile, cfg.bcsr_block)?;
                let block_rows = bcsr.block_rows() as u64;
                let nblk = bcsr.num_blocks() as u64;
                let b2 = (cfg.bcsr_block * cfg.bcsr_block) as u64;
                streams.push(Stream {
                    name: "offsets",
                    bytes: (block_rows + 1) * ib,
                });
                streams.push(Stream {
                    name: "colInx",
                    bytes: nblk * ib,
                });
                // The whole block is streamed, intra-block zeros too —
                // the paper's first BCSR downside.
                streams.push(Stream {
                    name: "values",
                    bytes: nblk * b2 * vb,
                });
                AnyMatrix::Bcsr(bcsr)
            }
            FormatKind::Coo | FormatKind::Dok => {
                // (row, col, value) per entry; DOK streams identically.
                streams.push(Stream {
                    name: "rowInx",
                    bytes: nnz * ib,
                });
                streams.push(Stream {
                    name: "colInx",
                    bytes: nnz * ib,
                });
                streams.push(Stream {
                    name: "values",
                    bytes: nnz * vb,
                });
                AnyMatrix::Coo(tile.clone())
            }
            FormatKind::Lil => {
                let lil = Lil::from_coo_columns(tile);
                // values[HEIGHT][WIDTH] + Inx[HEIGHT][WIDTH] where HEIGHT is
                // the longest column plus the end-marker row §5.2 describes.
                let height = lil.max_line_len() as u64 + 1;
                streams.push(Stream {
                    name: "Inx",
                    bytes: height * p * ib,
                });
                streams.push(Stream {
                    name: "values",
                    bytes: height * p * vb,
                });
                AnyMatrix::Lil(lil)
            }
            FormatKind::Ell => {
                let ell = Ell::from_coo_natural(tile);
                let w = ell.width() as u64;
                streams.push(Stream {
                    name: "colInx",
                    bytes: w * p * ib,
                });
                streams.push(Stream {
                    name: "values",
                    bytes: w * p * vb,
                });
                AnyMatrix::Ell(ell)
            }
            FormatKind::Dia => {
                let dia = Dia::from_coo(tile);
                // Listing 7 stores `diags[NUM_DIAGONALS][MAX_DIAGONAL_LEN]`:
                // every stored diagonal travels as a fixed-length row of
                // p + 1 elements (header + maximum diagonal length, §2),
                // zero-padded when the diagonal is shorter. This padding is
                // exactly why §6.3 finds DIA's bandwidth utilization on
                // non-diagonal band matrices no better than the generic
                // formats.
                streams.push(Stream {
                    name: "diags",
                    bytes: dia.num_diagonals() as u64 * (p + 1) * vb,
                });
                AnyMatrix::Dia(dia)
            }
            other @ (FormatKind::Bcsc | FormatKind::Sell | FormatKind::Jds) => {
                return Err(SparseError::UnknownFormat(format!(
                    "{other} is not part of the characterized platform"
                )));
            }
        };

        // Useful payload = the non-zero values the encoded structure
        // actually carries (duplicates merged where the format merges them).
        let useful_bytes = matrix.nnz() as u64 * vb;
        Ok(EncodedPartition {
            matrix,
            streams,
            useful_bytes,
        })
    }

    /// Total bytes transferred for this partition (data + metadata).
    pub fn total_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.bytes).sum()
    }

    /// Memory-bandwidth utilization of this partition: useful / total.
    pub fn bandwidth_utilization(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.useful_bytes as f64 / total as f64
        }
    }

    /// Memory latency in cycles to stream this partition in (§4.2 metric i).
    pub fn memory_cycles(&self, cfg: &HwConfig) -> u64 {
        cfg.transfer_cycles(self.total_bytes())
    }

    /// The format this partition is encoded in.
    pub fn kind(&self) -> FormatKind {
        self.matrix.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(entries: &[(usize, usize, f32)], p: usize) -> Coo<f32> {
        let mut coo = Coo::new(p, p);
        for &(r, c, v) in entries {
            coo.push(r, c, v).unwrap();
        }
        coo
    }

    fn cfg() -> HwConfig {
        HwConfig::with_partition_size(16)
    }

    #[test]
    fn coo_utilization_is_one_third() {
        // §6.3: "the memory bandwidth utilization of COO is always 0.3
        // since it always transmits two indices per one non-zero entry."
        let t = tile(&[(0, 0, 1.0), (3, 7, 2.0), (9, 2, 3.0)], 16);
        let e = EncodedPartition::encode(&t, FormatKind::Coo, &cfg()).unwrap();
        assert!((e.bandwidth_utilization() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dok_accounts_like_coo() {
        let t = tile(&[(0, 0, 1.0), (3, 7, 2.0)], 16);
        let coo = EncodedPartition::encode(&t, FormatKind::Coo, &cfg()).unwrap();
        let dok = EncodedPartition::encode(&t, FormatKind::Dok, &cfg()).unwrap();
        assert_eq!(coo.total_bytes(), dok.total_bytes());
        assert_eq!(coo.useful_bytes, dok.useful_bytes);
    }

    #[test]
    fn dia_utilization_near_one_for_diagonal_tile() {
        // §6.3: DIA's utilization on diagonal matrices is p/(p+1), the
        // "slight difference [...] because of saving the diagonal number."
        let entries: Vec<(usize, usize, f32)> = (0..16).map(|i| (i, i, 1.0)).collect();
        let t = tile(&entries, 16);
        let e = EncodedPartition::encode(&t, FormatKind::Dia, &cfg()).unwrap();
        assert!((e.bandwidth_utilization() - 16.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn dense_transfers_all_cells() {
        let t = tile(&[(1, 1, 5.0)], 16);
        let e = EncodedPartition::encode(&t, FormatKind::Dense, &cfg()).unwrap();
        assert_eq!(e.total_bytes(), 16 * 16 * 4);
        assert_eq!(e.useful_bytes, 4);
    }

    #[test]
    fn csr_streams_offsets_indices_values() {
        let t = tile(&[(0, 0, 1.0), (0, 5, 2.0), (4, 4, 3.0)], 16);
        let e = EncodedPartition::encode(&t, FormatKind::Csr, &cfg()).unwrap();
        let names: Vec<&str> = e.streams.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["offsets", "colInx", "values"]);
        assert_eq!(e.total_bytes(), (17 + 3 + 3) as u64 * 4);
    }

    #[test]
    fn bcsr_transfers_full_blocks() {
        // One entry → one 4x4 block → 16 values despite nnz = 1.
        let t = tile(&[(0, 0, 1.0)], 16);
        let e = EncodedPartition::encode(&t, FormatKind::Bcsr, &cfg()).unwrap();
        let values = e.streams.iter().find(|s| s.name == "values").unwrap();
        assert_eq!(values.bytes, 16 * 4);
        assert!(e.bandwidth_utilization() < 0.1);
    }

    #[test]
    fn ell_bytes_scale_with_longest_row() {
        let short = tile(&[(0, 0, 1.0)], 16);
        let long = tile(&[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)], 16);
        let cfg = cfg();
        let e_short = EncodedPartition::encode(&short, FormatKind::Ell, &cfg).unwrap();
        let e_long = EncodedPartition::encode(&long, FormatKind::Ell, &cfg).unwrap();
        assert_eq!(e_short.total_bytes(), 2 * 16 * 4);
        assert_eq!(e_long.total_bytes(), 3 * 2 * 16 * 4);
    }

    #[test]
    fn lil_bytes_use_longest_column_plus_marker() {
        // Column 0 has two entries → height = 3 rows of width 16, twice
        // (values + indices).
        let t = tile(&[(0, 0, 1.0), (5, 0, 2.0), (3, 8, 3.0)], 16);
        let e = EncodedPartition::encode(&t, FormatKind::Lil, &cfg()).unwrap();
        assert_eq!(e.total_bytes(), 2 * 3 * 16 * 4);
    }

    #[test]
    fn memory_cycles_match_transfer_formula() {
        let t = tile(&[(0, 0, 1.0)], 16);
        let cfg = cfg();
        let e = EncodedPartition::encode(&t, FormatKind::Dense, &cfg).unwrap();
        assert_eq!(e.memory_cycles(&cfg), 4 + (16 * 16 * 4) / 8);
    }

    #[test]
    fn uncharacterized_formats_are_rejected() {
        let t = tile(&[(0, 0, 1.0)], 16);
        assert!(EncodedPartition::encode(&t, FormatKind::Sell, &cfg()).is_err());
        assert!(EncodedPartition::encode(&t, FormatKind::Jds, &cfg()).is_err());
    }

    #[test]
    fn utilization_is_in_unit_interval_for_all_formats() {
        let t = tile(&[(0, 0, 1.0), (2, 3, -2.0), (15, 15, 4.0), (7, 7, 1.0)], 16);
        let cfg = cfg();
        for kind in FormatKind::CHARACTERIZED {
            let e = EncodedPartition::encode(&t, kind, &cfg).unwrap();
            let u = e.bandwidth_utilization();
            assert!((0.0..=1.0).contains(&u), "{kind}: {u}");
        }
    }
}
