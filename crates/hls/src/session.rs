//! The unified run API: one [`Session`] replaces the eight
//! `Platform::run*` variants.
//!
//! A session owns a validated [`Platform`] plus the [`EncodeScratch`]
//! buffer pool, so consecutive runs share their per-tile buffers instead of
//! re-allocating them. Every combination the old methods offered is
//! expressed as one [`RunRequest`]:
//!
//! ```
//! use copernicus_hls::{HwConfig, RunRequest, Session};
//! use sparsemat::{Coo, FormatKind};
//!
//! let mut m = Coo::new(32, 32);
//! m.push(0, 0, 1.0).unwrap();
//! m.push(17, 3, -2.0).unwrap();
//!
//! let mut session = Session::new(HwConfig::default()).unwrap();
//! let report = session
//!     .run(RunRequest::matrix(&m, FormatKind::Csr))
//!     .unwrap()
//!     .report;
//! assert!(report.total_cycles > 0);
//! ```

use crate::pipeline::apply_contributions;
use crate::{
    BackendKind, EncodeScratch, HwConfig, ParallelReport, Platform, PlatformError, RunReport,
};
use copernicus_telemetry::{NullSink, TraceSink};
use sparsemat::{Coo, FormatKind, PartitionGrid, SparseError};

/// What a [`RunRequest`] streams through the platform: a raw matrix (tiled
/// at the configured partition size) or a pre-built grid shared across a
/// format sweep.
#[derive(Debug)]
pub enum Input<'a> {
    /// A COO matrix, partitioned by the session.
    Matrix(&'a Coo<f32>),
    /// An already-partitioned grid (reused across formats without
    /// re-tiling).
    Grid(&'a PartitionGrid<f32>),
}

/// One run through the platform, built fluently: input and format are
/// mandatory, everything else opts in.
///
/// | old `Platform` method       | request                                        |
/// |-----------------------------|------------------------------------------------|
/// | `run`                       | `RunRequest::matrix(m, f)`                     |
/// | `run_with_sink`             | `...matrix(m, f).with_sink(s)`                 |
/// | `run_grid`                  | `RunRequest::grid(g, f)`                       |
/// | `run_grid_with_sink`        | `...grid(g, f).with_sink(s)`                   |
/// | `run_spmv`                  | `...matrix(m, f).consume_spmv(x)`              |
/// | `run_spmv_with_sink`        | `...matrix(m, f).consume_spmv(x).with_sink(s)` |
/// | `run_parallel`              | `...matrix(m, f).with_lanes(n)`                |
/// | `run_parallel_with_sink`    | `...matrix(m, f).with_lanes(n).with_sink(s)`   |
pub struct RunRequest<'a> {
    input: Input<'a>,
    format: FormatKind,
    sink: Option<&'a mut dyn TraceSink>,
    spmv_x: Option<&'a [f32]>,
    lanes: Option<usize>,
    tile_jobs: Option<usize>,
    backend: Option<BackendKind>,
}

impl std::fmt::Debug for RunRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunRequest")
            .field("input", &self.input)
            .field("format", &self.format)
            .field("sink", &self.sink.is_some())
            .field("spmv", &self.spmv_x.is_some())
            .field("lanes", &self.lanes)
            .field("tile_jobs", &self.tile_jobs)
            .field("backend", &self.backend)
            .finish()
    }
}

impl<'a> RunRequest<'a> {
    /// A run over a raw matrix; the session tiles it at the configured
    /// partition size.
    pub fn matrix(matrix: &'a Coo<f32>, format: FormatKind) -> Self {
        RunRequest {
            input: Input::Matrix(matrix),
            format,
            sink: None,
            spmv_x: None,
            lanes: None,
            tile_jobs: None,
            backend: None,
        }
    }

    /// A run over an already-partitioned grid (lets one grid feed the whole
    /// 8-format sweep).
    pub fn grid(grid: &'a PartitionGrid<f32>, format: FormatKind) -> Self {
        RunRequest {
            input: Input::Grid(grid),
            format,
            sink: None,
            spmv_x: None,
            lanes: None,
            tile_jobs: None,
            backend: None,
        }
    }

    /// Emits pipeline events into `sink` at modeled-cycle timestamps.
    #[must_use]
    pub fn with_sink(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Feeds each decompressed partition to the dot-product engine against
    /// operand `x`, producing `y = A·x` in [`RunOutcome::y`]. The same
    /// encode+decompress pass feeds both the timing report and the product.
    #[must_use]
    pub fn consume_spmv(mut self, x: &'a [f32]) -> Self {
        self.spmv_x = Some(x);
        self
    }

    /// Runs `lanes` aggregated compute instances sharing one memory channel
    /// (§5.1) instead of the single three-stage pipeline; the scaling
    /// result lands in [`RunOutcome::parallel`].
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = Some(lanes);
        self
    }

    /// Processes this run's partitions on `jobs` worker threads (clamped to
    /// at least 1 = serial), overriding the session-wide
    /// [`Session::set_tile_jobs`] setting for this request only. Purely a
    /// host-side speedup: reports, traces and SpMV results are
    /// byte-identical at any worker count.
    #[must_use]
    pub fn par_tiles(mut self, jobs: usize) -> Self {
        self.tile_jobs = Some(jobs);
        self
    }

    /// Costs this run on `backend` instead of the session's configured
    /// [`HwConfig::backend`], for this request only. The encode /
    /// decompress pass (and any SpMV product) is backend-independent;
    /// only cycle charges and the reported clock change.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }
}

/// Everything a run can produce. `report` is always present; the optional
/// halves mirror the request's options.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The timing report (for a lanes run: the single-lane baseline, as
    /// `run_parallel` reported inside [`ParallelReport`]).
    pub report: RunReport,
    /// `y = A·x`, present iff the request used
    /// [`RunRequest::consume_spmv`].
    pub y: Option<Vec<f32>>,
    /// The aggregated-lanes scaling report, present iff the request used
    /// [`RunRequest::with_lanes`].
    pub parallel: Option<ParallelReport>,
}

/// A platform plus its reusable scratch buffers — the one entry point for
/// streaming matrices through the modeled hardware.
#[derive(Debug)]
pub struct Session {
    platform: Platform,
    scratch: EncodeScratch,
}

impl Session {
    /// Builds a session from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Config`] when the configuration fails
    /// [`HwConfig::validate`].
    pub fn new(cfg: HwConfig) -> Result<Self, PlatformError> {
        Ok(Session::from_platform(Platform::new(cfg)?))
    }

    /// Wraps an already-validated platform.
    pub fn from_platform(platform: Platform) -> Self {
        Session {
            platform,
            scratch: EncodeScratch::new(),
        }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The active configuration.
    pub fn config(&self) -> &HwConfig {
        self.platform.config()
    }

    /// Attaches (or detaches) a wall-clock phase profiler. Profiling sits
    /// outside the deterministic artifact path: reports and traces are
    /// byte-identical with or without it.
    pub fn set_profiler(
        &mut self,
        profiler: Option<std::sync::Arc<copernicus_telemetry::PhaseProfiler>>,
    ) {
        self.platform.set_profiler(profiler);
    }

    /// Builder-style [`Session::set_profiler`].
    #[must_use]
    pub fn with_profiler(
        mut self,
        profiler: std::sync::Arc<copernicus_telemetry::PhaseProfiler>,
    ) -> Self {
        self.set_profiler(Some(profiler));
        self
    }

    /// Sets how many worker threads process each subsequent run's
    /// partitions (clamped to at least 1 = serial). Purely a host-side
    /// speedup: every run's outputs are byte-identical at any worker count
    /// (test-enforced). [`RunRequest::par_tiles`] overrides this per run.
    pub fn set_tile_jobs(&mut self, jobs: usize) {
        self.platform.set_tile_jobs(jobs);
    }

    /// Builder-style [`Session::set_tile_jobs`].
    #[must_use]
    pub fn with_tile_jobs(mut self, jobs: usize) -> Self {
        self.set_tile_jobs(jobs);
        self
    }

    /// The session-wide intra-run worker count.
    pub fn tile_jobs(&self) -> usize {
        self.platform.tile_jobs()
    }

    /// Attaches (or with `None`, detaches) a cooperative cancellation
    /// token, polled between partitions of every subsequent run. Once the
    /// token reports cancelled, runs fail with
    /// [`PlatformError::Cancelled`]; runs that complete first are
    /// byte-identical to untokened runs.
    pub fn set_cancel(&mut self, cancel: Option<copernicus_telemetry::CancelToken>) {
        self.platform.set_cancel(cancel);
    }

    /// Builder-style [`Session::set_cancel`].
    #[must_use]
    pub fn with_cancel(mut self, cancel: copernicus_telemetry::CancelToken) -> Self {
        self.set_cancel(Some(cancel));
        self
    }

    /// Executes one request. See [`RunRequest`] for the option matrix.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Config`] when `lanes` is zero or combined with an
    /// SpMV consume; [`PlatformError::Sparse`] when the SpMV operand length
    /// does not match the matrix column count, or partitioning/encoding
    /// fails; [`PlatformError::FunctionalMismatch`] when verification is on
    /// and a decompressor disagrees with its reference tile.
    pub fn run(&mut self, request: RunRequest<'_>) -> Result<RunOutcome, PlatformError> {
        let RunRequest {
            input,
            format,
            sink,
            spmv_x,
            lanes,
            tile_jobs,
            backend,
        } = request;
        let session_jobs = self.platform.tile_jobs();
        if let Some(jobs) = tile_jobs {
            self.platform.set_tile_jobs(jobs);
        }
        let session_backend = self.platform.backend();
        if let Some(b) = backend {
            self.platform.set_backend(b);
        }
        let outcome = self.dispatch(input, format, sink, spmv_x, lanes);
        self.platform.set_backend(session_backend);
        self.platform.set_tile_jobs(session_jobs);
        outcome
    }

    /// The option dispatch behind [`Session::run`], after the per-request
    /// tile-jobs override has been applied.
    fn dispatch(
        &mut self,
        input: Input<'_>,
        format: FormatKind,
        sink: Option<&mut dyn TraceSink>,
        spmv_x: Option<&[f32]>,
        lanes: Option<usize>,
    ) -> Result<RunOutcome, PlatformError> {
        let mut null = NullSink;
        let sink: &mut dyn TraceSink = match sink {
            Some(sink) => sink,
            None => &mut null,
        };
        let built;
        let grid = match input {
            Input::Grid(grid) => grid,
            Input::Matrix(matrix) => {
                built = PartitionGrid::new(matrix, self.config().partition_size)?;
                &built
            }
        };
        if let Some(lanes) = lanes {
            if spmv_x.is_some() {
                return Err(PlatformError::Config(
                    "SpMV consume is not supported with aggregated lanes".into(),
                ));
            }
            let parallel = self.platform.run_parallel_grid_scratch(
                grid,
                format,
                lanes,
                sink,
                &mut self.scratch,
            )?;
            return Ok(RunOutcome {
                report: parallel.single_lane.clone(),
                y: None,
                parallel: Some(parallel),
            });
        }
        if let Some(x) = spmv_x {
            let (nrows, ncols) = grid.shape();
            if x.len() != ncols {
                return Err(PlatformError::Sparse(SparseError::ShapeMismatch {
                    expected: (ncols, 1),
                    found: (x.len(), 1),
                }));
            }
            let p = self.config().partition_size;
            let mut y = vec![0.0f32; nrows];
            let report = self.platform.run_grid_scratch(
                grid,
                format,
                sink,
                |part, d| apply_contributions(part, d, p, x, &mut y),
                &mut self.scratch,
            )?;
            return Ok(RunOutcome {
                report,
                y: Some(y),
                parallel: None,
            });
        }
        let report =
            self.platform
                .run_grid_scratch(grid, format, sink, |_, _| {}, &mut self.scratch)?;
        Ok(RunOutcome {
            report,
            y: None,
            parallel: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::Matrix;

    fn matrix() -> Coo<f32> {
        let mut coo = Coo::new(48, 48);
        for i in 0..48usize {
            coo.push(i, i, 1.0 + i as f32).unwrap();
            if i + 2 < 48 {
                coo.push(i, i + 2, -0.5).unwrap();
            }
        }
        coo
    }

    #[test]
    fn matrix_and_grid_inputs_agree() {
        let m = matrix();
        let mut session = Session::new(HwConfig::default()).unwrap();
        let grid = PartitionGrid::new(&m, session.config().partition_size).unwrap();
        for kind in FormatKind::CHARACTERIZED {
            let via_matrix = session.run(RunRequest::matrix(&m, kind)).unwrap();
            let via_grid = session.run(RunRequest::grid(&grid, kind)).unwrap();
            assert_eq!(via_matrix, via_grid, "{kind}");
            assert!(via_matrix.y.is_none());
            assert!(via_matrix.parallel.is_none());
        }
    }

    #[test]
    fn spmv_option_returns_the_product() {
        let m = matrix();
        let x: Vec<f32> = (0..48).map(|i| ((i % 9) as f32) - 4.0).collect();
        let mut session = Session::new(HwConfig::default()).unwrap();
        let outcome = session
            .run(RunRequest::matrix(&m, FormatKind::Csr).consume_spmv(&x))
            .unwrap();
        assert_eq!(outcome.y.unwrap(), m.spmv(&x).unwrap());
        // The product pass must not change the timing report.
        let plain = session
            .run(RunRequest::matrix(&m, FormatKind::Csr))
            .unwrap();
        assert_eq!(outcome.report, plain.report);
    }

    #[test]
    fn spmv_from_a_grid_uses_the_true_matrix_shape() {
        // 50 is not a multiple of p=16: edge tiles are padded, and the grid
        // remembers the true 50×50 shape for operand validation.
        let mut m = Coo::new(50, 50);
        for i in 0..50usize {
            m.push(i, 49 - i, 2.0).unwrap();
        }
        let x: Vec<f32> = (0..50).map(|i| (i as f32) * 0.25 - 3.0).collect();
        let mut session = Session::new(HwConfig::default()).unwrap();
        let grid = PartitionGrid::new(&m, session.config().partition_size).unwrap();
        let outcome = session
            .run(RunRequest::grid(&grid, FormatKind::Coo).consume_spmv(&x))
            .unwrap();
        assert_eq!(outcome.y.unwrap(), m.spmv(&x).unwrap());
        assert!(matches!(
            session.run(RunRequest::grid(&grid, FormatKind::Coo).consume_spmv(&x[..49])),
            Err(PlatformError::Sparse(SparseError::ShapeMismatch { .. }))
        ));
    }

    #[test]
    fn lanes_option_returns_the_parallel_report() {
        let m = matrix();
        let mut session = Session::new(HwConfig::default()).unwrap();
        let outcome = session
            .run(RunRequest::matrix(&m, FormatKind::Csc).with_lanes(4))
            .unwrap();
        let parallel = outcome.parallel.unwrap();
        assert_eq!(parallel.lanes, 4);
        assert_eq!(parallel.single_lane, outcome.report);
        assert!(parallel.speedup() > 1.0);
    }

    #[test]
    fn zero_lanes_and_spmv_with_lanes_are_rejected() {
        let m = matrix();
        let x = vec![0.0f32; 48];
        let mut session = Session::new(HwConfig::default()).unwrap();
        assert!(matches!(
            session.run(RunRequest::matrix(&m, FormatKind::Coo).with_lanes(0)),
            Err(PlatformError::Config(_))
        ));
        assert!(matches!(
            session.run(
                RunRequest::matrix(&m, FormatKind::Coo)
                    .consume_spmv(&x)
                    .with_lanes(2)
            ),
            Err(PlatformError::Config(_))
        ));
    }

    #[test]
    fn sink_option_traces_without_perturbing_the_report() {
        let m = matrix();
        let mut session = Session::new(HwConfig::default()).unwrap();
        let plain = session
            .run(RunRequest::matrix(&m, FormatKind::Lil))
            .unwrap();
        let mut sink = copernicus_telemetry::RecordingSink::new();
        let traced = session
            .run(RunRequest::matrix(&m, FormatKind::Lil).with_sink(&mut sink))
            .unwrap();
        assert_eq!(plain.report, traced.report);
        assert_eq!(sink.count("run_start"), 1);
        assert_eq!(sink.count("partition_start"), traced.report.partitions);
    }

    #[test]
    fn backend_override_applies_per_request_and_restores() {
        let m = matrix();
        let mut session = Session::new(HwConfig::default()).unwrap();
        let hls = session
            .run(RunRequest::matrix(&m, FormatKind::Csr))
            .unwrap()
            .report;
        let cpu = session
            .run(RunRequest::matrix(&m, FormatKind::Csr).backend(BackendKind::Cpu))
            .unwrap()
            .report;
        assert_eq!(cpu.clock_mhz, session.config().cpu.clock_mhz);
        assert_ne!(cpu, hls);
        // A session configured for the CPU up front agrees with the
        // per-request override ...
        let mut cpu_session = Session::new(HwConfig {
            backend: BackendKind::Cpu,
            ..HwConfig::default()
        })
        .unwrap();
        let configured = cpu_session
            .run(RunRequest::matrix(&m, FormatKind::Csr))
            .unwrap()
            .report;
        assert_eq!(cpu, configured);
        // ... and the override does not leak into the next request.
        let after = session
            .run(RunRequest::matrix(&m, FormatKind::Csr))
            .unwrap()
            .report;
        assert_eq!(after, hls);
    }

    #[test]
    fn session_reuse_across_formats_stays_deterministic() {
        // The scratch pool warms up over the sweep; results must not drift.
        let m = matrix();
        let mut warm = Session::new(HwConfig::default()).unwrap();
        for _ in 0..3 {
            for kind in FormatKind::CHARACTERIZED {
                let mut fresh = Session::new(HwConfig::default()).unwrap();
                assert_eq!(
                    warm.run(RunRequest::matrix(&m, kind)).unwrap(),
                    fresh.run(RunRequest::matrix(&m, kind)).unwrap(),
                    "{kind}"
                );
            }
        }
    }
}
