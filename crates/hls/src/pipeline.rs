//! The three-stage streaming platform of Fig. 2: memory-read → compute
//! (decompress + dot-product) → memory-write, pipelined across partitions.

use crate::backend::backend_for;
use crate::{decompress_with, Decompression, EncodeScratch, EncodedPartition, HwConfig};
use copernicus_telemetry::{
    CancelToken, NullSink, Phase, PhaseAcc, PhaseProfiler, PipelineEvent, Stage, TraceSink,
};
use sparsemat::{Coo, FormatKind, Partition, PartitionGrid, SparseError};
use std::sync::Arc;

/// Errors produced by platform runs.
#[derive(Debug)]
#[non_exhaustive]
pub enum PlatformError {
    /// The hardware configuration failed validation.
    Config(String),
    /// Partitioning or encoding failed.
    Sparse(SparseError),
    /// A decompressor produced rows that disagree with the reference tile —
    /// the model equivalent of a C/RTL co-simulation mismatch.
    FunctionalMismatch {
        /// Format under test.
        format: FormatKind,
        /// Grid coordinates of the offending partition.
        grid: (usize, usize),
    },
    /// The run was cooperatively cancelled (deadline expired or shutdown
    /// requested) before it completed; partial results are discarded.
    Cancelled,
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::Config(msg) => write!(f, "invalid hardware config: {msg}"),
            PlatformError::Sparse(e) => write!(f, "encoding failed: {e}"),
            PlatformError::FunctionalMismatch { format, grid } => write!(
                f,
                "functional mismatch decompressing {format} partition ({}, {})",
                grid.0, grid.1
            ),
            PlatformError::Cancelled => write!(f, "run cancelled before completion"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for PlatformError {
    fn from(e: SparseError) -> Self {
        PlatformError::Sparse(e)
    }
}

/// Timing of a single partition through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartitionTiming {
    /// Memory-read stage cycles (transfer of data + metadata).
    pub mem_cycles: u64,
    /// Compute stage cycles (second-stage entropy decode + structural
    /// decompression + dot products).
    pub compute_cycles: u64,
    /// Structural-decompression share of the compute stage.
    pub decomp_cycles: u64,
    /// Second-stage (entropy) decode share of the compute stage; zero
    /// without a configured stream codec.
    pub entropy_cycles: u64,
    /// Write-back stage cycles (partial output vector).
    pub writeback_cycles: u64,
    /// Dot products issued.
    pub dot_issues: u64,
    /// Bytes of the structural encoding (data + metadata).
    pub bytes: u64,
    /// Bytes crossing the bus after the second-stage codec (== `bytes`
    /// without one).
    pub coded_bytes: u64,
    /// Bytes of useful payload.
    pub useful_bytes: u64,
    /// BRAM read transactions (power model input).
    pub bram_reads: u64,
}

/// Aggregated result of streaming a whole matrix through the platform in
/// one format.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    /// Format under test.
    pub format: FormatKind,
    /// Partition size `p`.
    pub partition_size: usize,
    /// Number of non-zero partitions processed.
    pub partitions: usize,
    /// Sum of memory-read cycles over partitions.
    pub total_mem_cycles: u64,
    /// Sum of compute cycles over partitions.
    pub total_compute_cycles: u64,
    /// Sum of structural-decompression cycles over partitions.
    pub total_decomp_cycles: u64,
    /// Sum of second-stage (entropy) decode cycles over partitions; zero
    /// without a configured stream codec.
    pub total_entropy_cycles: u64,
    /// Sum of write-back cycles over partitions.
    pub total_writeback_cycles: u64,
    /// Total dot products issued.
    pub total_dot_issues: u64,
    /// Total bytes of the structural encoding (data + metadata).
    pub total_bytes: u64,
    /// Total bytes crossing the bus after the second-stage codec (==
    /// `total_bytes` without one).
    pub total_coded_bytes: u64,
    /// Total useful bytes (non-zero values).
    pub useful_bytes: u64,
    /// Total BRAM read transactions.
    pub total_bram_reads: u64,
    /// End-to-end pipelined cycles (fill + per-partition bottleneck stages).
    pub total_cycles: u64,
    /// Σ over partitions of the dense-baseline compute `p · T_dot(p)` —
    /// the denominator of σ.
    pub dense_equivalent_compute: u64,
    /// Mean over partitions of `mem / compute` (the §4.2 balance ratio).
    pub balance_ratio: f64,
    /// Clock frequency used (MHz), recorded so throughput is reproducible.
    pub clock_mhz: f64,
}

impl RunReport {
    /// The paper's σ (Eq. 1): format compute cycles over the dense-baseline
    /// compute cycles. Exactly 1.0 for the dense format.
    pub fn sigma(&self) -> f64 {
        if self.dense_equivalent_compute == 0 {
            0.0
        } else {
            self.total_compute_cycles as f64 / self.dense_equivalent_compute as f64
        }
    }

    /// Wall-clock seconds of the pipelined run at the configured clock.
    ///
    /// A non-positive or non-finite clock (possible only on hand-built
    /// reports — [`HwConfig::validate`] rejects such configs) yields 0.0
    /// rather than a NaN/Inf that would poison downstream aggregates.
    pub fn total_seconds(&self) -> f64 {
        let hz = self.clock_mhz * 1e6;
        if hz > 0.0 && hz.is_finite() {
            self.total_cycles as f64 / hz
        } else {
            0.0
        }
    }

    /// Throughput in bytes processed per second (§4.2: "bytes processed per
    /// second, which reflects the bubbles in the streaming pipeline").
    ///
    /// An empty run (zero cycles, hence zero seconds) or a degenerate clock
    /// reports 0.0 — never NaN/Inf.
    pub fn throughput_bytes_per_sec(&self) -> f64 {
        let t = self.total_seconds();
        if t > 0.0 && t.is_finite() {
            self.total_bytes as f64 / t
        } else {
            0.0
        }
    }

    /// Memory-bandwidth utilization: useful bytes over all transferred
    /// bytes.
    pub fn bandwidth_utilization(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.useful_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Incremental [`RunReport`] builder. Every run entry point funnels its
/// per-partition timings through one of these, so reports are identical no
/// matter which path (instrumented or not) produced them.
struct ReportBuilder {
    report: RunReport,
    balance_sum: f64,
    first_stage_sum: Option<u64>,
    first_stage_max: u64,
    dense_per_part: u64,
}

impl ReportBuilder {
    fn new(format: FormatKind, cfg: &HwConfig) -> Self {
        let backend = backend_for(cfg.backend);
        ReportBuilder {
            report: RunReport {
                format,
                partition_size: cfg.partition_size,
                partitions: 0,
                total_mem_cycles: 0,
                total_compute_cycles: 0,
                total_decomp_cycles: 0,
                total_entropy_cycles: 0,
                total_writeback_cycles: 0,
                total_dot_issues: 0,
                total_bytes: 0,
                total_coded_bytes: 0,
                useful_bytes: 0,
                total_bram_reads: 0,
                total_cycles: 0,
                dense_equivalent_compute: 0,
                balance_ratio: 0.0,
                clock_mhz: backend.clock_mhz(cfg),
            },
            balance_sum: 0.0,
            first_stage_sum: None,
            first_stage_max: 0,
            dense_per_part: backend.dense_equivalent_cycles(cfg),
        }
    }

    fn push(&mut self, timing: &PartitionTiming) {
        let bottleneck = timing
            .mem_cycles
            .max(timing.compute_cycles)
            .max(timing.writeback_cycles);
        if self.first_stage_sum.is_none() {
            self.first_stage_sum =
                Some(timing.mem_cycles + timing.compute_cycles + timing.writeback_cycles);
            self.first_stage_max = bottleneck;
        }
        let r = &mut self.report;
        r.partitions += 1;
        r.total_mem_cycles += timing.mem_cycles;
        r.total_compute_cycles += timing.compute_cycles;
        r.total_decomp_cycles += timing.decomp_cycles;
        r.total_entropy_cycles += timing.entropy_cycles;
        r.total_writeback_cycles += timing.writeback_cycles;
        r.total_dot_issues += timing.dot_issues;
        r.total_bytes += timing.bytes;
        r.total_coded_bytes += timing.coded_bytes;
        r.useful_bytes += timing.useful_bytes;
        r.total_bram_reads += timing.bram_reads;
        r.total_cycles += bottleneck;
        r.dense_equivalent_compute += self.dense_per_part;
        self.balance_sum += timing.mem_cycles as f64 / timing.compute_cycles.max(1) as f64;
    }

    fn finish(mut self) -> RunReport {
        // Pipeline fill: the first partition flows through all three stages;
        // afterwards one partition completes per bottleneck interval.
        if let Some(first) = self.first_stage_sum {
            self.report.total_cycles += first - self.first_stage_max;
        }
        if self.report.partitions > 0 {
            self.report.balance_ratio = self.balance_sum / self.report.partitions as f64;
        }
        self.report
    }
}

/// Gantt placement of trace spans at modeled-cycle timestamps: memory
/// bursts serialize back-to-back on the channel, compute starts once its
/// operands have arrived *and* the engine is free, write-back analogously.
/// Decompression is traced as a prefix of the compute span.
#[derive(Debug, Default)]
struct SpanScheduler {
    mem_end: u64,
    compute_end: u64,
    writeback_end: u64,
}

impl SpanScheduler {
    /// Places one partition; returns its (mem, compute, write-back) span
    /// start cycles.
    fn place(&mut self, timing: &PartitionTiming) -> (u64, u64, u64) {
        let mem_start = self.mem_end;
        self.mem_end += timing.mem_cycles;
        let compute_start = self.mem_end.max(self.compute_end);
        self.compute_end = compute_start + timing.compute_cycles;
        let writeback_start = self.compute_end.max(self.writeback_end);
        self.writeback_end = writeback_start + timing.writeback_cycles;
        (mem_start, compute_start, writeback_start)
    }
}

/// Emits the trace events of one placed partition: its start marker plus
/// the four stage spans. Shared by the serial loop and the tile-parallel
/// reduce so both paths produce byte-identical traces.
fn emit_partition_spans<S: TraceSink + ?Sized>(
    sink: &mut S,
    schedule: &mut SpanScheduler,
    idx: usize,
    part: &Partition<f32>,
    timing: &PartitionTiming,
) {
    let (mem_start, compute_start, writeback_start) = schedule.place(timing);
    sink.record(&PipelineEvent::PartitionStart {
        partition: idx,
        grid_row: part.grid_row,
        grid_col: part.grid_col,
        cycle: mem_start,
    });
    for (stage, start_cycle, cycles) in [
        (Stage::MemRead, mem_start, timing.mem_cycles),
        (Stage::Compute, compute_start, timing.compute_cycles),
        (Stage::Decompress, compute_start, timing.decomp_cycles),
        (Stage::WriteBack, writeback_start, timing.writeback_cycles),
    ] {
        sink.record(&PipelineEvent::StageSpan {
            stage,
            partition: idx,
            lane: None,
            start_cycle,
            cycles,
        });
    }
}

/// One partition's outcome from a tile worker, reduced in grid order.
type TileResult = Result<(PartitionTiming, Decompression), PlatformError>;

/// The modeled platform: a validated [`HwConfig`] plus the run entry points.
#[derive(Debug, Clone)]
pub struct Platform {
    cfg: HwConfig,
    /// Optional wall-clock phase profiler (shared, cloned with the
    /// platform). Never consulted by the timing model: reports are
    /// bit-identical with and without it.
    profiler: Option<Arc<PhaseProfiler>>,
    /// Worker threads processing one run's partitions concurrently
    /// (1 = serial). Never visible in the output: partitions are reduced
    /// back in grid order, so reports, traces and SpMV results are
    /// byte-identical at any setting.
    tile_jobs: usize,
    /// Optional cooperative cancellation token, polled between partitions.
    /// A successful run is byte-identical with and without one; a
    /// cancelled run fails with [`PlatformError::Cancelled`] and produces
    /// no report.
    cancel: Option<CancelToken>,
}

impl Platform {
    /// Builds a platform from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Config`] when the configuration fails
    /// [`HwConfig::validate`].
    pub fn new(cfg: HwConfig) -> Result<Self, PlatformError> {
        cfg.validate().map_err(PlatformError::Config)?;
        Ok(Platform {
            cfg,
            profiler: None,
            tile_jobs: 1,
            cancel: None,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// Sets how many worker threads process one run's partitions
    /// concurrently (clamped to at least 1 = serial). The timing model is
    /// unaffected: tiles are processed out of order but reduced back in
    /// grid order, so reports, traces and SpMV results are byte-identical
    /// at any worker count (test-enforced).
    pub fn set_tile_jobs(&mut self, jobs: usize) {
        self.tile_jobs = jobs.max(1);
    }

    /// The configured intra-run worker count.
    pub fn tile_jobs(&self) -> usize {
        self.tile_jobs
    }

    /// Selects the hardware backend costing subsequent runs. The encode /
    /// decompress pass is backend-independent; only the cycle charges (and
    /// the reported clock) change.
    pub fn set_backend(&mut self, backend: crate::BackendKind) {
        self.cfg.backend = backend;
    }

    /// The backend subsequent runs are costed on.
    pub fn backend(&self) -> crate::BackendKind {
        self.cfg.backend
    }

    /// Attaches (or with `None`, detaches) a wall-clock phase profiler.
    /// Runs then observe per-run encode / decompress / verify / compute
    /// phase durations into it; the modeled reports are unaffected.
    pub fn set_profiler(&mut self, profiler: Option<Arc<PhaseProfiler>>) {
        self.profiler = profiler;
    }

    /// The attached phase profiler, if any.
    pub fn profiler(&self) -> Option<&Arc<PhaseProfiler>> {
        self.profiler.as_ref()
    }

    /// Attaches (or with `None`, detaches) a cooperative cancellation
    /// token. The pipeline polls it between partitions: once it reports
    /// cancelled, the run fails with [`PlatformError::Cancelled`] instead
    /// of producing a report. A run that completes before cancellation is
    /// byte-identical to an untokened run.
    pub fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// True when a token is attached and reports cancelled.
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The single shared partition loop: processes each tile exactly once,
    /// hands its decompression to `consume` (the SpMV path applies the row
    /// contributions there), emits trace events, aggregates the report, and
    /// recycles every per-tile buffer into `scratch`.
    pub(crate) fn run_grid_scratch<S, F>(
        &self,
        grid: &PartitionGrid<f32>,
        format: FormatKind,
        sink: &mut S,
        mut consume: F,
        scratch: &mut EncodeScratch,
    ) -> Result<RunReport, PlatformError>
    where
        S: TraceSink + ?Sized,
        F: FnMut(&Partition<f32>, &Decompression),
    {
        if sink.enabled() {
            sink.record(&PipelineEvent::RunStart {
                format: format.to_string(),
                partitions: grid.partitions().len(),
                partition_size: self.cfg.partition_size,
            });
        }
        let mut builder = ReportBuilder::new(format, &self.cfg);
        let mut schedule = SpanScheduler::default();
        let run_start = self.profiler.as_ref().map(|_| std::time::Instant::now());
        let mut acc = PhaseAcc::new(self.profiler.is_some());
        // Cooperative cancellation: a deadline that expired (or a shutdown
        // that fired) before this run starts stops it up front; the
        // per-partition poll below bounds how much work happens after.
        if self.cancelled() {
            return Err(PlatformError::Cancelled);
        }
        if self.tile_jobs > 1 && grid.partitions().len() > 1 {
            // Tile-parallel pass: workers process partitions out of order,
            // then this loop reduces them back in grid order so every
            // observable byte (report, spans, SpMV accumulation order)
            // matches the serial path.
            let (mut pool, mut slots) = self.process_grid_parallel(grid, format, scratch, &mut acc);
            let mut failure: Option<PlatformError> = None;
            for (idx, part) in grid.partitions().iter().enumerate() {
                let Some((wid, result)) = slots[idx].take() else {
                    continue;
                };
                match result {
                    Ok((timing, d)) => {
                        // Work past the first failing partition is
                        // discarded, exactly as the serial path never
                        // reaches it.
                        if failure.is_none() {
                            consume(part, &d);
                            if sink.enabled() {
                                emit_partition_spans(sink, &mut schedule, idx, part, &timing);
                            }
                            builder.push(&timing);
                        }
                        pool[wid].recycle_decompression(d);
                    }
                    Err(e) => {
                        if failure.is_none() {
                            if let PlatformError::FunctionalMismatch { format, grid } = &e {
                                if sink.enabled() {
                                    sink.record(&PipelineEvent::FunctionalMismatch {
                                        partition: idx,
                                        detail: format!(
                                            "decompressing {format} partition ({}, {})",
                                            grid.0, grid.1
                                        ),
                                    });
                                }
                            }
                            failure = Some(e);
                        }
                    }
                }
            }
            scratch.give_workers(pool);
            if let Some(e) = failure {
                return Err(e);
            }
            if self.cancelled() {
                return Err(PlatformError::Cancelled);
            }
        } else {
            for (idx, part) in grid.partitions().iter().enumerate() {
                if self.cancelled() {
                    return Err(PlatformError::Cancelled);
                }
                let (timing, d) = self.process_partition(
                    &part.coo,
                    format,
                    (part.grid_row, part.grid_col),
                    sink,
                    idx,
                    scratch,
                    &mut acc,
                )?;
                consume(part, &d);
                scratch.recycle_decompression(d);
                if sink.enabled() {
                    emit_partition_spans(sink, &mut schedule, idx, part, &timing);
                }
                builder.push(&timing);
            }
        }
        let report = builder.finish();
        if sink.enabled() {
            sink.record(&PipelineEvent::RunComplete {
                total_cycles: report.total_cycles,
            });
        }
        if let (Some(profiler), Some(start)) = (&self.profiler, run_start) {
            profiler.flush_run(&acc, start.elapsed().as_secs_f64());
        }
        Ok(report)
    }

    /// Encode → decompress → (optional) functional verification for one
    /// tile; the one place real per-partition work happens. All buffers
    /// come from (and the encoded structure returns to) `scratch`. Phase
    /// wall time accumulates into `acc` (a no-op unless a profiler is
    /// attached); the modeled timing never reads the clock.
    #[allow(clippy::too_many_arguments)]
    fn process_partition<S: TraceSink + ?Sized>(
        &self,
        tile: &Coo<f32>,
        format: FormatKind,
        grid_pos: (usize, usize),
        sink: &mut S,
        idx: usize,
        scratch: &mut EncodeScratch,
        acc: &mut PhaseAcc,
    ) -> Result<(PartitionTiming, Decompression), PlatformError> {
        acc.mark();
        let encoded = EncodedPartition::encode_with(tile, format, &self.cfg, scratch)?;
        acc.lap(Phase::Encode);
        let d = decompress_with(&encoded, &self.cfg, scratch);
        acc.lap(Phase::Decompress);
        if self.cfg.verify_functional && !scratch.verify_tile(&d, tile, self.cfg.partition_size) {
            if sink.enabled() {
                sink.record(&PipelineEvent::FunctionalMismatch {
                    partition: idx,
                    detail: format!(
                        "decompressing {format} partition ({}, {})",
                        grid_pos.0, grid_pos.1
                    ),
                });
            }
            return Err(PlatformError::FunctionalMismatch {
                format,
                grid: grid_pos,
            });
        }
        if self.cfg.verify_functional {
            acc.lap(Phase::Verify);
        }
        // The configured backend prices what the encode/decompress pass
        // produced: on the HLS pipeline the second-stage decoder sits in
        // front of the structural decompressor, so its cycles join the
        // compute stage — the trade the codec sweep measures is fewer
        // memory-read cycles against exactly that compute-side surcharge.
        let timing = backend_for(self.cfg.backend).partition_timing(&encoded, &d, &self.cfg);
        scratch.recycle_encoded(encoded);
        Ok((timing, d))
    }

    /// Processes every partition of `grid` on up to [`Platform::tile_jobs`]
    /// scoped worker threads: one pooled [`EncodeScratch`] per worker,
    /// tiles claimed from an atomic cursor. Returns the worker scratches
    /// (for buffer recycling plus hand-back) and one `(worker, result)`
    /// slot per partition for the caller's in-grid-order reduce. Worker
    /// phase time folds into `acc` (summed across workers).
    ///
    /// Workers trace into a [`NullSink`]: the only event
    /// [`Platform::process_partition`] can emit is the functional-mismatch
    /// marker, which the reduce re-emits in grid order from the returned
    /// error so traces match the serial path byte for byte.
    fn process_grid_parallel(
        &self,
        grid: &PartitionGrid<f32>,
        format: FormatKind,
        scratch: &mut EncodeScratch,
        acc: &mut PhaseAcc,
    ) -> (Vec<EncodeScratch>, Vec<Option<(usize, TileResult)>>) {
        let parts = grid.partitions();
        let n = parts.len();
        let profiled = self.profiler.is_some();
        let pool = scratch.take_workers(self.tile_jobs.min(n));
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<(usize, TileResult)>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut returned: Vec<EncodeScratch> = Vec::with_capacity(pool.len());
        std::thread::scope(|s| {
            let cursor = &cursor;
            let handles: Vec<_> = pool
                .into_iter()
                .map(|mut ws| {
                    s.spawn(move || {
                        let mut wacc = PhaseAcc::new(profiled);
                        let mut done: Vec<(usize, TileResult)> = Vec::new();
                        loop {
                            let idx = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if idx >= n {
                                break;
                            }
                            let part = &parts[idx];
                            let result = self.process_partition(
                                &part.coo,
                                format,
                                (part.grid_row, part.grid_col),
                                &mut NullSink,
                                idx,
                                &mut ws,
                                &mut wacc,
                            );
                            done.push((idx, result));
                        }
                        (ws, wacc, done)
                    })
                })
                .collect();
            for handle in handles {
                let (ws, wacc, done) = match handle.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                acc.merge(&wacc);
                for (idx, result) in done {
                    slots[idx] = Some((returned.len(), result));
                }
                returned.push(ws);
            }
        });
        (returned, slots)
    }

    /// Runs a single `p×p` tile (already in tile-local coordinates) through
    /// encode → decompress → dot-product accounting.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures and functional mismatches (when
    /// [`HwConfig::verify_functional`] is set).
    pub fn run_partition(
        &self,
        tile: Coo<f32>,
        format: FormatKind,
        grid_pos: (usize, usize),
    ) -> Result<PartitionTiming, PlatformError> {
        self.process_partition(
            &tile,
            format,
            grid_pos,
            &mut NullSink,
            0,
            &mut EncodeScratch::new(),
            &mut PhaseAcc::disabled(),
        )
        .map(|(timing, _)| timing)
    }
}

/// The dot-product engine consuming one decompressed partition during SpMV:
/// element-wise multiply of each contributed row against the operand slice,
/// then the balanced adder tree (here a sum), accumulated into `y`. Rows or
/// columns hanging past the true matrix shape (edge tiles are padded to
/// `p×p`) are ignored.
pub(crate) fn apply_contributions(
    part: &Partition<f32>,
    d: &Decompression,
    p: usize,
    x: &[f32],
    y: &mut [f32],
) {
    let row0 = part.grid_row * p;
    let col0 = part.grid_col * p;
    for (lr, row) in &d.contributions {
        let gr = row0 + lr;
        if gr >= y.len() {
            continue;
        }
        let dot: f32 = row
            .iter()
            .enumerate()
            .map(|(lc, &v)| {
                let gc = col0 + lc;
                if gc < x.len() {
                    v * x[gc]
                } else {
                    0.0
                }
            })
            .sum();
        y[gr] += dot;
    }
}

/// Result of running the platform with several aggregated compute
/// instances (§5.1: "Instances of this architecture can be aggregated for
/// implementing coarse-grain parallelism").
///
/// The model: `lanes` identical decompress+dot pipelines share the single
/// memory channel. Transfers serialize on the shared channel; partitions
/// are dealt to the least-loaded lane. The run becomes memory-bound the
/// moment the summed transfer time exceeds the slowest lane's compute —
/// which quantifies the §8 insight that adding bandwidth only helps while
/// the format is compute-bound.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParallelReport {
    /// Number of aggregated compute instances.
    pub lanes: usize,
    /// The single-lane report the scaling is measured against.
    pub single_lane: RunReport,
    /// Cycles on the shared memory channel (all partitions, serialized).
    pub shared_mem_cycles: u64,
    /// Compute cycles of the most loaded lane.
    pub max_lane_compute_cycles: u64,
    /// End-to-end cycles of the aggregated system.
    pub total_cycles: u64,
}

impl ParallelReport {
    /// Speedup over the single-lane pipeline.
    ///
    /// An empty grid (no non-zero partitions) runs for zero cycles at any
    /// lane count, so its speedup is pinned at the 1.0 neutral element
    /// rather than dividing by zero.
    pub fn speedup(&self) -> f64 {
        if self.total_cycles == 0 {
            1.0
        } else {
            self.single_lane.total_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Lanes that can actually receive work: a grid with fewer partitions
    /// than lanes leaves the surplus lanes permanently idle, and an empty
    /// grid still counts as one lane so ratios stay finite.
    pub fn effective_lanes(&self) -> usize {
        self.lanes.min(self.single_lane.partitions).max(1)
    }

    /// Parallel efficiency (`speedup / effective_lanes`).
    ///
    /// Normalizing by [`ParallelReport::effective_lanes`] rather than the
    /// configured lane count keeps the metric meaningful for degenerate
    /// sweeps: 16 lanes over a 4-partition grid is judged on the 4 lanes
    /// that could ever be busy, not penalized for the 12 that physically
    /// cannot.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.effective_lanes() as f64
    }

    /// Whether the aggregated system is limited by the shared channel.
    pub fn is_memory_bound(&self) -> bool {
        self.shared_mem_cycles >= self.max_lane_compute_cycles
    }
}

impl Platform {
    /// The aggregated-lanes engine over a pre-built grid: one shared memory
    /// channel, `lanes` decompress+dot pipelines, online-LPT dealing.
    pub(crate) fn run_parallel_grid_scratch<S: TraceSink + ?Sized>(
        &self,
        grid: &PartitionGrid<f32>,
        format: FormatKind,
        lanes: usize,
        sink: &mut S,
        scratch: &mut EncodeScratch,
    ) -> Result<ParallelReport, PlatformError> {
        if lanes == 0 {
            return Err(PlatformError::Config("lane count must be positive".into()));
        }
        if sink.enabled() {
            sink.record(&PipelineEvent::RunStart {
                format: format.to_string(),
                partitions: grid.partitions().len(),
                partition_size: self.cfg.partition_size,
            });
        }
        let mut builder = ReportBuilder::new(format, &self.cfg);
        let mut timings = Vec::with_capacity(grid.partitions().len());
        let run_start = self.profiler.as_ref().map(|_| std::time::Instant::now());
        let mut acc = PhaseAcc::new(self.profiler.is_some());
        if self.cancelled() {
            return Err(PlatformError::Cancelled);
        }
        if self.tile_jobs > 1 && grid.partitions().len() > 1 {
            let (mut pool, mut slots) = self.process_grid_parallel(grid, format, scratch, &mut acc);
            let mut failure: Option<PlatformError> = None;
            for (idx, slot) in slots.iter_mut().enumerate() {
                let Some((wid, result)) = slot.take() else {
                    continue;
                };
                match result {
                    Ok((timing, d)) => {
                        if failure.is_none() {
                            builder.push(&timing);
                            timings.push(timing);
                        }
                        pool[wid].recycle_decompression(d);
                    }
                    Err(e) => {
                        if failure.is_none() {
                            if let PlatformError::FunctionalMismatch { format, grid } = &e {
                                if sink.enabled() {
                                    sink.record(&PipelineEvent::FunctionalMismatch {
                                        partition: idx,
                                        detail: format!(
                                            "decompressing {format} partition ({}, {})",
                                            grid.0, grid.1
                                        ),
                                    });
                                }
                            }
                            failure = Some(e);
                        }
                    }
                }
            }
            scratch.give_workers(pool);
            if let Some(e) = failure {
                return Err(e);
            }
            if self.cancelled() {
                return Err(PlatformError::Cancelled);
            }
        } else {
            for (idx, part) in grid.partitions().iter().enumerate() {
                if self.cancelled() {
                    return Err(PlatformError::Cancelled);
                }
                let (timing, d) = self.process_partition(
                    &part.coo,
                    format,
                    (part.grid_row, part.grid_col),
                    sink,
                    idx,
                    scratch,
                    &mut acc,
                )?;
                scratch.recycle_decompression(d);
                builder.push(&timing);
                timings.push(timing);
            }
        }
        let single_lane = builder.finish();
        if let (Some(profiler), Some(start)) = (&self.profiler, run_start) {
            profiler.flush_run(&acc, start.elapsed().as_secs_f64());
        }

        let mut shared_mem_cycles = 0u64;
        let mut lane_compute = vec![0u64; lanes];
        let mut lane_ready = vec![0u64; lanes];
        for ((idx, part), timing) in grid.partitions().iter().enumerate().zip(&timings) {
            let mem_start = shared_mem_cycles;
            shared_mem_cycles += timing.mem_cycles;
            // Deal to the least-loaded lane (online LPT).
            let lane = lane_compute
                .iter()
                .enumerate()
                .min_by_key(|&(_, &load)| load)
                .map_or(0, |(i, _)| i);
            lane_compute[lane] += timing.compute_cycles;
            // The lane starts once its operands have crossed the shared
            // channel and the engine is free.
            let compute_start = shared_mem_cycles.max(lane_ready[lane]);
            lane_ready[lane] = compute_start + timing.compute_cycles;
            if sink.enabled() {
                sink.record(&PipelineEvent::PartitionStart {
                    partition: idx,
                    grid_row: part.grid_row,
                    grid_col: part.grid_col,
                    cycle: mem_start,
                });
                for (stage, start_cycle, cycles) in [
                    (Stage::MemRead, mem_start, timing.mem_cycles),
                    (Stage::Compute, compute_start, timing.compute_cycles),
                    (Stage::Decompress, compute_start, timing.decomp_cycles),
                ] {
                    sink.record(&PipelineEvent::StageSpan {
                        stage,
                        partition: idx,
                        lane: Some(lane),
                        start_cycle,
                        cycles,
                    });
                }
            }
        }
        let max_lane_compute_cycles = lane_compute.into_iter().max().unwrap_or(0);
        let total_cycles = shared_mem_cycles.max(max_lane_compute_cycles);
        if sink.enabled() {
            sink.record(&PipelineEvent::RunComplete { total_cycles });
        }
        Ok(ParallelReport {
            lanes,
            shared_mem_cycles,
            max_lane_compute_cycles,
            total_cycles,
            single_lane,
        })
    }
}

impl Default for Platform {
    fn default() -> Self {
        match Platform::new(HwConfig::default()) {
            Ok(p) => p,
            // HwConfig::default() is validated by the hls test suite; a
            // rejection here is a bug in the validator itself.
            Err(e) => unreachable!("default config is valid: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunRequest, Session};
    use sparsemat::{Coo, Matrix};

    fn matrix() -> Coo<f32> {
        let mut coo = Coo::new(64, 64);
        for i in 0..64usize {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < 64 {
                coo.push(i, i + 1, -1.0).unwrap();
            }
            if i >= 17 {
                coo.push(i, i - 17, 3.0).unwrap();
            }
        }
        coo
    }

    fn session() -> Session {
        Session::from_platform(Platform::default())
    }

    fn run(s: &mut Session, m: &Coo<f32>, kind: FormatKind) -> RunReport {
        s.run(RunRequest::matrix(m, kind)).unwrap().report
    }

    fn run_parallel(
        s: &mut Session,
        m: &Coo<f32>,
        kind: FormatKind,
        lanes: usize,
    ) -> ParallelReport {
        s.run(RunRequest::matrix(m, kind).with_lanes(lanes))
            .unwrap()
            .parallel
            .unwrap()
    }

    #[test]
    fn dense_sigma_is_exactly_one() {
        let report = run(&mut session(), &matrix(), FormatKind::Dense);
        assert_eq!(report.sigma(), 1.0);
    }

    #[test]
    fn all_formats_run_and_verify() {
        let mut s = session();
        for kind in FormatKind::CHARACTERIZED {
            let report = run(&mut s, &matrix(), kind);
            assert!(report.partitions > 0, "{kind}");
            assert!(report.total_cycles > 0, "{kind}");
            assert!(report.sigma() > 0.0, "{kind}");
        }
    }

    #[test]
    fn spmv_through_datapath_matches_reference() {
        let m = matrix();
        let x: Vec<f32> = (0..64).map(|i| ((i % 7) as f32) - 3.0).collect();
        let expect = m.spmv(&x).unwrap();
        let mut s = session();
        for kind in FormatKind::CHARACTERIZED {
            let y = s
                .run(RunRequest::matrix(&m, kind).consume_spmv(&x))
                .unwrap()
                .y
                .unwrap();
            assert_eq!(y, expect, "{kind}");
        }
    }

    #[test]
    fn spmv_rejects_wrong_operand() {
        let mut s = session();
        assert!(matches!(
            s.run(RunRequest::matrix(&matrix(), FormatKind::Csr).consume_spmv(&[1.0; 3])),
            Err(PlatformError::Sparse(_))
        ));
    }

    #[test]
    fn csc_is_the_slowest_compute() {
        // §6.1: "The worst-case scenario of decompression occurs with the
        // CSC format."
        let mut s = session();
        let m = matrix();
        let csc = run(&mut s, &m, FormatKind::Csc);
        for kind in FormatKind::CHARACTERIZED {
            if kind == FormatKind::Csc {
                continue;
            }
            let other = run(&mut s, &m, kind);
            assert!(
                csc.total_compute_cycles >= other.total_compute_cycles,
                "CSC should beat {kind} at being slow"
            );
        }
    }

    #[test]
    fn sparse_formats_move_fewer_bytes_than_dense() {
        // §6.2: "the latency to transmit data and metadata for all sparse
        // formats is much lower than that for the dense format."
        let mut s = session();
        let m = matrix();
        let dense = run(&mut s, &m, FormatKind::Dense);
        for kind in [
            FormatKind::Csr,
            FormatKind::Coo,
            FormatKind::Lil,
            FormatKind::Ell,
            FormatKind::Dia,
        ] {
            let r = run(&mut s, &m, kind);
            assert!(
                r.total_bytes < dense.total_bytes,
                "{kind} moved {} >= dense {}",
                r.total_bytes,
                dense.total_bytes
            );
        }
    }

    #[test]
    fn stream_codecs_trade_memory_cycles_for_entropy_decode() {
        let m = matrix();
        let mut s = session();
        let base = run(&mut s, &m, FormatKind::Csr);
        assert_eq!(base.total_entropy_cycles, 0);
        assert_eq!(base.total_coded_bytes, base.total_bytes);
        let cfg = HwConfig {
            stream_codec: crate::CodecKind::DeltaVarint,
            ..HwConfig::default()
        };
        let mut coded = Session::new(cfg).unwrap();
        let r = run(&mut coded, &m, FormatKind::Csr);
        // Sorted CSR index streams compress, shrinking the memory stage ...
        assert!(r.total_coded_bytes < r.total_bytes);
        assert!(r.total_mem_cycles < base.total_mem_cycles);
        // ... and the decoder surcharge lands exactly in the compute stage.
        assert!(r.total_entropy_cycles > 0);
        assert_eq!(
            r.total_compute_cycles,
            base.total_compute_cycles + r.total_entropy_cycles
        );
        // Structural accounting (the paper's metrics) is untouched.
        assert_eq!(r.total_bytes, base.total_bytes);
        assert_eq!(r.total_decomp_cycles, base.total_decomp_cycles);
        assert_eq!(r.useful_bytes, base.useful_bytes);
        assert_eq!(r.bandwidth_utilization(), base.bandwidth_utilization());
    }

    #[test]
    fn pipelined_total_is_at_least_the_bottleneck_sum() {
        let r = run(&mut session(), &matrix(), FormatKind::Csr);
        assert!(r.total_cycles >= r.total_mem_cycles.max(r.total_compute_cycles));
        assert!(
            r.total_cycles
                <= r.total_mem_cycles + r.total_compute_cycles + r.total_writeback_cycles
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = HwConfig {
            partition_size: 0,
            ..HwConfig::default()
        };
        assert!(matches!(Platform::new(cfg), Err(PlatformError::Config(_))));
    }

    #[test]
    fn reports_are_deterministic() {
        let mut s = session();
        let a = run(&mut s, &matrix(), FormatKind::Lil);
        let b = run(&mut s, &matrix(), FormatKind::Lil);
        assert_eq!(a, b);
        // Attaching a sink must not perturb the report: instrumented and
        // uninstrumented runs are bit-identical.
        let mut sink = copernicus_telemetry::RecordingSink::new();
        let c = s
            .run(RunRequest::matrix(&matrix(), FormatKind::Lil).with_sink(&mut sink))
            .unwrap()
            .report;
        assert_eq!(a, c);
        assert!(!sink.events.is_empty());
    }

    #[test]
    fn trace_spans_sum_exactly_to_report_totals() {
        // The defining invariant of the telemetry layer: for every format,
        // the emitted stage spans account for each report total exactly.
        let mut s = session();
        let m = matrix();
        for kind in FormatKind::CHARACTERIZED {
            let mut sink = copernicus_telemetry::RecordingSink::new();
            let report = s
                .run(RunRequest::matrix(&m, kind).with_sink(&mut sink))
                .unwrap()
                .report;
            assert_eq!(
                sink.stage_cycles(Stage::MemRead),
                report.total_mem_cycles,
                "{kind}"
            );
            assert_eq!(
                sink.stage_cycles(Stage::Compute),
                report.total_compute_cycles,
                "{kind}"
            );
            assert_eq!(
                sink.stage_cycles(Stage::Decompress),
                report.total_decomp_cycles,
                "{kind}"
            );
            assert_eq!(
                sink.stage_cycles(Stage::WriteBack),
                report.total_writeback_cycles,
                "{kind}"
            );
            assert_eq!(sink.count("partition_start"), report.partitions, "{kind}");
            assert_eq!(sink.count("run_start"), 1, "{kind}");
            assert_eq!(
                sink.events.last(),
                Some(&PipelineEvent::RunComplete {
                    total_cycles: report.total_cycles
                }),
                "{kind}"
            );
        }
    }

    #[test]
    fn trace_spans_form_a_consistent_schedule() {
        let mut s = session();
        let mut sink = copernicus_telemetry::RecordingSink::new();
        s.run(RunRequest::matrix(&matrix(), FormatKind::Csr).with_sink(&mut sink))
            .unwrap();
        // Memory bursts serialize back-to-back on the channel; compute
        // never starts before its operands have arrived; decompression is a
        // prefix of its compute span.
        let mut mem_cursor = 0u64;
        let mut spans: std::collections::HashMap<
            usize,
            std::collections::HashMap<&str, (u64, u64)>,
        > = std::collections::HashMap::new();
        for e in &sink.events {
            if let PipelineEvent::StageSpan {
                stage,
                partition,
                start_cycle,
                cycles,
                ..
            } = e
            {
                spans
                    .entry(*partition)
                    .or_default()
                    .insert(stage.label(), (*start_cycle, *cycles));
                if *stage == Stage::MemRead {
                    assert_eq!(*start_cycle, mem_cursor);
                    mem_cursor += cycles;
                }
            }
        }
        for (part, by_stage) in &spans {
            let (mem_start, mem_cycles) = by_stage["mem_read"];
            let (comp_start, comp_cycles) = by_stage["compute"];
            let (decomp_start, decomp_cycles) = by_stage["decompress"];
            let (wb_start, _) = by_stage["write_back"];
            assert!(comp_start >= mem_start + mem_cycles, "partition {part}");
            assert_eq!(decomp_start, comp_start, "partition {part}");
            assert!(decomp_cycles <= comp_cycles, "partition {part}");
            assert!(wb_start >= comp_start + comp_cycles, "partition {part}");
        }
    }

    #[test]
    fn spmv_processes_each_partition_once_and_report_is_unchanged() {
        let mut s = session();
        let m = matrix();
        let x: Vec<f32> = (0..64).map(|i| ((i % 5) as f32) - 2.0).collect();
        for kind in FormatKind::CHARACTERIZED {
            let mut sink = copernicus_telemetry::RecordingSink::new();
            let outcome = s
                .run(
                    RunRequest::matrix(&m, kind)
                        .consume_spmv(&x)
                        .with_sink(&mut sink),
                )
                .unwrap();
            let report = outcome.report;
            // Identical to the timing-only run: the SpMV path reuses the
            // same single encode+decompress pass per tile.
            assert_eq!(report, run(&mut s, &m, kind), "{kind}");
            assert_eq!(outcome.y.unwrap(), m.spmv(&x).unwrap(), "{kind}");
            // Exactly one span set per partition — a second encode pass
            // would double this.
            assert_eq!(sink.count("stage_span"), 4 * report.partitions, "{kind}");
        }
    }

    #[test]
    fn parallel_trace_lands_on_lane_tracks() {
        let mut s = session();
        let m = matrix();
        let lanes = 3;
        let mut sink = copernicus_telemetry::RecordingSink::new();
        let report = s
            .run(
                RunRequest::matrix(&m, FormatKind::Csc)
                    .with_lanes(lanes)
                    .with_sink(&mut sink),
            )
            .unwrap()
            .parallel
            .unwrap();
        let mut lane_compute = vec![0u64; lanes];
        let mut mem_total = 0u64;
        for e in &sink.events {
            if let PipelineEvent::StageSpan {
                stage,
                lane,
                cycles,
                ..
            } = e
            {
                let lane = lane.expect("parallel spans carry a lane");
                assert!(lane < lanes);
                match stage {
                    Stage::MemRead => mem_total += cycles,
                    Stage::Compute => lane_compute[lane] += cycles,
                    _ => {}
                }
            }
        }
        assert_eq!(mem_total, report.shared_mem_cycles);
        assert_eq!(
            lane_compute.iter().copied().max().unwrap(),
            report.max_lane_compute_cycles
        );
        assert_eq!(
            lane_compute.iter().sum::<u64>(),
            report.single_lane.total_compute_cycles
        );
    }

    #[test]
    fn parallel_lanes_speed_up_compute_bound_formats() {
        // CSC is deeply compute-bound: aggregating instances must help
        // nearly linearly until the shared channel saturates.
        let mut s = session();
        let m = matrix();
        let r1 = run_parallel(&mut s, &m, FormatKind::Csc, 1);
        let r4 = run_parallel(&mut s, &m, FormatKind::Csc, 4);
        assert!(r4.total_cycles < r1.total_cycles);
        assert!(r4.speedup() > 1.5, "speedup {}", r4.speedup());
        assert!(r4.efficiency() <= 1.0 + 1e-9);
    }

    #[test]
    fn surplus_lanes_do_not_dilute_efficiency() {
        // A single 16x16 partition can keep exactly one lane busy; with 8
        // lanes configured, efficiency must be judged against that one
        // usable lane (== speedup), not divided by the 7 idle ones.
        let mut s = session();
        let mut m = Coo::new(16, 16);
        m.push(3, 5, 1.0).unwrap();
        m.push(7, 2, -2.0).unwrap();
        let r = run_parallel(&mut s, &m, FormatKind::Csr, 8);
        assert_eq!(r.single_lane.partitions, 1);
        assert_eq!(r.effective_lanes(), 1);
        assert!(
            (r.efficiency() - r.speedup()).abs() < 1e-12,
            "efficiency {} vs speedup {}",
            r.efficiency(),
            r.speedup()
        );
    }

    #[test]
    fn effective_lanes_caps_at_partition_count() {
        let mut s = session();
        let m = matrix(); // 64x64 at p=16 -> 4x4 grid, 16 partitions max
        let r4 = run_parallel(&mut s, &m, FormatKind::Csr, 4);
        assert_eq!(r4.effective_lanes(), 4);
        let r64 = run_parallel(&mut s, &m, FormatKind::Csr, 64);
        assert_eq!(r64.effective_lanes(), r64.single_lane.partitions);
        assert!(r64.effective_lanes() < 64);
        assert!(r64.efficiency() <= 1.0 + 1e-9);
    }

    #[test]
    fn empty_grid_parallel_report_is_neutral() {
        // Zero partitions -> zero cycles at any lane count: speedup pins to
        // the neutral 1.0 and efficiency follows via effective_lanes == 1.
        let r = run_parallel(&mut session(), &Coo::new(32, 32), FormatKind::Csr, 4);
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.speedup(), 1.0);
        assert_eq!(r.effective_lanes(), 1);
        assert_eq!(r.efficiency(), 1.0);
        assert!(r.is_memory_bound());
    }

    #[test]
    fn parallel_lanes_cannot_beat_the_shared_channel() {
        // The dense format is already memory-heavy; lanes saturate fast and
        // the run ends memory-bound at the channel's serialized time.
        let mut s = session();
        let m = matrix();
        let r8 = run_parallel(&mut s, &m, FormatKind::Dense, 8);
        assert!(r8.is_memory_bound());
        assert_eq!(r8.total_cycles, r8.shared_mem_cycles);
    }

    #[test]
    fn zero_lanes_is_rejected() {
        let mut s = session();
        assert!(matches!(
            s.run(RunRequest::matrix(&matrix(), FormatKind::Coo).with_lanes(0)),
            Err(PlatformError::Config(_))
        ));
    }

    #[test]
    fn one_lane_matches_the_unpipelined_bound() {
        let mut s = session();
        let m = matrix();
        let r = run_parallel(&mut s, &m, FormatKind::Csr, 1);
        // One lane = max(all mem, all compute), which can only be <= the
        // pipelined single-lane total (that adds fill and per-partition
        // bottlenecks).
        assert!(r.total_cycles <= r.single_lane.total_cycles);
        assert!(r.speedup() >= 1.0);
    }

    #[test]
    fn empty_matrix_produces_empty_report() {
        let r = run(&mut session(), &Coo::new(32, 32), FormatKind::Csr);
        assert_eq!(r.partitions, 0);
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.sigma(), 0.0);
        assert_eq!(r.throughput_bytes_per_sec(), 0.0);
    }

    #[test]
    fn degenerate_report_metrics_stay_finite() {
        // The empty run pins the zero edges ...
        let r = run(&mut session(), &Coo::new(32, 32), FormatKind::Csr);
        assert_eq!(r.total_seconds(), 0.0);
        assert_eq!(r.throughput_bytes_per_sec(), 0.0);
        assert_eq!(r.bandwidth_utilization(), 0.0);
        // ... and a hand-built report with a broken clock (HwConfig::validate
        // would reject it, but serialized reports can carry anything) must
        // yield 0.0, never NaN/Inf.
        let mut broken = r.clone();
        broken.total_cycles = 100;
        broken.total_bytes = 64;
        for clock in [0.0, -250.0, f64::NAN, f64::INFINITY] {
            broken.clock_mhz = clock;
            assert_eq!(broken.total_seconds(), 0.0, "clock={clock}");
            assert_eq!(broken.throughput_bytes_per_sec(), 0.0, "clock={clock}");
        }
        broken.clock_mhz = 250.0;
        assert!(broken.total_seconds() > 0.0);
        assert!(broken.throughput_bytes_per_sec().is_finite());
    }

    #[test]
    fn cpu_backend_reports_at_the_cpu_clock() {
        let cfg = HwConfig {
            backend: crate::BackendKind::Cpu,
            ..HwConfig::default()
        };
        let mut s = Session::new(cfg.clone()).unwrap();
        let r = run(&mut s, &matrix(), FormatKind::Csr);
        assert_eq!(r.clock_mhz, cfg.cpu.clock_mhz);
        assert!(r.total_cycles > 0);
        // The dense-equivalent baseline is the CPU's, so σ still compares
        // like with like.
        assert_eq!(
            r.dense_equivalent_compute,
            r.partitions as u64
                * cfg.partition_size as u64
                * cfg.cpu.dot_latency(cfg.partition_size)
        );
    }

    #[test]
    fn hetero_backend_never_exceeds_the_pure_hls_bottlenecks() {
        // The dispatcher only reroutes a partition when the HLS pipeline is
        // memory-bound on it; every partition it touches keeps the stage
        // structure, so a report still forms and stays deterministic.
        let m = matrix();
        let mut hls = session();
        let base = run(&mut hls, &m, FormatKind::Dense);
        let mut het = Session::new(HwConfig {
            backend: crate::BackendKind::Hetero,
            ..HwConfig::default()
        })
        .unwrap();
        let r = run(&mut het, &m, FormatKind::Dense);
        assert_eq!(r.partitions, base.partitions);
        // Dense is memory-bound on the FPGA, so the CPU path must fire and
        // shrink the memory stage (cycles land in the 250 MHz domain).
        assert!(r.total_mem_cycles < base.total_mem_cycles);
        let again = run(&mut het, &m, FormatKind::Dense);
        assert_eq!(r, again);
    }
}
