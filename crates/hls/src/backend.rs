//! Hardware backends: pluggable cost models behind one trait.
//!
//! The paper's numbers all come from one device — the 250 MHz Zynq HLS
//! streaming pipeline. [`Backend`] abstracts that device so the same
//! encode/decompress machinery can be costed on different hardware:
//!
//! * [`HlsStreamBackend`] — the paper's model, verbatim. Every cycle
//!   formula lives here exactly as `pipeline` charged it before the
//!   trait existed, so `RunReport`s are byte-identical to the golden
//!   snapshot.
//! * [`CpuCacheBackend`] — an analytical cache-hierarchy CPU: the
//!   partition's working set picks an L1/L2/LLC/DRAM access latency,
//!   entropy decode reuses the codec cost tables, and dot products
//!   issue over a SIMD engine instead of the FPGA's `p`-wide tree.
//! * [`HeteroBackend`] — a per-partition dispatcher. Partitions that
//!   are memory-bound on the FPGA (the paper's §4.2 balance signal,
//!   `mem > compute`) route to the CPU model; compute-bound partitions
//!   stay on the HLS pipeline. CPU cycles are rescaled into the HLS
//!   clock domain so one report stays internally consistent.
//!
//! The format/codec half of [`HwConfig`] (partition size, stream
//! widths, `stream_codec`) is backend-independent: it describes *what*
//! is transferred and decoded. Backends only own *how much that costs*.
//! Backend-specific knobs live in [`CpuParams`] (and the pre-existing
//! bus/BRAM fields for the HLS device), selected by [`HwConfig::backend`].

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
use sparsemat::FormatKind;

use crate::config::{ceil_log2, HwConfig};
use crate::decomp::Decompression;
use crate::encode::EncodedPartition;
use crate::pipeline::PartitionTiming;
use crate::resources::Resources;
use crate::{power, resources};

/// Which hardware model costs each partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// The paper's 250 MHz HLS streaming pipeline (the default).
    Hls,
    /// Analytical cache-hierarchy CPU model.
    Cpu,
    /// Per-partition heterogeneous dispatch between the two.
    Hetero,
}

impl BackendKind {
    /// Every backend, in CLI/report order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Hls, BackendKind::Cpu, BackendKind::Hetero];
}

// Manual rather than derived: the vendored serde derive shares the
// attribute namespace, so the std `#[default]` variant marker is off
// the table.
#[allow(clippy::derivable_impls)]
impl Default for BackendKind {
    fn default() -> Self {
        BackendKind::Hls
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BackendKind::Hls => "hls",
            BackendKind::Cpu => "cpu",
            BackendKind::Hetero => "hetero",
        };
        f.write_str(name)
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hls" => Ok(BackendKind::Hls),
            "cpu" => Ok(BackendKind::Cpu),
            "hetero" => Ok(BackendKind::Hetero),
            other => Err(format!(
                "unknown backend {other:?} (expected hls, cpu, or hetero)"
            )),
        }
    }
}

/// Parameters of the analytical CPU cache-hierarchy model.
///
/// Up to three cache levels in front of DRAM, each with a load-to-use
/// latency in CPU cycles, and a SIMD unit that processes `simd_width`
/// values per issue. The partition's structural working set (its total
/// encoded bytes) selects the smallest level it fits in; every
/// BRAM-equivalent read and dot issue pays that level's latency.
///
/// Defaults model the paper platform's own heterogeneous companion: the
/// Zynq SoC's embedded application core (a 667 MHz Cortex-A9 with
/// 4-lane NEON), which shares the DDR3 channel with the fabric. The SoC
/// has no L3, so the LLC level defaults to the shared 512 KiB L2; point
/// the fields at a bigger host to model one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuParams {
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Values per SIMD issue (8 = AVX2 f32 lanes).
    pub simd_width: usize,
    /// L1 data cache capacity in bytes.
    pub l1_bytes: u64,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// Last-level cache capacity in bytes.
    pub llc_bytes: u64,
    /// L1 load-to-use latency in cycles.
    pub l1_latency: u64,
    /// L2 load-to-use latency in cycles.
    pub l2_latency: u64,
    /// LLC load-to-use latency in cycles.
    pub llc_latency: u64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Streaming DRAM bandwidth in bytes per CPU cycle.
    pub dram_bytes_per_cycle: u64,
    /// Package power draw for the energy estimate, in watts.
    pub tdp_watts: f64,
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams {
            clock_mhz: 667.0,
            simd_width: 4,
            l1_bytes: 32 * 1024,
            l2_bytes: 512 * 1024,
            llc_bytes: 512 * 1024,
            l1_latency: 4,
            l2_latency: 25,
            llc_latency: 25,
            dram_latency: 150,
            dram_bytes_per_cycle: 8,
            tdp_watts: 1.5,
        }
    }
}

impl CpuParams {
    /// Rejects parameter combinations the model cannot cost sensibly.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_mhz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!(
                "cpu clock_mhz must be positive, got {}",
                self.clock_mhz
            ));
        }
        if self.simd_width == 0 {
            return Err("cpu simd_width must be at least 1".to_string());
        }
        if self.dram_bytes_per_cycle == 0 {
            return Err("cpu dram_bytes_per_cycle must be at least 1".to_string());
        }
        if !(self.l1_bytes <= self.l2_bytes && self.l2_bytes <= self.llc_bytes) {
            return Err(format!(
                "cpu cache capacities must be non-decreasing, got l1={} l2={} llc={}",
                self.l1_bytes, self.l2_bytes, self.llc_bytes
            ));
        }
        if !(self.l1_latency <= self.l2_latency
            && self.l2_latency <= self.llc_latency
            && self.llc_latency <= self.dram_latency)
        {
            return Err(format!(
                "cpu access latencies must be non-decreasing, got l1={} l2={} llc={} dram={}",
                self.l1_latency, self.l2_latency, self.llc_latency, self.dram_latency
            ));
        }
        if self.tdp_watts < 0.0 || self.tdp_watts.is_nan() {
            return Err(format!(
                "cpu tdp_watts must be non-negative, got {}",
                self.tdp_watts
            ));
        }
        Ok(())
    }

    /// Load-to-use latency for a working set of `bytes`: the smallest
    /// cache level that holds it, or DRAM when none does.
    pub fn access_latency(&self, bytes: u64) -> u64 {
        if bytes <= self.l1_bytes {
            self.l1_latency
        } else if bytes <= self.l2_bytes {
            self.l2_latency
        } else if bytes <= self.llc_bytes {
            self.llc_latency
        } else {
            self.dram_latency
        }
    }

    /// Cycles to finish one dot product of `width` values on the SIMD
    /// unit: `⌈width/simd⌉` multiply-add issues plus a log-depth
    /// horizontal reduction and one writeback cycle — the CPU analogue
    /// of [`HwConfig::dot_latency`].
    pub fn dot_latency(&self, width: usize) -> u64 {
        let lanes = self.simd_width.min(width.max(1));
        width.max(1).div_ceil(self.simd_width) as u64 + ceil_log2(lanes) + 1
    }
}

/// A hardware cost model: turns one partition's encoded streams and
/// decompression trace into stage cycle counts.
///
/// Implementations are stateless — all tunables come from the
/// [`HwConfig`] passed at each call, so a `&'static` instance can be
/// shared across tiles and worker threads.
pub trait Backend: Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Cost one partition: memory-read, compute (structural decompress +
    /// entropy decode + dot products), and write-back stage cycles.
    fn partition_timing(
        &self,
        encoded: &EncodedPartition,
        d: &Decompression,
        cfg: &HwConfig,
    ) -> PartitionTiming;

    /// Compute cycles a dense `p×p` partition would take on this
    /// backend — the σ (Eq. 1) normalization baseline.
    fn dense_equivalent_cycles(&self, cfg: &HwConfig) -> u64;

    /// Clock the reported cycles tick at, in MHz.
    fn clock_mhz(&self, cfg: &HwConfig) -> f64;

    /// Energy for a run of `seconds`, when the backend has a power
    /// model for this format/partition point.
    fn energy_joules(
        &self,
        format: FormatKind,
        p: usize,
        seconds: f64,
        cfg: &HwConfig,
    ) -> Option<f64>;

    /// Device resources consumed by the decompressor + engine, when the
    /// backend models them (FPGA only).
    fn resources(&self, format: FormatKind, p: usize) -> Option<Resources>;
}

impl fmt::Debug for dyn Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Backend({})", self.kind())
    }
}

/// The paper's HLS streaming pipeline — the pre-trait cost model,
/// formula for formula.
#[derive(Debug, Clone, Copy, Default)]
pub struct HlsStreamBackend;

impl Backend for HlsStreamBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Hls
    }

    fn partition_timing(
        &self,
        encoded: &EncodedPartition,
        d: &Decompression,
        cfg: &HwConfig,
    ) -> PartitionTiming {
        let entropy_cycles = encoded.entropy_cycles(cfg);
        PartitionTiming {
            mem_cycles: encoded.memory_cycles(cfg),
            compute_cycles: d.compute_cycles(cfg) + entropy_cycles,
            decomp_cycles: d.decomp_cycles,
            entropy_cycles,
            writeback_cycles: cfg.transfer_cycles((cfg.partition_size * cfg.value_bytes) as u64),
            dot_issues: d.dot_issues,
            bytes: encoded.total_bytes(),
            coded_bytes: encoded.transfer_bytes(),
            useful_bytes: encoded.useful_bytes,
            bram_reads: d.bram_reads,
        }
    }

    fn dense_equivalent_cycles(&self, cfg: &HwConfig) -> u64 {
        cfg.partition_size as u64 * cfg.dot_latency_full()
    }

    fn clock_mhz(&self, cfg: &HwConfig) -> f64 {
        cfg.clock_mhz
    }

    fn energy_joules(
        &self,
        format: FormatKind,
        p: usize,
        seconds: f64,
        _cfg: &HwConfig,
    ) -> Option<f64> {
        power::energy_joules(format, p, seconds)
    }

    fn resources(&self, format: FormatKind, p: usize) -> Option<Resources> {
        resources::estimate(format, p)
    }
}

/// Analytical CPU model: cache-hierarchy access latency, codec-table
/// entropy decode, SIMD dot products, DRAM-streamed transfers.
///
/// Cycle charges are monotone by construction — every term grows (or
/// stays put) with more encoded bytes / issues / reads, and shrinks (or
/// stays put) with larger caches — properties the proptest suite pins.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuCacheBackend;

impl Backend for CpuCacheBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn partition_timing(
        &self,
        encoded: &EncodedPartition,
        d: &Decompression,
        cfg: &HwConfig,
    ) -> PartitionTiming {
        let cpu = &cfg.cpu;
        // Entropy decode prices from the same codec cost tables the HLS
        // second-stage decoder uses (cycles here tick at the CPU clock).
        let entropy_cycles = encoded.entropy_cycles(cfg);
        // The structural working set picks the cache level every
        // element access pays for.
        let latency = cpu.access_latency(encoded.total_bytes());
        let access_cycles = (d.bram_reads + d.dot_issues) * latency;
        let dot_cycles = d.dot_issues * cpu.dot_latency(d.engine_width);
        let stream = |bytes: u64| cpu.dram_latency + bytes.div_ceil(cpu.dram_bytes_per_cycle);
        PartitionTiming {
            mem_cycles: stream(encoded.transfer_bytes()),
            compute_cycles: entropy_cycles + d.decomp_cycles + access_cycles + dot_cycles,
            decomp_cycles: d.decomp_cycles,
            entropy_cycles,
            writeback_cycles: stream((cfg.partition_size * cfg.value_bytes) as u64),
            dot_issues: d.dot_issues,
            bytes: encoded.total_bytes(),
            coded_bytes: encoded.transfer_bytes(),
            useful_bytes: encoded.useful_bytes,
            bram_reads: d.bram_reads,
        }
    }

    fn dense_equivalent_cycles(&self, cfg: &HwConfig) -> u64 {
        let p = cfg.partition_size;
        p as u64 * cfg.cpu.dot_latency(p)
    }

    fn clock_mhz(&self, cfg: &HwConfig) -> f64 {
        cfg.cpu.clock_mhz
    }

    fn energy_joules(
        &self,
        _format: FormatKind,
        _p: usize,
        seconds: f64,
        cfg: &HwConfig,
    ) -> Option<f64> {
        Some(cfg.cpu.tdp_watts * seconds)
    }

    fn resources(&self, _format: FormatKind, _p: usize) -> Option<Resources> {
        None
    }
}

/// Heterogeneous dispatcher: per-partition choice between the HLS
/// pipeline and the CPU model, driven by the paper's balance signal.
///
/// A partition that is memory-bound on the FPGA (`mem > compute` in
/// the HLS costing — balance ratio above 1) is the case §4.2 flags as
/// wasting the accelerator; those route to the CPU, whose wider DRAM
/// path absorbs the transfer. Compute-bound partitions stay on the
/// HLS engine. The decision is a pure function of the partition's own
/// streams, so results are identical at any `--jobs`/`--tile-jobs`.
/// CPU cycle counts are rescaled into the HLS clock domain
/// (`× clock_mhz / cpu.clock_mhz`, rounded up) so the report's totals
/// and σ normalization stay in one time base.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeteroBackend;

/// Rescales a CPU-clock cycle count into HLS-clock cycles, rounding up
/// so a dispatched partition never costs zero.
fn rescale(cycles: u64, cfg: &HwConfig) -> u64 {
    (cycles as f64 * cfg.clock_mhz / cfg.cpu.clock_mhz).ceil() as u64
}

impl Backend for HeteroBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Hetero
    }

    fn partition_timing(
        &self,
        encoded: &EncodedPartition,
        d: &Decompression,
        cfg: &HwConfig,
    ) -> PartitionTiming {
        let hls = HlsStreamBackend.partition_timing(encoded, d, cfg);
        if hls.mem_cycles <= hls.compute_cycles {
            // Compute-bound on the FPGA: the accelerator earns its keep.
            return hls;
        }
        // Memory-bound: dispatch to the CPU and bring its cycles into
        // the HLS clock domain.
        let cpu = CpuCacheBackend.partition_timing(encoded, d, cfg);
        PartitionTiming {
            mem_cycles: rescale(cpu.mem_cycles, cfg),
            compute_cycles: rescale(cpu.compute_cycles, cfg),
            decomp_cycles: rescale(cpu.decomp_cycles, cfg),
            entropy_cycles: rescale(cpu.entropy_cycles, cfg),
            writeback_cycles: rescale(cpu.writeback_cycles, cfg),
            ..cpu
        }
    }

    fn dense_equivalent_cycles(&self, cfg: &HwConfig) -> u64 {
        // Everything is normalized into the HLS clock domain, so σ keeps
        // the paper's dense baseline.
        HlsStreamBackend.dense_equivalent_cycles(cfg)
    }

    fn clock_mhz(&self, cfg: &HwConfig) -> f64 {
        cfg.clock_mhz
    }

    fn energy_joules(
        &self,
        _format: FormatKind,
        _p: usize,
        _seconds: f64,
        _cfg: &HwConfig,
    ) -> Option<f64> {
        // Mixed dispatch spans two power domains; no single estimate.
        None
    }

    fn resources(&self, format: FormatKind, p: usize) -> Option<Resources> {
        // The FPGA half still has to be synthesized in full.
        resources::estimate(format, p)
    }
}

/// Looks up the shared, stateless instance for a backend kind.
pub fn backend_for(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Hls => &HlsStreamBackend,
        BackendKind::Cpu => &CpuCacheBackend,
        BackendKind::Hetero => &HeteroBackend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_strings() {
        for kind in BackendKind::ALL {
            let parsed: BackendKind = kind.to_string().parse().expect("round trip");
            assert_eq!(parsed, kind);
        }
        let err = "gpu".parse::<BackendKind>().expect_err("unknown backend");
        assert!(err.contains("gpu"), "error names the offender: {err}");
    }

    #[test]
    fn registry_returns_the_matching_backend() {
        for kind in BackendKind::ALL {
            assert_eq!(backend_for(kind).kind(), kind);
        }
    }

    #[test]
    fn default_cpu_params_validate() {
        CpuParams::default().validate().expect("defaults are sane");
    }

    #[test]
    fn cpu_validation_rejects_inverted_hierarchies() {
        let mut p = CpuParams::default();
        p.l1_bytes = p.llc_bytes + 1;
        assert!(p.validate().is_err(), "L1 bigger than LLC must fail");
        let mut p = CpuParams::default();
        p.l2_latency = p.dram_latency + 1;
        p.llc_latency = p.dram_latency + 2;
        assert!(p.validate().is_err(), "latency inversion must fail");
        let p = CpuParams {
            simd_width: 0,
            ..CpuParams::default()
        };
        assert!(p.validate().is_err(), "zero-lane SIMD must fail");
    }

    #[test]
    fn access_latency_walks_the_hierarchy() {
        let p = CpuParams::default();
        assert_eq!(p.access_latency(0), p.l1_latency);
        assert_eq!(p.access_latency(p.l1_bytes), p.l1_latency);
        assert_eq!(p.access_latency(p.l1_bytes + 1), p.l2_latency);
        assert_eq!(p.access_latency(p.llc_bytes + 1), p.dram_latency);
    }

    #[test]
    fn simd_dot_latency_matches_the_formula() {
        let p = CpuParams::default(); // 4 NEON lanes
                                      // 16 values: 4 issues + log2(4) reduction + 1 writeback.
        assert_eq!(p.dot_latency(16), 4 + 2 + 1);
        // Exactly the SIMD width: one issue plus the full reduction.
        assert_eq!(p.dot_latency(4), 1 + 2 + 1);
        // Narrower than the unit: reduction over the populated lanes only.
        assert_eq!(p.dot_latency(2), 1 + 1 + 1);
        assert_eq!(p.dot_latency(1), 2, "one issue, no reduction, writeback");
    }

    #[test]
    fn hetero_rescale_rounds_up_and_never_zeroes() {
        let mut cfg = HwConfig::default(); // 250 MHz fabric
        cfg.cpu.clock_mhz = 3000.0;
        assert_eq!(rescale(0, &cfg), 0);
        assert_eq!(rescale(1, &cfg), 1, "sub-cycle costs round up");
        assert_eq!(rescale(24, &cfg), 2);
    }
}
