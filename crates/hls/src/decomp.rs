//! Decompressor models — §5.2 of the paper, one model per format.
//!
//! Each function walks the *actual* encoded data structure the way the
//! paper's HLS listing does, producing (a) the dense rows the dot-product
//! engine would receive — used for functional verification, the analog of
//! C/RTL co-simulation — and (b) the cycle count of the schedule:
//!
//! * `#pragma HLS pipeline` loops retire one iteration per cycle (II = 1),
//! * `#pragma HLS unroll` + `array_partition` bodies retire in one cycle,
//! * every data-dependent read of a non-partitioned array (CSR/BCSR
//!   `offsets`, the LIL cursor row, …) pays [`HwConfig::bram_read_latency`].

use crate::{EncodeScratch, EncodedPartition, HwConfig};
use sparsemat::ell::PAD;
use sparsemat::{AnyMatrix, Dense, Matrix};

/// The outcome of decompressing one partition: row contributions for the
/// dot-product engine plus the cycle/access accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Decompression {
    /// `(row index, dense row)` contributions in emission order. A row index
    /// may repeat (ELL multi-pass emits partial rows that accumulate).
    pub contributions: Vec<(usize, Vec<f32>)>,
    /// Cycles spent in the decompress stage (the `T_decomp` of Eq. 1).
    pub decomp_cycles: u64,
    /// Dot products issued to the engine (the `nnz_rows` factor of Eq. 1;
    /// BCSR and ELL issue more, as §5.2 explains).
    pub dot_issues: u64,
    /// Width of the engine these issues go to (partition size, except ELL's
    /// dedicated six-lane path).
    pub engine_width: usize,
    /// BRAM read transactions performed (feeds the power model).
    pub bram_reads: u64,
}

impl Decompression {
    /// Total compute-stage cycles: decompression plus the issued dot
    /// products (§4.2: "computation latency consisting of decompression,
    /// dot-product, and necessary BRAM accesses").
    pub fn compute_cycles(&self, cfg: &HwConfig) -> u64 {
        self.decomp_cycles + self.dot_issues * cfg.dot_latency(self.engine_width)
    }

    /// Reassembles the contributions into a dense `p×p` tile (accumulating
    /// repeated row indices) for functional verification.
    pub fn assemble(&self, p: usize) -> Dense<f32> {
        let mut d = Dense::zeros(p, p);
        for (r, row) in &self.contributions {
            for (dst, &v) in d.row_mut(*r).iter_mut().zip(row) {
                *dst += v;
            }
        }
        d
    }
}

/// Decompresses an encoded partition with the model matching its format.
pub fn decompress(part: &EncodedPartition, cfg: &HwConfig) -> Decompression {
    decompress_with(part, cfg, &mut EncodeScratch::default())
}

/// Like [`decompress`], but draws every row buffer and the contribution
/// list from `scratch` instead of the allocator. Returning the result
/// through [`EncodeScratch::recycle_decompression`] once its contributions
/// are consumed makes the steady-state decompress path allocation-free.
/// Cycle counts, BRAM accounting and emitted rows are bit-identical to
/// [`decompress`] (recycled buffers are re-zeroed before reuse).
pub fn decompress_with(
    part: &EncodedPartition,
    cfg: &HwConfig,
    scratch: &mut EncodeScratch,
) -> Decompression {
    match &part.matrix {
        AnyMatrix::Dense(m) => dense(m, cfg, scratch),
        AnyMatrix::Csr(m) => csr(m, cfg, scratch),
        AnyMatrix::Csc(m) => csc(m, cfg, scratch),
        AnyMatrix::Bcsr(m) => bcsr(m, cfg, scratch),
        // §5.2: "The same procedure is also applicable to DOK."
        AnyMatrix::Coo(m) => coo(m, cfg, scratch),
        AnyMatrix::Dok(m) => coo(&m.to_coo(), cfg, scratch),
        AnyMatrix::Lil(m) => lil(m, cfg, scratch),
        AnyMatrix::Ell(m) => ell(m, cfg, scratch),
        AnyMatrix::Dia(m) => dia(m, cfg, scratch),
        AnyMatrix::Bcsc(_) | AnyMatrix::Sell(_) | AnyMatrix::Jds(_) => {
            unreachable!("EncodedPartition rejects uncharacterized formats")
        }
    }
}

/// Dense baseline: rows stream straight to the engine; `T_decomp = 0` and
/// every row — zero or not — is a dot-product issue, which is what makes
/// σ ≡ 1 for the dense format.
fn dense(m: &Dense<f32>, cfg: &HwConfig, scratch: &mut EncodeScratch) -> Decompression {
    let p = cfg.partition_size;
    let mut contributions = scratch.take_contribs();
    for r in 0..p {
        contributions.push((r, scratch.row_from(m.row(r))));
    }
    Decompression {
        contributions,
        decomp_cycles: 0,
        dot_issues: p as u64,
        engine_width: p,
        bram_reads: p as u64,
    }
}

/// CSR (Listing 1): one extra `offsets` BRAM access per non-zero row, then
/// a pipelined II=1 loop over that row's elements. Zero rows are skipped
/// for free because the offset reads are pipelined with row creation.
fn csr(m: &sparsemat::Csr<f32>, cfg: &HwConfig, scratch: &mut EncodeScratch) -> Decompression {
    let p = cfg.partition_size;
    let mut out = Decompression {
        contributions: scratch.take_contribs(),
        decomp_cycles: 0,
        dot_issues: 0,
        engine_width: p,
        bram_reads: 0,
    };
    for r in 0..p {
        let numval = m.row_nnz(r) as u64;
        if numval == 0 {
            continue;
        }
        // offsets[readInx] - offsets[readInx-1]
        out.bram_reads += 1;
        out.decomp_cycles += cfg.bram_read_latency;
        // for i = 0 to numVal (pipelined): drow[colInx[i]] = values[i]
        out.decomp_cycles += numval;
        out.bram_reads += numval;
        let mut row = scratch.row(p);
        for (c, v) in m.row_entries(r) {
            row[c] = v;
        }
        out.contributions.push((r, row));
        out.dot_issues += 1;
    }
    out
}

/// CSC (Listing 3): the orientation mismatch — for *every* output row the
/// decompressor rescans all stored tuples looking for matching row indices.
/// The hardware cannot know a row is empty without scanning, so all `p`
/// rows pay the scan; only non-empty rows issue a dot product.
fn csc(m: &sparsemat::Csc<f32>, cfg: &HwConfig, scratch: &mut EncodeScratch) -> Decompression {
    let p = cfg.partition_size;
    let nnz = m.nnz() as u64;
    // One scatter pass over the stored tuples replaces the hardware's
    // per-row rescan in software: for a fixed cell the tuples arrive in
    // the same column-major storage order the rescan read them, so
    // last-write-wins produces identical rows, and a row is emitted iff it
    // owns at least one stored tuple — exactly the rescan's `any` flag.
    let mut rows = scratch.take_opt_rows(p);
    for c in 0..p {
        for (r, v) in m.col_entries(c) {
            if let Some(slot) = rows.get_mut(r) {
                slot.get_or_insert_with(|| scratch.row(p))[c] = v;
            }
        }
    }
    // The cycle model still charges the full `p` rescans of all stored
    // tuples that Listing 3's schedule pays (II=1 over every tuple, once
    // per output row).
    let mut out = Decompression {
        contributions: scratch.take_contribs(),
        decomp_cycles: p as u64 * nnz,
        dot_issues: 0,
        engine_width: p,
        bram_reads: p as u64 * nnz,
    };
    for (r, slot) in rows.iter_mut().enumerate() {
        if let Some(row) = slot.take() {
            out.contributions.push((r, row));
            out.dot_issues += 1;
        }
    }
    scratch.give_opt_rows(rows);
    out
}

/// BCSR (Listing 2): one `offsets` access per non-empty block-row, then one
/// cycle per block (the inner copy loop is fully unrolled over partitioned
/// BRAMs). Every row of a non-zero block-row issues a dot product, zero
/// rows included — the paper's second BCSR downside.
fn bcsr(m: &sparsemat::Bcsr<f32>, cfg: &HwConfig, scratch: &mut EncodeScratch) -> Decompression {
    let p = cfg.partition_size;
    let b = m.block_size();
    let mut out = Decompression {
        contributions: scratch.take_contribs(),
        decomp_cycles: 0,
        dot_issues: 0,
        engine_width: p,
        bram_reads: 0,
    };
    let mut rows = scratch.take_row_stage();
    for br in 0..m.block_rows() {
        let nblocks = m.block_row_nnz(br) as u64;
        if nblocks == 0 {
            continue;
        }
        out.bram_reads += 1;
        out.decomp_cycles += cfg.bram_read_latency;
        out.decomp_cycles += nblocks;
        out.bram_reads += nblocks;
        // Emit all b rows of this block-row at full partition width.
        for _ in 0..b {
            rows.push(scratch.row(p));
        }
        for (first_col, vals) in m.block_row_entries(br) {
            for (lr, row) in rows.iter_mut().enumerate() {
                for lc in 0..b {
                    let c = first_col + lc;
                    if c < p {
                        row[c] = vals[lr * b + lc];
                    }
                }
            }
        }
        for (lr, row) in rows.drain(..).enumerate() {
            let gr = br * b + lr;
            if gr < p {
                out.contributions.push((gr, row));
                out.dot_issues += 1;
            } else {
                scratch.give_row(row);
            }
        }
    }
    scratch.give_row_stage(rows);
    out
}

/// COO (Listing 6): one pipelined II=1 pass over the tuple list scattering
/// into row buffers. Row boundaries are unknown in advance, so the loop is
/// pipelined, not unrolled; each completed non-zero row issues a dot.
fn coo(m: &sparsemat::Coo<f32>, cfg: &HwConfig, scratch: &mut EncodeScratch) -> Decompression {
    let p = cfg.partition_size;
    let nnz = m.nnz() as u64;
    let mut rows = scratch.take_opt_rows(p);
    for t in m.iter() {
        let row = rows[t.row].get_or_insert_with(|| scratch.row(p));
        row[t.col] += t.val;
    }
    let mut out = Decompression {
        contributions: scratch.take_contribs(),
        decomp_cycles: cfg.bram_read_latency + nnz,
        dot_issues: 0,
        engine_width: p,
        bram_reads: nnz,
    };
    for (r, slot) in rows.iter_mut().enumerate() {
        if let Some(row) = slot.take() {
            out.contributions.push((r, row));
            out.dot_issues += 1;
        }
    }
    scratch.give_opt_rows(rows);
    out
}

/// LIL (Listing 4): per emitted row, one *parallel* BRAM access across all
/// column lists (they are array-partitioned) plus the min-scan/assign
/// logic; one extra access recognizes the end of the non-zero rows. The
/// number of emissions equals the number of non-zero rows.
fn lil(m: &sparsemat::Lil<f32>, cfg: &HwConfig, scratch: &mut EncodeScratch) -> Decompression {
    let p = cfg.partition_size;
    // Per-row emission cost: parallel BRAM read + min-compare + assign.
    const LIL_LOGIC_CYCLES: u64 = 2;
    let mut cursors = scratch.take_cursors(p);
    let mut out = Decompression {
        contributions: scratch.take_contribs(),
        decomp_cycles: 0,
        dot_issues: 0,
        engine_width: p,
        bram_reads: 0,
    };
    loop {
        // minInx over the heads of all column lists (Listing 4, lines 9-12).
        let min_row = (0..p.min(m.num_lines()))
            .filter_map(|c| m.line(c).get(cursors[c]).map(|&(r, _)| r))
            .min();
        let Some(min_row) = min_row else {
            break;
        };
        let mut row = scratch.row(p);
        for c in 0..p.min(m.num_lines()) {
            if let Some(&(r, v)) = m.line(c).get(cursors[c]) {
                if r == min_row {
                    row[c] = v;
                    cursors[c] += 1;
                }
            }
        }
        out.bram_reads += p as u64;
        out.decomp_cycles += cfg.bram_read_latency + LIL_LOGIC_CYCLES;
        out.contributions.push((min_row, row));
        out.dot_issues += 1;
    }
    // One additional access recognizes the end of the non-zero rows (§5.2).
    out.decomp_cycles += cfg.bram_read_latency;
    out.bram_reads += p as u64;
    scratch.give_cursors(cursors);
    out
}

/// ELL (Listing 5): the copy loop is *fully unrolled* over the partitioned
/// slot arrays, so each row decompresses in one cycle regardless of its
/// width — §5.2: "reducing ELL_MAX_COMP_ROW_LENGTH in the ELL
/// implementation [...] only impact[s] the resource utilization of FPGA,
/// not the performance." All-zero rows cannot be skipped, and each row's
/// dot product runs on the dedicated narrow (width-6) compute path, which
/// is why ELL's compute cost is exactly `p` issues independent of the
/// sparsity pattern.
fn ell(m: &sparsemat::Ell<f32>, cfg: &HwConfig, scratch: &mut EncodeScratch) -> Decompression {
    let p = cfg.partition_size;
    let w = m.width();
    let (indices, values) = m.raw_slots();
    let mut out = Decompression {
        contributions: scratch.take_contribs(),
        decomp_cycles: 0,
        dot_issues: 0,
        engine_width: cfg.ell_hw_width,
        bram_reads: 0,
    };
    for r in 0..p {
        let mut row = scratch.row(p);
        // Slot slices of this row: one bounds check per row, not per slot.
        let base = r * w;
        for (&c, &v) in indices[base..base + w].iter().zip(&values[base..base + w]) {
            if c != PAD {
                row[c] = v;
            }
        }
        out.decomp_cycles += 1;
        out.bram_reads += 1;
        out.contributions.push((r, row));
        out.dot_issues += 1;
    }
    out
}

/// DIA (Listing 7): for every output row, a pipelined II=1 scan over all
/// stored diagonals (`DiaInxForRow` / `IsRowOnDiagonal`); only rows that
/// receive a value issue a dot product. "Such an overhead worsens when
/// non-zero elements are scattered over multiple diagonals but do not
/// completely fill them."
fn dia(m: &sparsemat::Dia<f32>, cfg: &HwConfig, scratch: &mut EncodeScratch) -> Decompression {
    let p = cfg.partition_size;
    let ndiag = m.num_diagonals() as u64;
    // Diagonal-major scatter: each stored diagonal is one contiguous slice,
    // so one linear pass per diagonal replaces the per-(row, diagonal)
    // gather that re-derived a slot index for every pair. Every in-range
    // cell lies on exactly one stored diagonal, so writes never collide and
    // the emitted rows — including which rows carry a non-zero at all —
    // are identical to the row-major walk.
    let mut rows = scratch.take_opt_rows(p);
    for (k, &d) in m.offsets().iter().enumerate() {
        let first_row = if d < 0 { (-d) as usize } else { 0 };
        for (j, &v) in m.diagonal(k).iter().enumerate() {
            let r = first_row + j;
            let c = r as isize + d;
            if v != 0.0 && r < p && c >= 0 && c < p as isize {
                rows[r].get_or_insert_with(|| scratch.row(p))[c as usize] = v;
            }
        }
    }
    // The cycle model still charges the per-row scan over all stored
    // diagonals that Listing 7's schedule pays.
    let mut out = Decompression {
        contributions: scratch.take_contribs(),
        decomp_cycles: cfg.bram_read_latency + p as u64 * ndiag,
        dot_issues: 0,
        engine_width: p,
        bram_reads: p as u64 * ndiag,
    };
    for (r, slot) in rows.iter_mut().enumerate() {
        if let Some(row) = slot.take() {
            out.contributions.push((r, row));
            out.dot_issues += 1;
        }
    }
    scratch.give_opt_rows(rows);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{Coo, FormatKind};

    fn cfg() -> HwConfig {
        HwConfig::with_partition_size(16)
    }

    fn tile(entries: &[(usize, usize, f32)]) -> Coo<f32> {
        let mut coo = Coo::new(16, 16);
        for &(r, c, v) in entries {
            coo.push(r, c, v).unwrap();
        }
        coo
    }

    fn sample() -> Coo<f32> {
        tile(&[
            (0, 0, 1.0),
            (0, 5, 2.0),
            (3, 3, 3.0),
            (3, 4, -1.0),
            (9, 0, 4.0),
            (15, 15, 5.0),
        ])
    }

    #[test]
    fn every_format_decompresses_functionally() {
        let t = sample();
        let cfg = cfg();
        let expect = t.to_dense();
        for kind in FormatKind::CHARACTERIZED {
            let part = EncodedPartition::encode(&t, kind, &cfg).unwrap();
            let d = decompress(&part, &cfg);
            assert_eq!(d.assemble(16), expect, "{kind} corrupted the tile");
        }
    }

    #[test]
    fn dok_decompresses_like_coo() {
        let t = sample();
        let cfg = cfg();
        let c = decompress(
            &EncodedPartition::encode(&t, FormatKind::Coo, &cfg).unwrap(),
            &cfg,
        );
        let k = decompress(
            &EncodedPartition::encode(&t, FormatKind::Dok, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(c.decomp_cycles, k.decomp_cycles);
        assert_eq!(c.dot_issues, k.dot_issues);
        assert_eq!(c.assemble(16), k.assemble(16));
    }

    #[test]
    fn dense_has_sigma_one_by_construction() {
        let t = sample();
        let cfg = cfg();
        let d = decompress(
            &EncodedPartition::encode(&t, FormatKind::Dense, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(d.decomp_cycles, 0);
        assert_eq!(d.dot_issues, 16);
        assert_eq!(d.compute_cycles(&cfg), 16 * cfg.dot_latency(16));
    }

    #[test]
    fn csr_cycles_match_closed_form() {
        // T_decomp = nzr·L_bram + nnz; dots = nzr.
        let t = sample(); // nnz = 6, nzr = 4
        let cfg = cfg();
        let d = decompress(
            &EncodedPartition::encode(&t, FormatKind::Csr, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(d.decomp_cycles, 4 * cfg.bram_read_latency + 6);
        assert_eq!(d.dot_issues, 4);
    }

    #[test]
    fn csc_pays_full_rescan_per_row() {
        // T_decomp = p·nnz: the worst case the paper measures at 21–30×.
        let t = sample();
        let cfg = cfg();
        let d = decompress(
            &EncodedPartition::encode(&t, FormatKind::Csc, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(d.decomp_cycles, 16 * 6);
        assert_eq!(d.dot_issues, 4);
    }

    #[test]
    fn coo_is_one_pass_over_tuples() {
        let t = sample();
        let cfg = cfg();
        let d = decompress(
            &EncodedPartition::encode(&t, FormatKind::Coo, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(d.decomp_cycles, cfg.bram_read_latency + 6);
        assert_eq!(d.dot_issues, 4);
    }

    #[test]
    fn bcsr_issues_dots_for_whole_block_rows() {
        // Entries at rows {0,3}, {9}, {15} → block-rows 0, 2, 3 are
        // non-zero → 3 block-rows × 4 rows = 12 dot issues.
        let t = sample();
        let cfg = cfg();
        let d = decompress(
            &EncodedPartition::encode(&t, FormatKind::Bcsr, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(d.dot_issues, 12);
        // Blocks: row0 {(0,0),(0,4)} wait (0,0),(0,5),(3,3),(3,4) → block
        // cols {0, 1}; row2 {(9,0)} → 1; row3 {(15,15)} → 1. Total 4 blocks.
        assert_eq!(
            d.decomp_cycles,
            3 * cfg.bram_read_latency + 4 /* blocks */
        );
    }

    #[test]
    fn lil_cost_scales_with_nonzero_rows() {
        let t = sample(); // nzr = 4
        let cfg = cfg();
        let d = decompress(
            &EncodedPartition::encode(&t, FormatKind::Lil, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(
            d.decomp_cycles,
            4 * (cfg.bram_read_latency + 2) + cfg.bram_read_latency
        );
        assert_eq!(d.dot_issues, 4);
    }

    #[test]
    fn ell_processes_all_rows_every_pass() {
        let t = sample(); // max row nnz = 2 → width 2 → 1 pass
        let cfg = cfg();
        let d = decompress(
            &EncodedPartition::encode(&t, FormatKind::Ell, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(d.dot_issues, 16);
        assert_eq!(d.decomp_cycles, 16);
        assert_eq!(d.engine_width, cfg.ell_hw_width);
    }

    #[test]
    fn ell_compute_is_independent_of_row_width() {
        // §5.2: the unrolled copy means a 13-wide row costs the same as a
        // 2-wide one — only resources change, not performance.
        let wide: Vec<(usize, usize, f32)> = (0..13).map(|c| (2, c, 1.0)).collect();
        let t = tile(&wide);
        let cfg = cfg();
        let d = decompress(
            &EncodedPartition::encode(&t, FormatKind::Ell, &cfg).unwrap(),
            &cfg,
        );
        let narrow = decompress(
            &EncodedPartition::encode(&sample(), FormatKind::Ell, &cfg).unwrap(),
            &cfg,
        );
        assert_eq!(d.dot_issues, narrow.dot_issues);
        assert_eq!(d.decomp_cycles, narrow.decomp_cycles);
        assert_eq!(d.assemble(16), t.to_dense());
    }

    #[test]
    fn dia_scans_all_diagonals_per_row() {
        let t = sample(); // diagonals: -9, 0 (x2... offsets {0,5,0,1,-9,0}) → {-9, 0, 1, 5}
        let cfg = cfg();
        let part = EncodedPartition::encode(&t, FormatKind::Dia, &cfg).unwrap();
        let d = decompress(&part, &cfg);
        assert_eq!(d.decomp_cycles, cfg.bram_read_latency + 16 * 4);
        assert_eq!(d.dot_issues, 4);
    }

    #[test]
    fn full_tile_maximizes_csc_overhead() {
        // Fully dense 16×16 tile: CSC decompression alone costs p·p² cycles,
        // ~21× the dense baseline — the paper's headline worst case.
        let mut coo = Coo::new(16, 16);
        for r in 0..16 {
            for c in 0..16 {
                coo.push(r, c, 1.0 + (r * 16 + c) as f32).unwrap();
            }
        }
        let cfg = cfg();
        let csc = decompress(
            &EncodedPartition::encode(&coo, FormatKind::Csc, &cfg).unwrap(),
            &cfg,
        );
        let dense = decompress(
            &EncodedPartition::encode(&coo, FormatKind::Dense, &cfg).unwrap(),
            &cfg,
        );
        let ratio = csc.compute_cycles(&cfg) as f64 / dense.compute_cycles(&cfg) as f64;
        assert!(ratio > 20.0, "CSC/dense = {ratio}");
        assert_eq!(csc.assemble(16), coo.to_dense());
    }

    #[test]
    fn warm_scratch_is_bit_identical_to_fresh_allocation() {
        // Two passes so the second round runs entirely on recycled buffers.
        let t = sample();
        let cfg = cfg();
        let mut scratch = EncodeScratch::new();
        for _ in 0..2 {
            for kind in FormatKind::CHARACTERIZED {
                let part = EncodedPartition::encode_with(&t, kind, &cfg, &mut scratch).unwrap();
                let fresh = decompress(&part, &cfg);
                let pooled = decompress_with(&part, &cfg, &mut scratch);
                assert_eq!(pooled, fresh, "{kind}");
                scratch.recycle_decompression(pooled);
                scratch.recycle_encoded(part);
            }
        }
    }
}
