//! Trace sinks: consumers of [`PipelineEvent`] streams.
//!
//! The pipeline model is generic over `S: TraceSink + ?Sized`, so the
//! default [`NullSink`] monomorphizes to nothing — an uninstrumented run
//! pays no cost and produces bit-identical reports. Instrumented paths take
//! `&mut dyn TraceSink` and pick a concrete sink at the CLI layer.

use crate::event::{PipelineEvent, Stage};
use serde::{Serialize, Value};
use std::io::Write;

/// A consumer of pipeline events.
pub trait TraceSink {
    /// Receives one event. Called at most once per modeled occurrence, in
    /// nondecreasing start-cycle order per track.
    fn record(&mut self, event: &PipelineEvent);

    /// Whether events will actually be consumed. Emitters may skip building
    /// event payloads entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The do-nothing sink: the default for every uninstrumented run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &PipelineEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Buffers every event in memory; the sink tests and the trace-sum
/// invariant checks are built on it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingSink {
    /// Every event received, in emission order.
    pub events: Vec<PipelineEvent>,
}

impl RecordingSink {
    /// An empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of span cycles for one stage (any lane).
    pub fn stage_cycles(&self, stage: Stage) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                PipelineEvent::StageSpan {
                    stage: s, cycles, ..
                } if *s == stage => Some(*cycles),
                _ => None,
            })
            .sum()
    }

    /// Number of events of each kind, for quick assertions.
    pub fn count(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// Consumes the sink, returning the buffered events. The buffer is
    /// `Send`, so workers can record privately and hand their events to a
    /// coordinating thread for ordered replay (see [`replay`]).
    pub fn into_events(self) -> Vec<PipelineEvent> {
        self.events
    }
}

/// Replays buffered events into `sink` in order — the second half of the
/// buffer-then-merge pattern parallel campaigns use: each worker records
/// into a private [`RecordingSink`], and the coordinator replays the
/// buffers in grid order so the merged stream is byte-identical to a
/// sequential run. No-op when the sink is disabled.
pub fn replay<S: TraceSink + ?Sized>(events: &[PipelineEvent], sink: &mut S) {
    if !sink.enabled() {
        return;
    }
    for e in events {
        sink.record(e);
    }
}

/// Merges per-worker event buffers into one stream ordered by modeled-cycle
/// timestamp (stable: ties keep buffer order, then emission order). Each
/// run's events start at cycle 0, so this interleaves concurrent runs on
/// one timeline — the view a trace UI wants. For byte-identity with a
/// sequential run, replay the buffers in grid order instead (see
/// [`replay`]); the campaign executor does exactly that.
pub fn merge_by_cycle(buffers: Vec<Vec<PipelineEvent>>) -> Vec<PipelineEvent> {
    let mut keyed: Vec<(u64, usize, usize, PipelineEvent)> = buffers
        .into_iter()
        .enumerate()
        .flat_map(|(b, events)| {
            events
                .into_iter()
                .enumerate()
                .map(move |(i, e)| (e.cycle(), b, i, e))
        })
        .collect();
    keyed.sort_by_key(|&(cycle, b, i, _)| (cycle, b, i));
    keyed.into_iter().map(|(_, _, _, e)| e).collect()
}

impl TraceSink for RecordingSink {
    fn record(&mut self, event: &PipelineEvent) {
        self.events.push(event.clone());
    }
}

/// Streams one JSON object per line to a writer — the machine-greppable
/// companion to the Chrome trace.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`; each event becomes one line of JSON.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &PipelineEvent) {
        let line = serde::json::to_string(&event.serialize());
        // Trace emission must never abort a modeled run; a full disk
        // degrades to a truncated trace.
        let _ = writeln!(self.writer, "{line}");
    }
}

/// Track ids (`tid`) used in the Chrome trace. Single-lane runs get one
/// track per stage; multi-lane runs share one memory-channel track and get
/// one compute track per lane (decompression spans nest inside them).
mod tid {
    use crate::event::Stage;

    pub const SHARED_MEM: u64 = 0;

    pub fn for_stage(stage: Stage) -> u64 {
        match stage {
            Stage::MemRead => 1,
            // Decompression is a prefix of the compute span, so it nests on
            // the same track and Perfetto renders it as a child slice.
            Stage::Compute | Stage::Decompress => 2,
            Stage::WriteBack => 3,
        }
    }

    pub fn for_lane(lane: usize) -> u64 {
        10 + lane as u64
    }
}

/// Builds a Chrome trace-event JSON document (the `{"traceEvents": [...]}`
/// wrapper with `"X"` complete events), openable in Perfetto or
/// `chrome://tracing`. Timestamps are modeled cycles, surfaced as
/// microseconds — 1 tick = 1 cycle.
#[derive(Debug, Default)]
pub struct ChromeTraceWriter {
    entries: Vec<Value>,
    named_tracks: Vec<u64>,
    process_named: bool,
}

impl ChromeTraceWriter {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    fn meta(name: &str, tid: u64, arg_name: &str) -> Value {
        Value::Map(vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(tid)),
            (
                "args".to_string(),
                Value::Map(vec![("name".to_string(), Value::Str(arg_name.to_string()))]),
            ),
        ])
    }

    fn name_process(&mut self, label: &str) {
        if !self.process_named {
            self.process_named = true;
            self.entries.insert(0, Self::meta("process_name", 0, label));
        }
    }

    fn name_track(&mut self, tid: u64, label: &str) {
        if !self.named_tracks.contains(&tid) {
            self.named_tracks.push(tid);
            self.entries.push(Self::meta("thread_name", tid, label));
        }
    }

    fn complete(&mut self, name: &str, tid: u64, ts: u64, dur: u64, args: Vec<(String, Value)>) {
        self.entries.push(Value::Map(vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("cat".to_string(), Value::Str("pipeline".to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::UInt(ts)),
            ("dur".to_string(), Value::UInt(dur)),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(tid)),
            ("args".to_string(), Value::Map(args)),
        ]));
    }

    fn instant(&mut self, name: &str, tid: u64, ts: u64, args: Vec<(String, Value)>) {
        self.entries.push(Value::Map(vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("cat".to_string(), Value::Str("pipeline".to_string())),
            ("ph".to_string(), Value::Str("i".to_string())),
            ("s".to_string(), Value::Str("t".to_string())),
            ("ts".to_string(), Value::UInt(ts)),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(tid)),
            ("args".to_string(), Value::Map(args)),
        ]));
    }

    /// Number of trace entries accumulated so far (metadata included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the accumulated trace as a Chrome trace-event JSON document.
    pub fn to_json(&self) -> String {
        let doc = Value::Map(vec![
            ("traceEvents".to_string(), Value::Seq(self.entries.clone())),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
            (
                "otherData".to_string(),
                Value::Map(vec![(
                    "timestamp_unit".to_string(),
                    Value::Str("modeled cycles (1 tick = 1 cycle)".to_string()),
                )]),
            ),
        ]);
        serde::json::to_string_pretty(&doc)
    }

    /// Writes the trace JSON to `writer`.
    pub fn write_to<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writer.write_all(self.to_json().as_bytes())?;
        writer.flush()
    }

    /// Writes the trace JSON to a file at `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.write_to(std::fs::File::create(path)?)
    }
}

impl TraceSink for ChromeTraceWriter {
    fn record(&mut self, event: &PipelineEvent) {
        match event {
            PipelineEvent::RunStart {
                format,
                partitions,
                partition_size,
            } => {
                self.name_process(&format!("copernicus {format} (p={partition_size})"));
                self.instant(
                    "run_start",
                    tid::for_stage(Stage::MemRead),
                    0,
                    vec![
                        ("format".to_string(), Value::Str(format.clone())),
                        ("partitions".to_string(), Value::UInt(*partitions as u64)),
                        (
                            "partition_size".to_string(),
                            Value::UInt(*partition_size as u64),
                        ),
                    ],
                );
            }
            PipelineEvent::PartitionStart {
                partition,
                grid_row,
                grid_col,
                cycle,
            } => {
                self.instant(
                    &format!("partition {partition}"),
                    tid::for_stage(Stage::MemRead),
                    *cycle,
                    vec![
                        ("grid_row".to_string(), Value::UInt(*grid_row as u64)),
                        ("grid_col".to_string(), Value::UInt(*grid_col as u64)),
                    ],
                );
            }
            PipelineEvent::StageSpan {
                stage,
                partition,
                lane,
                start_cycle,
                cycles,
            } => {
                let track = match (stage, lane) {
                    (Stage::MemRead, Some(_)) => {
                        self.name_track(tid::SHARED_MEM, "mem (shared channel)");
                        tid::SHARED_MEM
                    }
                    (_, Some(l)) => {
                        self.name_track(tid::for_lane(*l), &format!("lane {l} compute"));
                        tid::for_lane(*l)
                    }
                    (s, None) => {
                        let t = tid::for_stage(*s);
                        let label = match s {
                            Stage::MemRead => "mem read",
                            Stage::Compute | Stage::Decompress => "compute",
                            Stage::WriteBack => "write back",
                        };
                        self.name_track(t, label);
                        t
                    }
                };
                let mut args = vec![("partition".to_string(), Value::UInt(*partition as u64))];
                if let Some(l) = lane {
                    args.push(("lane".to_string(), Value::UInt(*l as u64)));
                }
                self.complete(stage.label(), track, *start_cycle, *cycles, args);
            }
            PipelineEvent::FunctionalMismatch { partition, detail } => {
                self.instant(
                    "functional_mismatch",
                    tid::for_stage(Stage::Compute),
                    0,
                    vec![
                        ("partition".to_string(), Value::UInt(*partition as u64)),
                        ("detail".to_string(), Value::Str(detail.clone())),
                    ],
                );
            }
            PipelineEvent::RunComplete { total_cycles } => {
                self.instant(
                    "run_complete",
                    tid::for_stage(Stage::MemRead),
                    *total_cycles,
                    vec![("total_cycles".to_string(), Value::UInt(*total_cycles))],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        stage: Stage,
        partition: usize,
        lane: Option<usize>,
        start: u64,
        cycles: u64,
    ) -> PipelineEvent {
        PipelineEvent::StageSpan {
            stage,
            partition,
            lane,
            start_cycle: start,
            cycles,
        }
    }

    #[test]
    fn event_buffers_are_send() {
        // Parallel campaigns move per-worker buffers across threads; keep
        // that a compile-time guarantee.
        fn assert_send<T: Send>() {}
        assert_send::<PipelineEvent>();
        assert_send::<RecordingSink>();
        assert_send::<Vec<PipelineEvent>>();
    }

    #[test]
    fn replay_reproduces_the_recorded_stream() {
        let mut original = RecordingSink::new();
        original.record(&span(Stage::MemRead, 0, None, 0, 10));
        original.record(&span(Stage::Compute, 0, None, 10, 20));
        original.record(&PipelineEvent::RunComplete { total_cycles: 30 });
        let events = original.clone().into_events();
        let mut target = RecordingSink::new();
        replay(&events, &mut target);
        assert_eq!(target, original);
        // Disabled sinks swallow the replay without recording.
        let mut null = NullSink;
        replay(&events, &mut null);
    }

    #[test]
    fn merge_by_cycle_orders_across_buffers_and_keeps_ties_stable() {
        let a = vec![
            span(Stage::MemRead, 0, Some(0), 0, 5),
            span(Stage::Compute, 0, Some(0), 5, 9),
        ];
        let b = vec![
            span(Stage::MemRead, 1, Some(1), 0, 3),
            span(Stage::Compute, 1, Some(1), 3, 4),
        ];
        let merged = merge_by_cycle(vec![a.clone(), b.clone()]);
        assert_eq!(merged.len(), 4);
        // Nondecreasing timestamps, with buffer order breaking the tie at
        // cycle 0.
        let cycles: Vec<u64> = merged.iter().map(PipelineEvent::cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "{cycles:?}");
        assert_eq!(merged[0], a[0]);
        assert_eq!(merged[1], b[0]);
        assert_eq!(merged[2], b[1]);
        assert_eq!(merged[3], a[1]);
    }

    #[test]
    fn null_sink_reports_disabled() {
        let mut s = NullSink;
        assert!(!TraceSink::enabled(&s));
        s.record(&PipelineEvent::RunComplete { total_cycles: 1 });
    }

    #[test]
    fn recording_sink_sums_spans_per_stage() {
        let mut s = RecordingSink::new();
        s.record(&span(Stage::MemRead, 0, None, 0, 10));
        s.record(&span(Stage::MemRead, 1, None, 10, 7));
        s.record(&span(Stage::Compute, 0, None, 10, 20));
        assert_eq!(s.stage_cycles(Stage::MemRead), 17);
        assert_eq!(s.stage_cycles(Stage::Compute), 20);
        assert_eq!(s.stage_cycles(Stage::WriteBack), 0);
        assert_eq!(s.count("stage_span"), 3);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&PipelineEvent::RunComplete { total_cycles: 9 });
        sink.record(&span(Stage::WriteBack, 2, None, 4, 6));
        let buf = sink.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            serde::json::parse(line).expect("each line is standalone JSON");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let mut w = ChromeTraceWriter::new();
        w.record(&PipelineEvent::RunStart {
            format: "CSR".into(),
            partitions: 2,
            partition_size: 16,
        });
        w.record(&span(Stage::MemRead, 0, None, 0, 12));
        w.record(&span(Stage::Compute, 0, None, 12, 30));
        w.record(&span(Stage::Decompress, 0, None, 12, 5));
        w.record(&span(Stage::Compute, 1, Some(3), 42, 8));
        w.record(&PipelineEvent::RunComplete { total_cycles: 50 });

        let doc = serde::json::parse(&w.to_json()).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array");
        assert!(!events.is_empty());

        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 4);
        for e in &complete {
            assert!(e.get("ts").and_then(Value::as_u64).is_some());
            assert!(e.get("dur").and_then(Value::as_u64).is_some());
            assert!(e.get("tid").and_then(Value::as_u64).is_some());
        }
        // Decompress nests on the compute track; the lane span sits on its
        // own lane track.
        let tid_of = |name: &str| {
            complete
                .iter()
                .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
                .and_then(|e| e.get("tid"))
                .and_then(Value::as_u64)
                .unwrap()
        };
        assert_eq!(tid_of("decompress"), tid_of("compute"));
        let lane_span = complete
            .iter()
            .find(|e| e.get("args").and_then(|a| a.get("lane")).is_some())
            .expect("lane span present");
        assert_eq!(lane_span.get("tid").and_then(Value::as_u64), Some(13));
    }

    #[test]
    fn track_metadata_emitted_once_per_track() {
        let mut w = ChromeTraceWriter::new();
        w.record(&span(Stage::MemRead, 0, None, 0, 1));
        w.record(&span(Stage::MemRead, 1, None, 1, 1));
        let doc = serde::json::parse(&w.to_json()).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        let metas = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .count();
        assert_eq!(metas, 1);
    }
}
