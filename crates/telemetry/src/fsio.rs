//! Durable file writes.
//!
//! Top-level run artifacts (`measurements.json`, `manifest.json`,
//! `metrics.tsv`, spool entries) must never be observable in a torn state:
//! a kill between `open` and the final `write` of a plain
//! [`std::fs::write`] leaves a truncated file that poisons every later
//! resume or report. [`atomic_write`] closes that window with the classic
//! temp-file + fsync + rename dance — readers see either the complete old
//! content or the complete new content, nothing in between.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// temp file first (same directory, so the rename cannot cross a
/// filesystem), are flushed and fsynced, and only then renamed over the
/// destination. A crash at any point leaves `path` either untouched or
/// fully written — never truncated.
///
/// Leftover `.tmp-*` siblings from an earlier crash are harmless (they are
/// never read) and are overwritten on the next write from the same
/// process id.
///
/// # Errors
///
/// Propagates I/O failures from creating, writing, syncing, or renaming
/// the temp file. On failure the temp file is best-effort removed and
/// `path` is untouched.
pub fn atomic_write(path: &Path, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(contents.as_ref())?;
        f.flush()?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Durability of the rename itself: fsync the parent directory when
        // we can open it (best effort — some platforms refuse O_RDONLY on
        // directories; the rename is still atomic without it).
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Ok(d) = File::open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Names the temp sibling for `path`: same directory, `.tmp-<pid>` suffix
/// so concurrent processes writing the same artifact never collide on the
/// staging file.
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("artifact"));
    name.push(format!(".tmp-{}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copernicus-fsio-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn writes_new_file_and_overwrites_existing() {
        let dir = scratch_dir("basic");
        let path = dir.join("artifact.json");
        atomic_write(&path, "first").expect("first write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "first");
        atomic_write(&path, "second").expect("second write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "second");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = scratch_dir("clean");
        let path = dir.join("artifact.json");
        atomic_write(&path, "payload").expect("write");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_temp_from_a_crash_does_not_corrupt_target() {
        let dir = scratch_dir("stale");
        let path = dir.join("artifact.json");
        // Simulate a crash that left a torn staging file behind.
        std::fs::write(super::tmp_sibling(&path), "TORN GARBAGE").expect("plant stale tmp");
        atomic_write(&path, "good").expect("write over stale tmp");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "good");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash-simulation: a reader racing many rewrites must only ever see
    /// a complete old or complete new payload — never a prefix.
    #[test]
    fn concurrent_reader_never_observes_a_torn_file() {
        let dir = scratch_dir("race");
        let path = dir.join("artifact.json");
        let old = "A".repeat(64 * 1024);
        let new = "B".repeat(64 * 1024);
        atomic_write(&path, &old).expect("seed");

        std::thread::scope(|scope| {
            let reader_path = path.clone();
            let (old_r, new_r) = (old.clone(), new.clone());
            let reader = scope.spawn(move || {
                for _ in 0..200 {
                    let got = std::fs::read_to_string(&reader_path).expect("read");
                    assert!(
                        got == old_r || got == new_r,
                        "torn read: {} bytes, starts {:?}",
                        got.len(),
                        &got[..got.len().min(8)]
                    );
                }
            });
            for i in 0..100 {
                let payload = if i % 2 == 0 { &new } else { &old };
                atomic_write(&path, payload).expect("rewrite");
            }
            reader.join().expect("reader thread");
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
