//! Wall-clock phase profiling for the simulator itself.
//!
//! The paper's telemetry ([`MetricsRegistry`](crate::MetricsRegistry),
//! trace sinks) describes *modeled* cycles and is part of the byte-identical
//! artifact contract. This module answers a different question — where does
//! the **harness** spend real time? — and therefore lives strictly outside
//! that contract: a [`PhaseProfiler`] owns its own histogram store, is
//! never merged into a campaign's deterministic registry, and its export
//! (`profile.json`) is a wall-clock artifact excluded from determinism
//! diffs, exactly like the timestamped manifest.
//!
//! Two recording styles:
//!
//! * [`PhaseProfiler::scope`] — an RAII guard observing the elapsed time of
//!   one phase on drop (cache lookups, queue waits).
//! * [`PhaseAcc`] — a tiny mark/lap accumulator for tight per-tile loops:
//!   the pipeline laps encode/decompress/verify once per tile and flushes
//!   **one** histogram observation per phase per run, so profiling a
//!   50k-tile campaign costs `Instant::now` calls, not 200k mutex locks.

use crate::metrics::Histogram;
use serde::Value;
use std::sync::Mutex;
use std::time::Instant;

use crate::locks::lock_clean;

/// The harness phases the profiler attributes wall time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Building the per-tile compressed representation.
    Encode,
    /// Running the modeled decompressor over the encoded tile.
    Decompress,
    /// Everything else inside a platform run: timing-model assembly, span
    /// scheduling, SpMV consumption (the residual of the run wall time
    /// after encode/decompress/verify).
    Compute,
    /// Cross-checking decompressed rows against the reference tile.
    Verify,
    /// Workload/grid cache lookups (generation + tiling on a miss).
    CacheLookup,
    /// Worker idle time: campaign wall time a worker spent without a unit.
    QueueWait,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 6] = [
        Phase::Encode,
        Phase::Decompress,
        Phase::Compute,
        Phase::Verify,
        Phase::CacheLookup,
        Phase::QueueWait,
    ];

    /// The stable snake_case name used in `profile.json` and reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Encode => "encode",
            Phase::Decompress => "decompress",
            Phase::Compute => "compute",
            Phase::Verify => "verify",
            Phase::CacheLookup => "cache_lookup",
            Phase::QueueWait => "queue_wait",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Encode => 0,
            Phase::Decompress => 1,
            Phase::Compute => 2,
            Phase::Verify => 3,
            Phase::CacheLookup => 4,
            Phase::QueueWait => 5,
        }
    }
}

/// Per-worker utilization totals accumulated across campaigns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Seconds this worker spent executing units.
    pub busy_secs: f64,
    /// Grid cells this worker delivered (computed or cache-replayed).
    pub cells: u64,
}

/// Wall-clock phase histograms plus per-worker utilization; `Sync`, shared
/// across the campaign pool behind an `Arc`.
///
/// All state is wall-clock-derived and therefore scheduling-dependent; the
/// profiler must never feed the deterministic metrics registry.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    phases: Mutex<[Histogram; 6]>,
    workers: Mutex<Vec<WorkerStats>>,
    /// Campaign wall seconds (coordinator-measured), summed over campaigns.
    wall: Mutex<f64>,
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one wall-clock observation (seconds) for `phase`.
    pub fn record(&self, phase: Phase, secs: f64) {
        lock_clean(&self.phases)[phase.index()].observe(secs);
    }

    /// RAII phase scope: observes the elapsed wall time on drop.
    pub fn scope(&self, phase: Phase) -> PhaseScope<'_> {
        PhaseScope {
            profiler: self,
            phase,
            start: Instant::now(),
        }
    }

    /// Folds one run's [`PhaseAcc`] into the histograms: one observation
    /// per lapped phase plus the run's residual as [`Phase::Compute`].
    pub fn flush_run(&self, acc: &PhaseAcc, run_secs: f64) {
        if !acc.enabled {
            return;
        }
        let mut phases = lock_clean(&self.phases);
        let mut accounted = 0.0;
        for (i, &secs) in acc.totals.iter().enumerate() {
            if secs > 0.0 {
                phases[i].observe(secs);
                accounted += secs;
            }
        }
        phases[Phase::Compute.index()].observe((run_secs - accounted).max(0.0));
    }

    /// Adds one campaign's pool observation: per-worker busy seconds and
    /// delivered cells, plus the campaign's wall time. Worker `i` here
    /// merges into worker `i` of earlier campaigns; each worker's idle
    /// share of the campaign is also observed as [`Phase::QueueWait`].
    pub fn record_pool(&self, busy: &[WorkerStats], wall_secs: f64) {
        {
            let mut workers = lock_clean(&self.workers);
            if workers.len() < busy.len() {
                workers.resize(busy.len(), WorkerStats::default());
            }
            for (w, b) in workers.iter_mut().zip(busy) {
                w.busy_secs += b.busy_secs;
                w.cells += b.cells;
            }
        }
        *lock_clean(&self.wall) += wall_secs;
        for b in busy {
            self.record(Phase::QueueWait, (wall_secs - b.busy_secs).max(0.0));
        }
    }

    /// Snapshot of one phase's histogram, if it has observations.
    pub fn histogram(&self, phase: Phase) -> Option<Histogram> {
        let h = &lock_clean(&self.phases)[phase.index()];
        if h.count() == 0 {
            None
        } else {
            Some(h.clone())
        }
    }

    /// Per-worker utilization totals (empty before the first campaign).
    pub fn workers(&self) -> Vec<WorkerStats> {
        lock_clean(&self.workers).clone()
    }

    /// Total campaign wall seconds observed via [`record_pool`]
    /// (PhaseProfiler::record_pool).
    pub fn wall_secs(&self) -> f64 {
        *lock_clean(&self.wall)
    }

    /// Whether anything was recorded (used to skip writing an empty
    /// `profile.json`).
    pub fn has_data(&self) -> bool {
        lock_clean(&self.phases).iter().any(|h| h.count() > 0) || !self.workers().is_empty()
    }

    /// The `profile.json` document: per-phase summary statistics and
    /// per-worker utilization. Wall-clock values — never byte-compared.
    pub fn to_json(&self) -> String {
        let phases = {
            let hs = lock_clean(&self.phases);
            Value::Map(
                Phase::ALL
                    .iter()
                    .filter(|p| hs[p.index()].count() > 0)
                    .map(|p| (p.label().to_string(), histogram_value(&hs[p.index()])))
                    .collect(),
            )
        };
        let wall = self.wall_secs();
        let workers = Value::Seq(
            self.workers()
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let util = if wall > 0.0 {
                        (w.busy_secs / wall).min(1.0)
                    } else {
                        0.0
                    };
                    let rate = if w.busy_secs > 0.0 {
                        w.cells as f64 / w.busy_secs
                    } else {
                        0.0
                    };
                    Value::Map(vec![
                        ("worker".to_string(), Value::UInt(i as u64)),
                        ("busy_secs".to_string(), Value::Float(w.busy_secs)),
                        ("cells".to_string(), Value::UInt(w.cells)),
                        ("utilization".to_string(), Value::Float(util)),
                        ("cells_per_sec".to_string(), Value::Float(rate)),
                    ])
                })
                .collect(),
        );
        serde::json::to_string_pretty(&Value::Map(vec![
            ("phases".to_string(), phases),
            ("workers".to_string(), workers),
            ("campaign_wall_secs".to_string(), Value::Float(wall)),
        ]))
    }
}

fn histogram_value(h: &Histogram) -> Value {
    Value::Map(vec![
        ("count".to_string(), Value::UInt(h.count())),
        ("sum_secs".to_string(), Value::Float(h.sum())),
        ("mean_secs".to_string(), Value::Float(h.mean())),
        ("min_secs".to_string(), Value::Float(h.min())),
        ("max_secs".to_string(), Value::Float(h.max())),
        ("p50_secs".to_string(), Value::Float(h.quantile(0.5))),
        ("p95_secs".to_string(), Value::Float(h.quantile(0.95))),
        ("p99_secs".to_string(), Value::Float(h.quantile(0.99))),
    ])
}

/// See [`PhaseProfiler::scope`].
#[derive(Debug)]
pub struct PhaseScope<'a> {
    profiler: &'a PhaseProfiler,
    phase: Phase,
    start: Instant,
}

impl Drop for PhaseScope<'_> {
    fn drop(&mut self) {
        self.profiler
            .record(self.phase, self.start.elapsed().as_secs_f64());
    }
}

/// A per-run mark/lap accumulator for the per-tile hot loop. Disabled, it
/// is a no-op with no `Instant` reads, so unprofiled runs keep the
/// zero-cost path.
#[derive(Debug)]
pub struct PhaseAcc {
    enabled: bool,
    last: Option<Instant>,
    totals: [f64; 6],
}

impl PhaseAcc {
    /// An accumulator; `enabled: false` turns every call into a no-op.
    pub fn new(enabled: bool) -> Self {
        PhaseAcc {
            enabled,
            last: None,
            totals: [0.0; 6],
        }
    }

    /// A permanently disabled accumulator.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Starts (or restarts) the lap clock.
    pub fn mark(&mut self) {
        if self.enabled {
            self.last = Some(Instant::now());
        }
    }

    /// Attributes the time since the last [`mark`](PhaseAcc::mark)/`lap` to
    /// `phase` and restarts the clock.
    pub fn lap(&mut self, phase: Phase) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        if let Some(last) = self.last {
            self.totals[phase.index()] += now.duration_since(last).as_secs_f64();
        }
        self.last = Some(now);
    }

    /// Seconds accumulated for `phase` so far.
    pub fn total(&self, phase: Phase) -> f64 {
        self.totals[phase.index()]
    }

    /// Folds another accumulator's totals into this one — used to reduce
    /// per-worker accumulators into the run accumulator after a
    /// tile-parallel pass. Phase totals then aggregate CPU time across
    /// workers rather than wall time, which is what the per-phase
    /// histograms report for parallel runs.
    pub fn merge(&mut self, other: &PhaseAcc) {
        if other.enabled {
            for (t, o) in self.totals.iter_mut().zip(other.totals) {
                *t += o;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_and_laps_record_into_the_right_phase() {
        let p = PhaseProfiler::new();
        assert!(!p.has_data());
        {
            let _s = p.scope(Phase::CacheLookup);
        }
        let mut acc = PhaseAcc::new(true);
        acc.mark();
        acc.lap(Phase::Encode);
        acc.lap(Phase::Decompress);
        p.flush_run(&acc, 1.0);
        assert!(p.has_data());
        assert_eq!(p.histogram(Phase::CacheLookup).unwrap().count(), 1);
        assert_eq!(p.histogram(Phase::Encode).unwrap().count(), 1);
        // Compute is the residual of the run time.
        let compute = p.histogram(Phase::Compute).unwrap();
        assert_eq!(compute.count(), 1);
        assert!(compute.sum() <= 1.0);
        assert!(p.histogram(Phase::QueueWait).is_none());
    }

    #[test]
    fn disabled_acc_records_nothing() {
        let p = PhaseProfiler::new();
        let mut acc = PhaseAcc::disabled();
        acc.mark();
        acc.lap(Phase::Encode);
        p.flush_run(&acc, 5.0);
        assert!(!p.has_data());
        assert_eq!(acc.total(Phase::Encode), 0.0);
    }

    #[test]
    fn pool_records_merge_across_campaigns() {
        let p = PhaseProfiler::new();
        p.record_pool(
            &[
                WorkerStats {
                    busy_secs: 0.5,
                    cells: 10,
                },
                WorkerStats {
                    busy_secs: 0.25,
                    cells: 6,
                },
            ],
            1.0,
        );
        p.record_pool(
            &[WorkerStats {
                busy_secs: 1.0,
                cells: 4,
            }],
            1.5,
        );
        let workers = p.workers();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].cells, 14);
        assert!((workers[0].busy_secs - 1.5).abs() < 1e-12);
        assert_eq!(workers[1].cells, 6);
        assert!((p.wall_secs() - 2.5).abs() < 1e-12);
        // Each worker contributed one queue-wait observation per campaign.
        assert_eq!(p.histogram(Phase::QueueWait).unwrap().count(), 3);
    }

    #[test]
    fn json_export_names_every_recorded_phase() {
        let p = PhaseProfiler::new();
        p.record(Phase::Encode, 0.001);
        p.record_pool(
            &[WorkerStats {
                busy_secs: 0.1,
                cells: 8,
            }],
            0.2,
        );
        let doc = serde::json::parse(&p.to_json()).expect("valid JSON");
        let phases = doc.get("phases").expect("phases map");
        assert!(phases.get("encode").is_some());
        assert!(phases.get("queue_wait").is_some());
        assert!(phases.get("verify").is_none(), "unrecorded phases omitted");
        let workers = doc.get("workers").and_then(Value::as_seq).unwrap();
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].get("cells").and_then(Value::as_u64), Some(8));
        let util = workers[0]
            .get("utilization")
            .and_then(Value::as_f64)
            .unwrap();
        assert!((util - 0.5).abs() < 1e-9);
    }
}
