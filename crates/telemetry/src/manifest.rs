//! Run manifests: everything needed to reproduce (and audit) a
//! characterization run — hardware configuration, seed, workload labels,
//! crate version and wall-clock timestamp.

use serde::{Deserialize, Serialize, Value};

/// One grid cell that failed during the run — the manifest's audit record
/// of incomplete coverage (kinds and semantics are defined by the
/// producer's failure taxonomy; this crate stores them as plain strings so
/// it does not depend on the campaign layer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Global cell index within the producing runner's dispatch order.
    pub cell: u64,
    /// Workload label of the failed cell.
    pub workload: String,
    /// Partition size of the failed cell.
    pub partition_size: usize,
    /// Compression format label of the failed cell.
    pub format: String,
    /// Failure classification tag (e.g. `input`, `platform`, `panic`,
    /// `timeout`).
    pub kind: String,
    /// Human-readable description of the failure.
    pub message: String,
    /// Retries spent before the cell was given up on.
    pub retries: u64,
}

/// A self-describing record of one characterization run or campaign.
///
/// The hardware configuration is stored as a generic [`Value`] tree so this
/// crate does not depend on the pipeline model; callers serialize their
/// `HwConfig` and hand over the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Producing tool, always `"copernicus-repro"`.
    pub tool: String,
    /// Workspace crate version at build time.
    pub version: String,
    /// Wall-clock creation time, seconds since the Unix epoch.
    pub created_unix_s: u64,
    /// Human-readable UTC rendering of `created_unix_s`.
    pub created_utc: String,
    /// RNG seed the workload generators were run with.
    pub seed: u64,
    /// Full hardware configuration, serialized by the caller.
    pub hw: Value,
    /// Labels of every workload characterized.
    pub workloads: Vec<String>,
    /// Labels of every compression format characterized.
    pub formats: Vec<String>,
    /// Partition edge lengths swept.
    pub partition_sizes: Vec<usize>,
    /// Free-form notes (figure names, CLI invocation, preset).
    pub notes: Vec<String>,
    /// Cells that failed during the run (empty for a fully successful
    /// campaign).
    pub failures: Vec<FailureRecord>,
}

impl RunManifest {
    /// Builds a manifest stamped with the current wall-clock time and this
    /// workspace's crate version.
    pub fn new(seed: u64, hw: Value) -> Self {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        RunManifest {
            tool: "copernicus-repro".to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            created_unix_s: now,
            created_utc: format_utc(now),
            seed,
            hw,
            workloads: Vec::new(),
            formats: Vec::new(),
            partition_sizes: Vec::new(),
            notes: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Adds a free-form note (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the manifest as pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(&self.serialize())
    }

    /// Parses a manifest back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        Self::deserialize(&serde::json::from_str(text)?)
    }

    /// Writes the manifest JSON to a file at `path` atomically (temp file
    /// + rename), so a kill mid-write can never leave a torn manifest.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::fsio::atomic_write(path, self.to_json())
    }
}

/// Renders Unix seconds as `YYYY-MM-DDTHH:MM:SSZ` without a date-time
/// dependency (Howard Hinnant's civil-from-days algorithm).
pub fn format_utc(unix_s: u64) -> String {
    let days = (unix_s / 86_400) as i64;
    let secs = unix_s % 86_400;
    let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);

    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mo = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mo <= 2 { y + 1 } else { y };

    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_formatting_matches_known_dates() {
        assert_eq!(format_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(format_utc(86_400), "1970-01-02T00:00:00Z");
        // 2021-11-07 12:00:00 UTC (Copernicus was presented at IISWC 2021).
        assert_eq!(format_utc(1_636_286_400), "2021-11-07T12:00:00Z");
        // Leap-year boundary.
        assert_eq!(format_utc(951_825_599), "2000-02-29T11:59:59Z");
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let hw = Value::Map(vec![
            ("clock_mhz".to_string(), Value::Float(250.0)),
            ("bus_bytes_per_cycle".to_string(), Value::UInt(8)),
        ]);
        let mut m = RunManifest::new(42, hw).with_note("fig05");
        m.workloads.push("random d=0.05".to_string());
        m.formats.push("CSR".to_string());
        m.partition_sizes.push(16);

        let text = m.to_json();
        let back = RunManifest::from_json(&text).expect("parse back");
        assert_eq!(back, m);
        assert_eq!(back.tool, "copernicus-repro");
        assert_eq!(back.version, env!("CARGO_PKG_VERSION"));
        assert!(back.created_utc.ends_with('Z'));
    }

    #[test]
    fn failure_records_round_trip_through_json() {
        let mut m = RunManifest::new(7, Value::Null);
        m.failures.push(FailureRecord {
            cell: 40,
            workload: "d=0.05".to_string(),
            partition_size: 16,
            format: "CSR".to_string(),
            kind: "panic".to_string(),
            message: "worker panic: injected fault at cell 40".to_string(),
            retries: 2,
        });
        let back = RunManifest::from_json(&m.to_json()).expect("parse back");
        assert_eq!(back, m);
        assert_eq!(back.failures.len(), 1);
        assert_eq!(back.failures[0].kind, "panic");
    }

    #[test]
    fn manifest_rejects_malformed_json() {
        assert!(RunManifest::from_json("{").is_err());
        assert!(RunManifest::from_json("{\"tool\": \"x\"}").is_err());
    }
}
