//! A process-wide metrics registry: named atomic counters plus fixed-bucket
//! histograms, exportable as TSV or JSON.
//!
//! The registry is `Sync` and takes `&self` everywhere, so one instance can
//! be shared across a whole characterization campaign. Counters use a
//! read-lock + atomic fast path; histograms use power-of-two buckets so
//! values spanning many orders of magnitude (cycles, bytes) and small ratios
//! (sigma, balance) share one bucketing scheme.

use crate::locks::{lock_clean, read_clean, write_clean};
use serde::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Number of histogram buckets. Bucket `i` covers values `<= 2^(i + MIN_EXP)`;
/// the final bucket is the overflow catch-all.
const BUCKETS: usize = 48;
/// Exponent of the first bucket's upper bound: 2^-8 = 1/256, small enough
/// for compute-balance ratios and sigma values well below one.
const MIN_EXP: i32 = -8;

/// A fixed-bucket log2 histogram with exact count/sum/min/max sidecars.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: f64) -> usize {
        if value.is_nan() {
            return BUCKETS - 1;
        }
        let mut i = 0;
        while i < BUCKETS - 1 {
            if value <= Self::bucket_bound(i) {
                return i;
            }
            i += 1;
        }
        BUCKETS - 1
    }

    /// Upper bound of bucket `i` (`+inf` for the overflow bucket).
    pub fn bucket_bound(i: usize) -> f64 {
        if i >= BUCKETS - 1 {
            f64::INFINITY
        } else {
            (2.0f64).powi(i as i32 + MIN_EXP)
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Upper-bound estimate of quantile `q` in `[0, 1]`: the bound of the
    /// bucket where the cumulative count crosses `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for i in 0..BUCKETS {
            seen += self.counts[i];
            if seen >= target {
                // Clamp the coarse bucket bound by the exact extrema.
                return Self::bucket_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Non-empty `(upper_bound, count)` buckets.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        (0..BUCKETS)
            .filter(|&i| self.counts[i] > 0)
            .map(|i| (Self::bucket_bound(i), self.counts[i]))
            .collect()
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("sum".to_string(), Value::Float(self.sum)),
            ("mean".to_string(), Value::Float(self.mean())),
            ("min".to_string(), Value::Float(self.min)),
            ("max".to_string(), Value::Float(self.max)),
            ("p50".to_string(), Value::Float(self.quantile(0.5))),
            ("p99".to_string(), Value::Float(self.quantile(0.99))),
            (
                "buckets".to_string(),
                Value::Seq(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(le, n)| {
                            Value::Map(vec![
                                ("le".to_string(), Value::Float(le)),
                                ("count".to_string(), Value::UInt(n)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Named counters and histograms for a characterization campaign.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, AtomicU64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter `name`, creating it at zero first if needed.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(c) = read_clean(&self.counters).get(name) {
            c.fetch_add(by, Ordering::Relaxed);
            return;
        }
        write_clean(&self.counters)
            .entry(name.to_string())
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(by, Ordering::Relaxed);
    }

    /// Adds `by` to the counter `name` unless `by` is zero. Zero deltas do
    /// not create the counter, so exporters of occasional events (cache
    /// deltas, retries, failures) keep a quiet run's TSV/JSON byte-identical
    /// to one where the subsystem never reported at all.
    pub fn incr_nonzero(&self, name: &str, by: u64) {
        if by > 0 {
            self.incr(name, by);
        }
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        lock_clean(&self.histograms)
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        read_clean(&self.counters)
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Snapshot of histogram `name`, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        lock_clean(&self.histograms).get(name).cloned()
    }

    /// Sorted counter names.
    pub fn counter_names(&self) -> Vec<String> {
        read_clean(&self.counters).keys().cloned().collect()
    }

    /// Sorted histogram names.
    pub fn histogram_names(&self) -> Vec<String> {
        lock_clean(&self.histograms).keys().cloned().collect()
    }

    /// Tab-separated export: one row per counter, then one per histogram
    /// summary, with a header row.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("metric\tkind\tcount\tsum\tmean\tmin\tmax\tp50\tp99\n");
        for (name, c) in read_clean(&self.counters).iter() {
            let v = c.load(Ordering::Relaxed);
            out.push_str(&format!("{name}\tcounter\t{v}\t{v}\t\t\t\t\t\n"));
        }
        for (name, h) in lock_clean(&self.histograms).iter() {
            out.push_str(&format!(
                "{name}\thistogram\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                h.count(),
                h.sum(),
                h.mean(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.99),
            ));
        }
        out
    }

    /// JSON export: `{"counters": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let counters = Value::Map(
            read_clean(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(v.load(Ordering::Relaxed))))
                .collect(),
        );
        let histograms = Value::Map(
            lock_clean(&self.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), h.to_value()))
                .collect(),
        );
        serde::json::to_string_pretty(&Value::Map(vec![
            ("counters".to_string(), counters),
            ("histograms".to_string(), histograms),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 3);
        m.incr("x", 4);
        m.incr("y", 1);
        assert_eq!(m.counter("x"), 7);
        assert_eq!(m.counter("y"), 1);
        assert_eq!(m.counter_names(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn incr_nonzero_skips_zero_deltas() {
        let m = MetricsRegistry::new();
        m.incr_nonzero("quiet", 0);
        assert!(m.counter_names().is_empty(), "zero delta must not register");
        m.incr_nonzero("loud", 3);
        m.incr_nonzero("loud", 0);
        assert_eq!(m.counter("loud"), 3);
        assert_eq!(m.counter_names(), vec!["loud".to_string()]);
    }

    #[test]
    fn histogram_summary_statistics_are_exact() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    fn histogram_buckets_cover_wide_ranges() {
        let mut h = Histogram::new();
        h.observe(0.01); // ratio-scale
        h.observe(1.5);
        h.observe(1.0e9); // cycle-scale
        h.observe(1.0e30); // overflow bucket
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, n)| n).sum::<u64>(), 4);
        assert!(buckets.last().unwrap().0.is_infinite());
    }

    #[test]
    fn quantile_is_bounded_by_extrema() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.observe(v as f64);
        }
        let p50 = h.quantile(0.5);
        assert!((1.0..=100.0).contains(&p50), "{p50}");
        assert!(h.quantile(1.0) <= 100.0);
        assert!(h.quantile(0.0) >= 1.0);
        assert!(h.quantile(0.99) >= p50);
    }

    #[test]
    fn exports_contain_every_metric() {
        let m = MetricsRegistry::new();
        m.incr("runs", 2);
        m.observe("sigma", 1.25);
        let tsv = m.to_tsv();
        assert!(tsv.contains("runs\tcounter\t2"));
        assert!(tsv.contains("sigma\thistogram\t1"));

        let doc = serde::json::parse(&m.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("runs"))
                .and_then(Value::as_u64),
            Some(2)
        );
        let sigma = doc
            .get("histograms")
            .and_then(|h| h.get("sigma"))
            .expect("sigma histogram");
        assert_eq!(sigma.get("count").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.incr("hits", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter("hits"), 4000);
    }
}
