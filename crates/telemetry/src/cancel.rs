//! Cooperative cancellation tokens.
//!
//! A [`CancelToken`] is the one signal that threads through every layer of
//! a characterization run: the serve daemon arms one per request, the
//! campaign runner derives a per-cell child with an optional deadline, and
//! the pipeline hot loop polls it between partitions. Cancellation is
//! *cooperative* — nothing is interrupted mid-instruction; work stops at
//! the next poll point, which keeps every artifact either complete or
//! absent, never torn.
//!
//! Tokens form a parent chain: cancelling a parent cancels every child
//! derived from it (shutdown cancels all in-flight requests; a request
//! deadline cancels the cells it spawned), while a child expiring leaves
//! its siblings untouched.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    /// Wall-clock deadline after which the token reports cancelled even
    /// without an explicit [`CancelToken::cancel`] call.
    deadline: Option<Instant>,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        match &self.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }
}

/// A cheaply clonable, thread-safe cancellation signal with optional
/// deadline and parent chaining. Clones share state: cancelling any clone
/// cancels them all.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh root token: never cancelled until [`CancelToken::cancel`]
    /// is called on it (or a clone of it).
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// Derives a child token that is cancelled when *either* this token is
    /// cancelled *or* `timeout` (measured from now) elapses. Pass `None`
    /// for a pure child that only follows the parent.
    ///
    /// A zero timeout yields a child that is already expired — the
    /// deterministic "deadline has passed" test hook.
    pub fn child(&self, timeout: Option<Duration>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: timeout
                    .map(|t| Instant::now().checked_add(t).unwrap_or_else(Instant::now)),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Signals cancellation. Idempotent; visible to every clone and every
    /// child derived from this token.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// True once this token (or any ancestor) has been cancelled, or its
    /// deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live_until_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_cancellation_state() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn cancelling_parent_cancels_child_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child(None);
        assert!(!child.is_cancelled());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not leak upward");

        let parent2 = CancelToken::new();
        let child2 = parent2.child(None);
        parent2.cancel();
        assert!(child2.is_cancelled(), "parent cancel reaches the child");
    }

    #[test]
    fn zero_deadline_child_is_born_expired() {
        let parent = CancelToken::new();
        let child = parent.child(Some(Duration::ZERO));
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn generous_deadline_child_stays_live() {
        let parent = CancelToken::new();
        let child = parent.child(Some(Duration::from_secs(3600)));
        assert!(!child.is_cancelled());
    }

    #[test]
    fn grandchild_sees_grandparent_cancel() {
        let root = CancelToken::new();
        let mid = root.child(None);
        let leaf = mid.child(Some(Duration::from_secs(3600)));
        root.cancel();
        assert!(leaf.is_cancelled());
    }
}
