//! Cycle-level telemetry for the Copernicus pipeline model.

pub mod event;
pub mod manifest;
pub mod metrics;
pub mod sink;

pub use event::{PipelineEvent, Stage};
pub use manifest::{FailureRecord, RunManifest};
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::{
    merge_by_cycle, replay, ChromeTraceWriter, JsonlSink, NullSink, RecordingSink, TraceSink,
};
