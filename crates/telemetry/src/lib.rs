//! Cycle-level telemetry for the Copernicus pipeline model.
//!
//! Two kinds of state live here, on opposite sides of the determinism
//! boundary (DESIGN.md §11):
//!
//! * **Deterministic artifacts** — [`event`]/[`sink`] trace streams,
//!   [`metrics`] counters and histograms of *modeled* quantities, and the
//!   [`manifest`]. These are part of the byte-identical contract across
//!   `--jobs`, resume and retries.
//! * **Wall-clock observability** — [`profile`] phase timings and
//!   [`progress`] heartbeats. These measure the harness itself, are
//!   scheduling-dependent by nature, and are excluded from byte
//!   comparisons.

// Telemetry paths must degrade (drop a line, skip a write), not die; CI
// runs clippy with `-D warnings`, making this a gate.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cancel;
pub mod event;
pub mod fsio;
mod locks;
pub mod manifest;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod sink;

pub use cancel::CancelToken;
pub use event::{PipelineEvent, Stage};
pub use fsio::atomic_write;
pub use manifest::{FailureRecord, RunManifest};
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{Phase, PhaseAcc, PhaseProfiler, PhaseScope, WorkerStats};
pub use progress::{ProgressReporter, ProgressSnapshot, StderrMode};
pub use sink::{
    merge_by_cycle, replay, ChromeTraceWriter, JsonlSink, NullSink, RecordingSink, TraceSink,
};
