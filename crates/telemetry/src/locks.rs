//! Poison-recovering lock acquisition, the crate-wide policy.
//!
//! Telemetry state (counters, histograms, progress snapshots, phase
//! profiles) is updated in self-contained critical sections: a panicking
//! observer leaves the structure it was touching fully inserted or not at
//! all, so the poison flag carries no information here. Recovering the
//! guard instead of unwrapping lets the *first real failure* surface,
//! rather than a `PoisonError` cascade from every thread that reports
//! telemetry afterwards — the same policy the campaign runner applies to
//! its shared caches.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex, recovering the data from a poisoned lock.
pub(crate) fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks an `RwLock`, recovering the data from a poisoned lock.
pub(crate) fn read_clean<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks an `RwLock`, recovering the data from a poisoned lock.
pub(crate) fn write_clean<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn poisoned_locks_are_recovered_not_propagated() {
        let m = Arc::new(Mutex::new(7u32));
        let r = Arc::new(RwLock::new(11u32));
        let (mc, rc) = (m.clone(), r.clone());
        let _ = std::thread::spawn(move || {
            let _g = mc.lock().unwrap();
            let _h = rc.write().unwrap();
            panic!("poison both locks");
        })
        .join();
        assert!(m.is_poisoned());
        assert!(r.is_poisoned());
        assert_eq!(*lock_clean(&m), 7);
        assert_eq!(*read_clean(&r), 11);
        *write_clean(&r) += 1;
        assert_eq!(*read_clean(&r), 12);
    }
}
