//! The pipeline event vocabulary.
//!
//! Events are emitted by the hardware model at *modeled-cycle* timestamps,
//! not wall-clock time: a span starting at cycle 120 for 40 cycles means the
//! modeled accelerator occupied that stage for cycles 120..160. This keeps
//! traces deterministic and lets the trace-sum invariant (span durations add
//! up exactly to the `RunReport` stage totals) hold bit-for-bit.

use serde::{Deserialize, Error, Serialize, Value};

/// One stage of the three-stage streaming pipeline (decompression is a
/// sub-span of compute: the decode prefix of the MACC engine's occupancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// DDR burst reads of the encoded partition streams.
    MemRead,
    /// MACC engine occupancy (includes the decompression prefix).
    Compute,
    /// Format-decode prefix of the compute span.
    Decompress,
    /// Result vector write-back over the shared bus.
    WriteBack,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 4] = [
        Stage::MemRead,
        Stage::Compute,
        Stage::Decompress,
        Stage::WriteBack,
    ];

    /// Stable snake_case label used in traces, metrics and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Stage::MemRead => "mem_read",
            Stage::Compute => "compute",
            Stage::Decompress => "decompress",
            Stage::WriteBack => "write_back",
        }
    }

    /// Inverse of [`Stage::label`].
    pub fn from_label(label: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.label() == label)
    }
}

impl Serialize for Stage {
    fn serialize(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl Deserialize for Stage {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("Stage: expected string"))?;
        Stage::from_label(s).ok_or_else(|| Error::custom(format!("Stage: unknown label {s:?}")))
    }
}

/// One telemetry event from the pipeline model.
///
/// All cycle fields are modeled cycles relative to the start of the run
/// (cycle 0 = first burst of the first partition).
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineEvent {
    /// A characterization run began.
    RunStart {
        /// Compression format label (e.g. `"CSR"`).
        format: String,
        /// Number of partitions in the grid.
        partitions: usize,
        /// Partition edge length `p` (each tile is `p x p`).
        partition_size: usize,
    },
    /// A partition entered the pipeline.
    PartitionStart {
        /// Flat partition index, row-major over the grid.
        partition: usize,
        /// Grid row of the tile.
        grid_row: usize,
        /// Grid column of the tile.
        grid_col: usize,
        /// Modeled cycle at which its first memory burst issues.
        cycle: u64,
    },
    /// A pipeline stage was occupied for a span of cycles.
    StageSpan {
        /// Which stage.
        stage: Stage,
        /// Flat partition index the span belongs to.
        partition: usize,
        /// Compute lane for multi-lane runs; `None` on the scalar pipeline.
        lane: Option<usize>,
        /// First modeled cycle of the span.
        start_cycle: u64,
        /// Span length in modeled cycles (may be 0 for empty streams).
        cycles: u64,
    },
    /// Functional verification found a decode that does not reproduce the
    /// dense tile.
    FunctionalMismatch {
        /// Flat partition index that failed.
        partition: usize,
        /// Human-readable mismatch description.
        detail: String,
    },
    /// The run finished.
    RunComplete {
        /// End-to-end modeled cycles, matching `RunReport::total_cycles`.
        total_cycles: u64,
    },
}

impl PipelineEvent {
    /// The modeled cycle this event is anchored at: span start for stage
    /// spans, the recorded cycle for partition starts and run completions,
    /// and 0 for run starts and functional mismatches (both are emitted
    /// outside the modeled timeline).
    pub fn cycle(&self) -> u64 {
        match self {
            PipelineEvent::RunStart { .. } | PipelineEvent::FunctionalMismatch { .. } => 0,
            PipelineEvent::PartitionStart { cycle, .. } => *cycle,
            PipelineEvent::StageSpan { start_cycle, .. } => *start_cycle,
            PipelineEvent::RunComplete { total_cycles } => *total_cycles,
        }
    }

    /// Stable snake_case tag used as the `"type"` field in JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            PipelineEvent::RunStart { .. } => "run_start",
            PipelineEvent::PartitionStart { .. } => "partition_start",
            PipelineEvent::StageSpan { .. } => "stage_span",
            PipelineEvent::FunctionalMismatch { .. } => "functional_mismatch",
            PipelineEvent::RunComplete { .. } => "run_complete",
        }
    }
}

// The serde stand-in's derive handles named-field structs and unit enums
// only, so the event enum (struct variants) gets explicit impls. The JSON
// shape is an internally tagged map: {"type": "...", ...fields}.
impl Serialize for PipelineEvent {
    fn serialize(&self) -> Value {
        let mut m: Vec<(String, Value)> =
            vec![("type".to_string(), Value::Str(self.kind().to_string()))];
        let mut put = |k: &str, v: Value| m.push((k.to_string(), v));
        match self {
            PipelineEvent::RunStart {
                format,
                partitions,
                partition_size,
            } => {
                put("format", format.serialize());
                put("partitions", partitions.serialize());
                put("partition_size", partition_size.serialize());
            }
            PipelineEvent::PartitionStart {
                partition,
                grid_row,
                grid_col,
                cycle,
            } => {
                put("partition", partition.serialize());
                put("grid_row", grid_row.serialize());
                put("grid_col", grid_col.serialize());
                put("cycle", cycle.serialize());
            }
            PipelineEvent::StageSpan {
                stage,
                partition,
                lane,
                start_cycle,
                cycles,
            } => {
                put("stage", stage.serialize());
                put("partition", partition.serialize());
                put("lane", lane.serialize());
                put("start_cycle", start_cycle.serialize());
                put("cycles", cycles.serialize());
            }
            PipelineEvent::FunctionalMismatch { partition, detail } => {
                put("partition", partition.serialize());
                put("detail", detail.serialize());
            }
            PipelineEvent::RunComplete { total_cycles } => {
                put("total_cycles", total_cycles.serialize());
            }
        }
        Value::Map(m)
    }
}

impl Deserialize for PipelineEvent {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let kind: String = serde::field(v, "type")?;
        match kind.as_str() {
            "run_start" => Ok(PipelineEvent::RunStart {
                format: serde::field(v, "format")?,
                partitions: serde::field(v, "partitions")?,
                partition_size: serde::field(v, "partition_size")?,
            }),
            "partition_start" => Ok(PipelineEvent::PartitionStart {
                partition: serde::field(v, "partition")?,
                grid_row: serde::field(v, "grid_row")?,
                grid_col: serde::field(v, "grid_col")?,
                cycle: serde::field(v, "cycle")?,
            }),
            "stage_span" => Ok(PipelineEvent::StageSpan {
                stage: serde::field(v, "stage")?,
                partition: serde::field(v, "partition")?,
                lane: serde::field(v, "lane")?,
                start_cycle: serde::field(v, "start_cycle")?,
                cycles: serde::field(v, "cycles")?,
            }),
            "functional_mismatch" => Ok(PipelineEvent::FunctionalMismatch {
                partition: serde::field(v, "partition")?,
                detail: serde::field(v, "detail")?,
            }),
            "run_complete" => Ok(PipelineEvent::RunComplete {
                total_cycles: serde::field(v, "total_cycles")?,
            }),
            other => Err(Error::custom(format!(
                "PipelineEvent: unknown type {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_labels_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_label(s.label()), Some(s));
        }
        assert_eq!(Stage::from_label("bogus"), None);
    }

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            PipelineEvent::RunStart {
                format: "CSR".into(),
                partitions: 4,
                partition_size: 16,
            },
            PipelineEvent::PartitionStart {
                partition: 0,
                grid_row: 0,
                grid_col: 0,
                cycle: 0,
            },
            PipelineEvent::StageSpan {
                stage: Stage::Compute,
                partition: 3,
                lane: Some(2),
                start_cycle: 128,
                cycles: 41,
            },
            PipelineEvent::StageSpan {
                stage: Stage::MemRead,
                partition: 1,
                lane: None,
                start_cycle: 8,
                cycles: 0,
            },
            PipelineEvent::FunctionalMismatch {
                partition: 2,
                detail: "row 5 differs".into(),
            },
            PipelineEvent::RunComplete { total_cycles: 4096 },
        ];
        for e in events {
            let text = serde::json::to_string(&e.serialize());
            let back = PipelineEvent::deserialize(&serde::json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back, e, "{text}");
        }
    }

    #[test]
    fn unknown_type_is_rejected() {
        let v = serde::json::from_str(r#"{"type":"nope"}"#).unwrap();
        assert!(PipelineEvent::deserialize(&v).is_err());
    }
}
