//! Live campaign progress: one shared counter set, a heartbeat thread, and
//! two projections of the same stream — a TTY-aware stderr status line and
//! an append-only machine-readable `progress.jsonl`.
//!
//! The reporter is the single progress code path: campaign workers call
//! [`ProgressReporter::cell_done`] / [`record_retry`]
//! (ProgressReporter::record_retry) / [`record_failure`]
//! (ProgressReporter::record_failure) on shared atomics (no locks on the
//! worker path), and a background heartbeat thread periodically renders a
//! snapshot — cells done/total, rate, ETA, retries, failures. Everything
//! here is wall-clock and lives outside the byte-identical artifact
//! contract: `progress.jsonl` is excluded from determinism diffs, and the
//! deterministic artifacts (metrics.tsv, traces, measurements) never read
//! from the reporter.
//!
//! The JSONL file is truncated when the reporter opens it and appended to
//! line-by-line while the run progresses (safe to `tail -f`); within a run
//! `done` is monotone non-decreasing — retries and failures never decrement
//! it — and a resumed run starts a fresh file whose cells re-tick as cache
//! hits, so every file on disk is monotone from 0 to its final line.

use crate::locks::lock_clean;
use serde::Value;
use std::io::{IsTerminal, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where the stderr status line goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StderrMode {
    /// No stderr output (the JSONL stream may still be active).
    Off,
    /// Interactive: a single in-place line, rewritten each heartbeat.
    Tty,
    /// Non-interactive but forced: one full line per heartbeat.
    Plain,
}

impl StderrMode {
    /// The mode a `--progress`-style flag should resolve to: in-place when
    /// stderr is a terminal, full lines when `force` asks for output
    /// anyway, otherwise off (logs stay clean under redirection).
    pub fn auto(enabled: bool, force: bool) -> Self {
        if !enabled && !force {
            StderrMode::Off
        } else if std::io::stderr().is_terminal() {
            StderrMode::Tty
        } else if force {
            StderrMode::Plain
        } else {
            StderrMode::Off
        }
    }
}

/// One observation of the campaign's progress counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Cells delivered so far (computed, memoized or resumed).
    pub done: u64,
    /// Cells the campaigns have promised in total.
    pub total: u64,
    /// Subset of `done` that were cache/memo replays.
    pub cached: u64,
    /// Retry attempts observed so far.
    pub retries: u64,
    /// Cells that failed permanently so far.
    pub failures: u64,
    /// Seconds since the reporter started.
    pub elapsed_secs: f64,
}

impl ProgressSnapshot {
    /// Cells per second since start (0 before the first cell).
    pub fn rate(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.done as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Estimated seconds to completion (`None` before the rate exists or
    /// once done).
    pub fn eta_secs(&self) -> Option<f64> {
        let remaining = self.total.saturating_sub(self.done);
        let rate = self.rate();
        if remaining == 0 || rate <= 0.0 {
            None
        } else {
            Some(remaining as f64 / rate)
        }
    }

    fn to_value(&self, fin: bool) -> Value {
        Value::Map(vec![
            ("done".to_string(), Value::UInt(self.done)),
            ("total".to_string(), Value::UInt(self.total)),
            ("cached".to_string(), Value::UInt(self.cached)),
            ("retries".to_string(), Value::UInt(self.retries)),
            ("failures".to_string(), Value::UInt(self.failures)),
            ("elapsed_secs".to_string(), Value::Float(self.elapsed_secs)),
            ("rate_cells_per_sec".to_string(), Value::Float(self.rate())),
            (
                "eta_secs".to_string(),
                match self.eta_secs() {
                    Some(eta) => Value::Float(eta),
                    None => Value::Null,
                },
            ),
            ("final".to_string(), Value::Bool(fin)),
        ])
    }

    fn render_line(&self) -> String {
        let eta = match self.eta_secs() {
            Some(eta) => format!(" eta {eta:.0}s"),
            None => String::new(),
        };
        let mut tail = String::new();
        if self.retries > 0 {
            tail.push_str(&format!(" retries {}", self.retries));
        }
        if self.failures > 0 {
            tail.push_str(&format!(" failures {}", self.failures));
        }
        format!(
            "[{}/{}] {:.1} cells/s{eta} ({} cached){tail}",
            self.done,
            self.total,
            self.rate(),
            self.cached,
        )
    }
}

#[derive(Debug)]
struct ProgressState {
    done: AtomicU64,
    total: AtomicU64,
    cached: AtomicU64,
    retries: AtomicU64,
    failures: AtomicU64,
    start: Instant,
    stderr: StderrMode,
    /// The JSONL writer plus the last `done` written, so quiet heartbeats
    /// do not spam duplicate lines.
    jsonl: Option<Mutex<(std::io::BufWriter<std::fs::File>, Option<u64>)>>,
    /// `(stopped, _)` guarded handshake for prompt heartbeat shutdown.
    shutdown: Mutex<bool>,
    wake: Condvar,
}

impl ProgressState {
    fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            done: self.done.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
            cached: self.cached.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            elapsed_secs: self.start.elapsed().as_secs_f64(),
        }
    }

    fn emit(&self, fin: bool) {
        let snap = self.snapshot();
        if let Some(jsonl) = &self.jsonl {
            let mut guard = lock_clean(jsonl);
            // Heartbeats only append when progress moved; the final line is
            // always written so every file ends with `"final": true`.
            if fin || guard.1 != Some(snap.done) {
                let line = serde::json::to_string(&snap.to_value(fin));
                let (writer, last) = &mut *guard;
                if writeln!(writer, "{line}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    // Losing the stream costs observability, not the run.
                } else {
                    *last = Some(snap.done);
                }
            }
        }
        match self.stderr {
            StderrMode::Off => {}
            StderrMode::Tty => {
                let mut err = std::io::stderr().lock();
                let _ = write!(err, "\r\x1b[2K{}", snap.render_line());
                if fin {
                    let _ = writeln!(err);
                }
                let _ = err.flush();
            }
            StderrMode::Plain => {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{}", snap.render_line());
            }
        }
    }
}

/// The live progress stream for one process run. See the [module
/// docs](self).
#[derive(Debug)]
pub struct ProgressReporter {
    state: Arc<ProgressState>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

impl ProgressReporter {
    /// Builds a reporter and starts its heartbeat thread (every
    /// `interval`). `jsonl_path`, when given, is truncated and then
    /// appended to for the life of the reporter; an unopenable path
    /// disables the stream with a warning.
    pub fn new(stderr: StderrMode, jsonl_path: Option<&Path>, interval: Duration) -> Self {
        let jsonl = jsonl_path.and_then(|path| match std::fs::File::create(path) {
            Ok(f) => Some(Mutex::new((std::io::BufWriter::new(f), None))),
            Err(e) => {
                eprintln!("warning: could not open {}: {e}", path.display());
                None
            }
        });
        let state = Arc::new(ProgressState {
            done: AtomicU64::new(0),
            total: AtomicU64::new(0),
            cached: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            start: Instant::now(),
            stderr,
            jsonl,
            shutdown: Mutex::new(false),
            wake: Condvar::new(),
        });
        let heartbeat = if state.stderr != StderrMode::Off || state.jsonl.is_some() {
            let beat = Arc::clone(&state);
            Some(std::thread::spawn(move || loop {
                let stopped = {
                    let guard = lock_clean(&beat.shutdown);
                    let (guard, _) = beat
                        .wake
                        .wait_timeout(guard, interval)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *guard
                };
                if stopped {
                    break;
                }
                beat.emit(false);
            }))
        } else {
            None
        };
        ProgressReporter { state, heartbeat }
    }

    /// A reporter with no outputs at all — counters still accumulate, so
    /// library callers can poll [`snapshot`](ProgressReporter::snapshot).
    pub fn disabled() -> Self {
        Self::new(StderrMode::Off, None, Duration::from_secs(3600))
    }

    /// Announces `cells` more cells to come (campaigns call this once each;
    /// `repro_all`'s figures accumulate into one total).
    pub fn add_total(&self, cells: u64) {
        self.state.total.fetch_add(cells, Ordering::Relaxed);
    }

    /// Marks one cell delivered; `cached` tags memo/resume replays.
    pub fn cell_done(&self, cached: bool) {
        if cached {
            self.state.cached.fetch_add(1, Ordering::Relaxed);
        }
        self.state.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one retry attempt.
    pub fn record_retry(&self) {
        self.state.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one permanently failed cell.
    pub fn record_failure(&self) {
        self.state.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// The current counters.
    pub fn snapshot(&self) -> ProgressSnapshot {
        self.state.snapshot()
    }

    /// Stops the heartbeat and writes the final line to every output.
    /// Dropping the reporter does the same; `finish` just does it at a
    /// chosen point.
    pub fn finish(&mut self) {
        let Some(handle) = self.heartbeat.take() else {
            return;
        };
        *lock_clean(&self.state.shutdown) = true;
        self.state.wake.notify_all();
        let _ = handle.join();
        self.state.emit(true);
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copernicus-progress-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = ProgressReporter::disabled();
        r.add_total(10);
        r.cell_done(false);
        r.cell_done(true);
        r.record_retry();
        r.record_failure();
        let s = r.snapshot();
        assert_eq!((s.done, s.total, s.cached), (2, 10, 1));
        assert_eq!((s.retries, s.failures), (1, 1));
        assert!(s.rate() >= 0.0);
        assert!(s.eta_secs().is_none() || s.eta_secs().unwrap() > 0.0);
    }

    #[test]
    fn jsonl_lines_are_valid_json_and_monotone() {
        let dir = scratch("jsonl");
        let path = dir.join("progress.jsonl");
        {
            let mut r =
                ProgressReporter::new(StderrMode::Off, Some(&path), Duration::from_millis(5));
            r.add_total(50);
            for i in 0..50 {
                r.cell_done(i % 3 == 0);
                if i == 20 {
                    r.record_retry();
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            r.finish();
        }
        let text = std::fs::read_to_string(&path).expect("progress.jsonl written");
        let mut last_done = 0u64;
        let mut lines = 0usize;
        for line in text.lines() {
            let v = serde::json::parse(line).expect("valid JSON line");
            let done = v.get("done").and_then(Value::as_u64).expect("done field");
            assert!(
                done >= last_done,
                "done must be monotone: {done} < {last_done}"
            );
            last_done = done;
            lines += 1;
        }
        assert!(lines >= 2, "heartbeat plus final line");
        let last = serde::json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(last.get("final"), Some(&Value::Bool(true)));
        assert_eq!(last.get("done").and_then(Value::as_u64), Some(50));
        assert_eq!(last.get("total").and_then(Value::as_u64), Some(50));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_is_idempotent_and_drop_safe() {
        let dir = scratch("finish");
        let path = dir.join("p.jsonl");
        let mut r = ProgressReporter::new(StderrMode::Off, Some(&path), Duration::from_secs(3600));
        r.add_total(1);
        r.cell_done(false);
        r.finish();
        r.finish();
        drop(r);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "exactly one final line");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stderr_mode_auto_respects_force_and_tty() {
        // In a test harness stderr is not a terminal.
        assert_eq!(StderrMode::auto(false, false), StderrMode::Off);
        let forced = StderrMode::auto(true, true);
        assert!(forced == StderrMode::Plain || forced == StderrMode::Tty);
        let plain = StderrMode::auto(true, false);
        assert!(plain == StderrMode::Off || plain == StderrMode::Tty);
    }
}
