//! Property tests for the metrics registry's export determinism.
//!
//! The campaign runner records observations from the coordinator thread in
//! grid order, but nothing in the registry's contract *requires* a single
//! writer: exports must come out byte-identical however the observations
//! were interleaved. These tests pin that down with exactly-representable
//! values (small integers), so floating-point sums are exact regardless of
//! accumulation order and `to_tsv` can be compared as bytes.

use copernicus_telemetry::MetricsRegistry;
use proptest::prelude::*;

/// One synthetic observation stream: metric index and small-integer value.
fn observations() -> impl Strategy<Value = Vec<(u8, i32)>> {
    proptest::collection::vec((0u8..4, 1i32..=1000), 0..120)
}

const METRICS: [&str; 4] = ["alpha", "beta.cycles", "gamma", "delta.bytes"];

fn registry_from(obs: &[(u8, i32)]) -> MetricsRegistry {
    let metrics = MetricsRegistry::new();
    for &(idx, value) in obs {
        metrics.observe(METRICS[idx as usize], value as f64);
        metrics.incr(METRICS[idx as usize], value as u64);
    }
    metrics
}

proptest! {
    #[test]
    fn export_is_independent_of_observation_order(obs in observations()) {
        let forward = registry_from(&obs);
        let mut reversed_obs = obs.clone();
        reversed_obs.reverse();
        let reversed = registry_from(&reversed_obs);
        prop_assert_eq!(forward.to_tsv(), reversed.to_tsv());
        prop_assert_eq!(forward.to_json(), reversed.to_json());
    }

    #[test]
    fn export_is_independent_of_writer_interleaving(obs in observations()) {
        let sequential = registry_from(&obs);
        let concurrent = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for worker in 0..4usize {
                let concurrent = &concurrent;
                let obs = &obs;
                scope.spawn(move || {
                    // Round-robin sharding: four writers race on the same
                    // registry, each with a disjoint slice of the stream.
                    for (idx, value) in obs.iter().skip(worker).step_by(4) {
                        concurrent.observe(METRICS[*idx as usize], *value as f64);
                        concurrent.incr(METRICS[*idx as usize], *value as u64);
                    }
                });
            }
        });
        prop_assert_eq!(sequential.to_tsv(), concurrent.to_tsv());
        prop_assert_eq!(sequential.to_json(), concurrent.to_json());
    }
}
