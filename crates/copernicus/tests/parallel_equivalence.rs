//! Property tests of the campaign runner's defining guarantee: for any
//! grid and any job count, the parallel path is indistinguishable — rows,
//! bytes and trace events — from the sequential reference.

use copernicus::{characterize, CampaignRunner, ExperimentConfig, Instruments};
use copernicus_telemetry::{RecordingSink, Stage};
use copernicus_workloads::Workload;
use proptest::prelude::*;
use sparsemat::FormatKind;

/// Strategy: one small synthetic workload.
fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        (24usize..64, 1u32..=10).prop_map(|(n, d)| Workload::Random {
            n,
            density: f64::from(d) / 100.0,
        }),
        (24usize..64, 1usize..6).prop_map(|(n, width)| Workload::Band { n, width }),
    ]
}

/// Strategy: a non-empty format slate drawn from the characterized set.
fn formats_strategy() -> impl Strategy<Value = Vec<FormatKind>> {
    prop_oneof![
        Just(vec![FormatKind::Csr]),
        Just(vec![FormatKind::Csr, FormatKind::Coo]),
        Just(vec![FormatKind::Dense, FormatKind::Csc, FormatKind::Lil]),
        Just(vec![FormatKind::Bcsr, FormatKind::Dia]),
    ]
}

/// Strategy: partition sizes for the grid.
fn sizes_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        Just(vec![8]),
        Just(vec![16]),
        Just(vec![8, 16]),
        Just(vec![16, 32]),
    ]
}

fn jobs_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2usize), Just(4usize)]
}

fn json_bytes(ms: &[copernicus::Measurement]) -> String {
    serde::json::to_string(&serde::Serialize::serialize(&ms.to_vec()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn runner_matches_sequential_reference(
        workloads in proptest::collection::vec(workload_strategy(), 1..=3),
        formats in formats_strategy(),
        sizes in sizes_strategy(),
        jobs in jobs_strategy(),
    ) {
        let cfg = ExperimentConfig::quick();
        let reference = characterize(&workloads, &formats, &sizes, &cfg).unwrap();
        let parallel = CampaignRunner::new(jobs)
            .characterize_with(&workloads, &formats, &sizes, &cfg, &mut Instruments::none())
            .unwrap();
        prop_assert_eq!(&reference, &parallel, "rows diverged at jobs={}", jobs);
        prop_assert_eq!(
            json_bytes(&reference),
            json_bytes(&parallel),
            "serialized bytes diverged at jobs={}",
            jobs
        );
    }

    #[test]
    fn traced_parallel_runs_keep_the_span_sum_invariant(
        workloads in proptest::collection::vec(workload_strategy(), 1..=2),
        formats in formats_strategy(),
        sizes in sizes_strategy(),
        jobs in jobs_strategy(),
    ) {
        let cfg = ExperimentConfig::quick();

        let mut seq_sink = RecordingSink::new();
        let mut seq_instruments = Instruments::none().with_sink(&mut seq_sink);
        let seq = CampaignRunner::sequential()
            .characterize_with(&workloads, &formats, &sizes, &cfg, &mut seq_instruments)
            .unwrap();

        let mut par_sink = RecordingSink::new();
        let mut par_instruments = Instruments::none().with_sink(&mut par_sink);
        let par = CampaignRunner::new(jobs)
            .characterize_with(&workloads, &formats, &sizes, &cfg, &mut par_instruments)
            .unwrap();
        prop_assert_eq!(&seq, &par);

        // Every run is announced and completed, and the recorded stage
        // spans account exactly for the summed report totals.
        prop_assert_eq!(par_sink.count("run_start"), par.len());
        prop_assert_eq!(par_sink.count("run_complete"), par.len());
        let totals = |f: fn(&copernicus_hls::RunReport) -> u64| -> u64 {
            par.iter().map(|m| f(&m.report)).sum()
        };
        prop_assert_eq!(par_sink.stage_cycles(Stage::MemRead), totals(|r| r.total_mem_cycles));
        prop_assert_eq!(par_sink.stage_cycles(Stage::Compute), totals(|r| r.total_compute_cycles));
        prop_assert_eq!(par_sink.stage_cycles(Stage::Decompress), totals(|r| r.total_decomp_cycles));
        prop_assert_eq!(
            par_sink.stage_cycles(Stage::WriteBack),
            totals(|r| r.total_writeback_cycles)
        );

        // And the event stream itself replays in grid order, byte for byte.
        prop_assert_eq!(seq_sink.into_events(), par_sink.into_events());
    }
}
