//! Terminal plotting for the figure binaries: horizontal bar charts for
//! the σ/utilization figures and a scatter grid for the Fig.-8 balance
//! plot, so `--chart` renders a readable approximation of each paper
//! figure directly in the terminal.

/// A horizontal bar chart: labeled rows scaled to a common axis.
///
/// ```
/// use copernicus::plot::BarChart;
///
/// let mut c = BarChart::new("sigma", 20);
/// c.bar("CSR", 1.5);
/// c.bar("CSC", 3.0);
/// let s = c.render();
/// assert!(s.contains("CSR"));
/// assert!(s.contains('█'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    bars: Vec<(String, f64)>,
    reference: Option<f64>,
}

impl BarChart {
    /// Creates a chart with the given title and maximum bar width in
    /// characters.
    pub fn new(title: &str, width: usize) -> Self {
        BarChart {
            title: title.to_string(),
            width: width.max(1),
            bars: Vec::new(),
            reference: None,
        }
    }

    /// Appends one labeled bar.
    pub fn bar(&mut self, label: &str, value: f64) -> &mut Self {
        self.bars.push((label.to_string(), value));
        self
    }

    /// Draws a vertical reference line at `value` (e.g. σ = 1, the dense
    /// baseline).
    pub fn reference(&mut self, value: f64) -> &mut Self {
        self.reference = Some(value);
        self
    }

    /// Number of bars added so far.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// Whether no bars were added.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }

    /// Renders the chart. Bars scale to the largest value (and the
    /// reference line, if any); non-finite or negative values render as
    /// empty bars.
    pub fn render(&self) -> String {
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .bars
            .iter()
            .map(|&(_, v)| if v.is_finite() { v } else { 0.0 })
            .chain(self.reference)
            .fold(0.0f64, f64::max);
        let mut out = format!("{}\n", self.title);
        let ref_col = self
            .reference
            .filter(|_| max > 0.0)
            .map(|r| ((r / max) * self.width as f64).round() as usize);
        for (label, value) in &self.bars {
            let v = if value.is_finite() && *value > 0.0 {
                *value
            } else {
                0.0
            };
            let filled = if max > 0.0 {
                ((v / max) * self.width as f64).round() as usize
            } else {
                0
            };
            let mut bar: Vec<char> = std::iter::repeat_n('█', filled)
                .chain(std::iter::repeat_n(' ', self.width.saturating_sub(filled)))
                .collect();
            if let Some(rc) = ref_col {
                let rc = rc.min(self.width.saturating_sub(1));
                if bar[rc] == ' ' {
                    bar[rc] = '|';
                } else {
                    bar[rc] = '▌';
                }
            }
            let bar: String = bar.into_iter().collect();
            out.push_str(&format!("{label:<label_w$} {bar} {value:.3}\n"));
        }
        out
    }
}

/// A character-cell scatter plot on log-log or linear axes — used for the
/// Fig.-8 memory-vs-compute balance plot, where the diagonal is the
/// perfect-balance line.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    title: String,
    cols: usize,
    rows: usize,
    log: bool,
    points: Vec<(f64, f64, char)>,
}

impl ScatterPlot {
    /// Creates a scatter plot with the given character-grid size.
    pub fn new(title: &str, cols: usize, rows: usize, log: bool) -> Self {
        ScatterPlot {
            title: title.to_string(),
            cols: cols.max(2),
            rows: rows.max(2),
            log,
            points: Vec::new(),
        }
    }

    /// Adds a point drawn with the given glyph (e.g. the format's initial).
    pub fn point(&mut self, x: f64, y: f64, glyph: char) -> &mut Self {
        if x.is_finite() && y.is_finite() && (!self.log || (x > 0.0 && y > 0.0)) {
            self.points.push((x, y, glyph));
        }
        self
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points were retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn transform(&self, v: f64) -> f64 {
        if self.log {
            v.ln()
        } else {
            v
        }
    }

    /// Renders the grid with a `·` diagonal marking `y = x` (the balance
    /// line) and later points overwriting earlier ones per cell.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        if self.points.is_empty() {
            out.push_str("(no points)\n");
            return out;
        }
        let xs: Vec<f64> = self
            .points
            .iter()
            .map(|&(x, _, _)| self.transform(x))
            .collect();
        let ys: Vec<f64> = self
            .points
            .iter()
            .map(|&(_, y, _)| self.transform(y))
            .collect();
        // Shared bounds so the y = x diagonal is meaningful.
        let lo = xs.iter().chain(&ys).copied().fold(f64::INFINITY, f64::min);
        let hi = xs
            .iter()
            .chain(&ys)
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);
        let mut grid = vec![vec![' '; self.cols]; self.rows];
        // Balance diagonal.
        #[allow(clippy::needless_range_loop)] // the target row is computed per column
        for c in 0..self.cols {
            let r = ((c as f64 / (self.cols - 1) as f64) * (self.rows - 1) as f64).round() as usize;
            grid[self.rows - 1 - r][c] = '·';
        }
        for (i, &(_, _, glyph)) in self.points.iter().enumerate() {
            let cx = (((xs[i] - lo) / span) * (self.cols - 1) as f64).round() as usize;
            let cy = (((ys[i] - lo) / span) * (self.rows - 1) as f64).round() as usize;
            grid[self.rows - 1 - cy][cx] = glyph;
        }
        for row in grid {
            out.push_str(&row.into_iter().collect::<String>());
            out.push('\n');
        }
        out.push_str("x: memory →, y: compute ↑, ·: balance line\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_the_maximum() {
        let mut c = BarChart::new("t", 10);
        c.bar("a", 5.0).bar("b", 10.0);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        let count = |l: &str| l.chars().filter(|&ch| ch == '█').count();
        assert_eq!(count(lines[1]), 5);
        assert_eq!(count(lines[2]), 10);
    }

    #[test]
    fn reference_line_is_drawn() {
        let mut c = BarChart::new("sigma", 20);
        c.bar("CSC", 4.0).reference(1.0);
        let s = c.render();
        // The reference sits at 1/4 of the bar, inside the filled region.
        assert!(s.contains('▌'), "{s}");
    }

    #[test]
    fn degenerate_values_do_not_panic() {
        let mut c = BarChart::new("t", 8);
        c.bar("nan", f64::NAN).bar("neg", -3.0).bar("zero", 0.0);
        let s = c.render();
        assert!(!s.contains('█'));
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn scatter_places_points_and_diagonal() {
        let mut p = ScatterPlot::new("balance", 20, 10, false);
        p.point(1.0, 1.0, 'A').point(10.0, 2.0, 'B');
        let s = p.render();
        assert!(s.contains('A'));
        assert!(s.contains('B'));
        assert!(s.contains('·'));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn log_scatter_drops_nonpositive_points() {
        let mut p = ScatterPlot::new("t", 10, 5, true);
        p.point(0.0, 1.0, 'X')
            .point(1.0, f64::NAN, 'Y')
            .point(2.0, 3.0, 'Z');
        assert_eq!(p.len(), 1);
        assert!(p.render().contains('Z'));
    }

    #[test]
    fn empty_scatter_renders_placeholder() {
        let p = ScatterPlot::new("t", 10, 5, false);
        assert!(p.is_empty());
        assert!(p.render().contains("(no points)"));
    }
}
