//! Fig. 11 — memory-bandwidth utilization on band matrices as the width
//! sweeps from 1 to 64, partition size 16.

use crate::measure::ExperimentConfig;
use crate::table::{f3, TextTable};
use crate::CampaignError;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

/// One bar of Fig. 11.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig11Row {
    /// Band width `k`.
    pub width: usize,
    /// Format.
    pub format: FormatKind,
    /// Useful bytes over all transferred bytes.
    pub bandwidth_utilization: f64,
}

/// Runs Fig. 11 at partition size 16 over the width sweep.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Fig11Row>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig11Row>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig11Row>, CampaignError> {
    let workloads = Workload::paper_band_sweep(cfg.sweep_dim);
    let ms = runner.characterize_with(
        &workloads,
        &super::FIGURE_FORMATS,
        &[super::DEFAULT_PARTITION],
        cfg,
        instruments,
    )?;
    Ok(workloads
        .iter()
        .zip(ms.chunks(super::FIGURE_FORMATS.len()))
        .flat_map(|(w, chunk)| {
            let width = match w {
                Workload::Band { width, .. } => *width,
                _ => unreachable!("band sweep only yields band workloads"),
            };
            chunk.iter().map(move |m| Fig11Row {
                width,
                format: m.format,
                bandwidth_utilization: m.bandwidth_utilization(),
            })
        })
        .collect())
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(
        cfg,
        &Workload::paper_band_sweep(cfg.sweep_dim),
        &super::FIGURE_FORMATS,
        &[super::DEFAULT_PARTITION],
    )
    .with_note("figure=fig11")
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig11Row]) -> String {
    let mut t = TextTable::new(&["width", "format", "bw_utilization"]);
    for r in rows {
        t.row(&[
            r.width.to_string(),
            r.format.to_string(),
            f3(r.bandwidth_utilization),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig11Row> {
        run(&ExperimentConfig::quick()).unwrap()
    }

    fn util(rows: &[Fig11Row], f: FormatKind, w: usize) -> f64 {
        rows.iter()
            .find(|r| r.format == f && r.width == w)
            .unwrap()
            .bandwidth_utilization
    }

    #[test]
    fn dia_is_near_perfect_for_the_pure_diagonal() {
        // §6.3: "the memory bandwidth utilization of DIA for diagonal
        // matrices is close to one — the slight difference occurs because of
        // saving the diagonal number."
        let u = util(&rows(), FormatKind::Dia, 1);
        assert!(u > 0.9 && u < 1.0, "DIA diagonal utilization {u}");
    }

    #[test]
    fn dia_loses_its_edge_on_wider_bands() {
        // §6.3: "for other band matrices, we see that the DIA format does
        // not offer better memory bandwidth compared to more generic formats
        // such as COO, ELL, or LIL."
        let rows = rows();
        let dia = util(&rows, FormatKind::Dia, 64);
        let generic = [FormatKind::Coo, FormatKind::Ell, FormatKind::Lil]
            .iter()
            .map(|&f| util(&rows, f, 64))
            .fold(0.0, f64::max);
        assert!(dia <= generic + 0.15, "DIA {dia} vs best generic {generic}");
    }

    #[test]
    fn coo_stays_one_third_across_widths() {
        for r in rows().iter().filter(|r| r.format == FormatKind::Coo) {
            assert!((r.bandwidth_utilization - 1.0 / 3.0).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn ell_and_lil_approach_one_half_on_full_bands() {
        // Both stream one index per value, so a fully dense band caps them
        // near 0.5.
        let rows = rows();
        for f in [FormatKind::Ell, FormatKind::Lil] {
            let u = util(&rows, f, 64);
            assert!(u > 0.3 && u <= 0.5, "{f}: {u}");
        }
    }
}
