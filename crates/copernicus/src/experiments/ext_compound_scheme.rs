//! Beyond-paper extension: compound compression schemes. The paper's
//! formats are *structural* compressors — they drop zeros but ship their
//! index/value streams verbatim. This experiment stacks a second-stage
//! stream codec (RLE, delta+varint, canonical Huffman) on top of each
//! format and asks the paper's own question one level up: when does a
//! cheap-to-decode format (plain ELL) beat an aggressively compressed one
//! (CSR + delta-varint) once the entropy decoder's cycles are charged to
//! the pipeline?

use crate::measure::ExperimentConfig;
use crate::table::{eng, f3, TextTable};
use crate::CampaignError;
use copernicus_hls::CodecKind;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

/// The structural formats compared: the paper's compressed baseline (CSR),
/// the padding-heavy but trivially decodable ELL, and COO as the
/// tuple-stream middle ground.
pub const SCHEME_FORMATS: [FormatKind; 3] = [FormatKind::Csr, FormatKind::Ell, FormatKind::Coo];

/// Every second-stage codec, including `none` (the structural baseline).
pub const SCHEME_CODECS: [CodecKind; 4] = CodecKind::ALL;

/// Partition size for the comparison (the paper's default).
pub const SCHEME_PARTITION: usize = super::DEFAULT_PARTITION;

/// The two scheme workloads: a banded matrix (sorted, small-delta index
/// streams — delta-varint's best case) and a sparse random one.
pub fn scheme_workloads(cfg: &ExperimentConfig) -> [Workload; 2] {
    [
        Workload::Band {
            n: cfg.sweep_dim,
            width: 8,
        },
        Workload::Random {
            n: cfg.sweep_dim,
            density: 0.02,
        },
    ]
}

/// One (workload, codec, format) point of the comparison.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompoundSchemeRow {
    /// Workload label (`w=<width>` or `d=<density>`).
    pub workload: String,
    /// Second-stage stream codec.
    pub codec: CodecKind,
    /// Structural format.
    pub format: FormatKind,
    /// Decompression overhead σ (now includes entropy-decode cycles).
    pub sigma: f64,
    /// Structural bytes (codec-independent).
    pub total_bytes: u64,
    /// Bytes actually transferred after the second stage.
    pub coded_bytes: u64,
    /// Cycles spent in the second-stage decoder.
    pub entropy_cycles: u64,
    /// End-to-end seconds.
    pub total_seconds: f64,
}

/// Runs the compound-scheme comparison.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<CompoundSchemeRow>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached.
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<CompoundSchemeRow>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`. One runner serves all four
/// codec sub-campaigns: the hardware config (codec included) is part of
/// every memo key, so the sub-campaigns never alias each other's cells and
/// the row stream is byte-identical at any job count.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<CompoundSchemeRow>, CampaignError> {
    let mut rows = Vec::new();
    for codec in SCHEME_CODECS {
        let mut cfg_codec = cfg.clone();
        cfg_codec.hw.stream_codec = codec;
        let ms = runner.characterize_with(
            &scheme_workloads(cfg),
            &SCHEME_FORMATS,
            &[SCHEME_PARTITION],
            &cfg_codec,
            instruments,
        )?;
        rows.extend(ms.iter().map(|m| CompoundSchemeRow {
            workload: m.workload.clone(),
            codec,
            format: m.format,
            sigma: m.sigma(),
            total_bytes: m.report.total_bytes,
            coded_bytes: m.report.total_coded_bytes,
            entropy_cycles: m.report.total_entropy_cycles,
            total_seconds: m.total_seconds(),
        }));
    }
    Ok(rows)
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    let mut manifest = crate::manifest_for(
        cfg,
        &scheme_workloads(cfg),
        &SCHEME_FORMATS,
        &[SCHEME_PARTITION],
    )
    .with_note("figure=compound_scheme");
    manifest.notes.push(format!(
        "codecs={}",
        SCHEME_CODECS.map(|c| c.to_string()).join(",")
    ));
    manifest
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[CompoundSchemeRow]) -> String {
    let mut t = TextTable::new(&[
        "workload",
        "codec",
        "format",
        "sigma",
        "bytes",
        "coded",
        "saved",
        "entropy_cyc",
        "time_s",
    ]);
    for r in rows {
        let saved = if r.total_bytes == 0 {
            0.0
        } else {
            (r.total_bytes.saturating_sub(r.coded_bytes)) as f64 / r.total_bytes as f64 * 100.0
        };
        t.row(&[
            r.workload.clone(),
            r.codec.to_string(),
            r.format.to_string(),
            f3(r.sigma),
            eng(r.total_bytes as f64),
            eng(r.coded_bytes as f64),
            format!("{saved:.0}%"),
            eng(r.entropy_cycles as f64),
            format!("{:.6}", r.total_seconds),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;

    fn rows() -> Vec<CompoundSchemeRow> {
        run(&ExperimentConfig::quick()).unwrap()
    }

    fn find(
        rows: &[CompoundSchemeRow],
        band: bool,
        codec: CodecKind,
        format: FormatKind,
    ) -> &CompoundSchemeRow {
        rows.iter()
            .find(|r| {
                r.workload.starts_with(if band { "w=" } else { "d=" })
                    && r.codec == codec
                    && r.format == format
            })
            .unwrap()
    }

    #[test]
    fn covers_every_workload_codec_format_cell() {
        assert_eq!(rows().len(), 2 * SCHEME_CODECS.len() * SCHEME_FORMATS.len());
    }

    #[test]
    fn codec_none_is_the_structural_baseline() {
        for r in rows().iter().filter(|r| r.codec == CodecKind::None) {
            assert_eq!(r.coded_bytes, r.total_bytes, "{r:?}");
            assert_eq!(r.entropy_cycles, 0, "{r:?}");
        }
    }

    #[test]
    fn structural_bytes_are_codec_independent() {
        let rows = rows();
        for base in rows.iter().filter(|r| r.codec == CodecKind::None) {
            for r in rows
                .iter()
                .filter(|r| r.workload == base.workload && r.format == base.format)
            {
                assert_eq!(r.total_bytes, base.total_bytes, "{r:?}");
                assert!(r.coded_bytes <= r.total_bytes, "{r:?}");
            }
        }
    }

    #[test]
    fn delta_varint_compresses_banded_csr_index_streams() {
        // The experiment's headline cell: CSR's sorted small-delta colInx
        // stream on a banded matrix is delta-varint's best case.
        let rows = rows();
        let dv = find(&rows, true, CodecKind::DeltaVarint, FormatKind::Csr);
        assert!(
            dv.coded_bytes < dv.total_bytes,
            "delta-varint should shrink banded CSR: {dv:?}"
        );
        assert!(dv.entropy_cycles > 0, "{dv:?}");
        // And the entropy decoder's cost shows up in σ.
        let none = find(&rows, true, CodecKind::None, FormatKind::Csr);
        assert!(dv.sigma > none.sigma, "{dv:?} vs {none:?}");
    }

    #[test]
    fn plain_ell_never_pays_entropy_cycles_without_a_codec() {
        let rows = rows();
        let ell = find(&rows, true, CodecKind::None, FormatKind::Ell);
        assert_eq!(ell.entropy_cycles, 0);
        // The compound comparison is real: both sides transfer fewer bytes
        // than dense would, but only the codec side pays decoder cycles.
        let dv = find(&rows, true, CodecKind::DeltaVarint, FormatKind::Csr);
        assert!(dv.coded_bytes < ell.total_bytes || dv.entropy_cycles > 0);
    }
}
