//! Table 1 — the SuiteSparse workload registry (with the stand-in family
//! each entry maps to in this reproduction).

use crate::table::TextTable;
use copernicus_workloads::{SuiteMatrix, SUITE};

/// Returns the 20 Table-1 entries in the paper's order.
pub fn run() -> &'static [SuiteMatrix; 20] {
    &SUITE
}

/// Renders Table 1 with the reproduction's generator family appended.
pub fn render() -> String {
    let mut t = TextTable::new(&["ID", "Name", "Dim.(M)", "NNZ(M)", "Kind", "Stand-in"]);
    for m in run() {
        t.row(&[
            m.id.to_string(),
            m.name.to_string(),
            format!("{}", m.dim_millions),
            format!("{}", m.nnz_millions),
            m.kind.to_string(),
            format!("{:?}", m.family),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_twenty_rows() {
        let s = render();
        assert_eq!(s.lines().count(), 22); // header + rule + 20 rows
        for m in run() {
            assert!(s.contains(m.name), "missing {}", m.name);
        }
    }

    #[test]
    fn preserves_paper_order() {
        assert_eq!(run()[0].id, "2C");
        assert_eq!(run()[19].id, "WI");
    }
}
