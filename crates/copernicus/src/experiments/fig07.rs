//! Fig. 7 — average σ of the seven formats for the three workload classes
//! (SuiteSparse, random, band) at partition sizes 8, 16 and 32.

use crate::measure::{ExperimentConfig, Measurement};
use crate::table::{f3, TextTable};
use crate::CampaignError;
use copernicus_workloads::{Workload, WorkloadClass};
use sparsemat::FormatKind;

/// One bar of Fig. 7: a format's mean σ within one class at one partition
/// size.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig07Row {
    /// Workload class.
    pub class: WorkloadClass,
    /// Partition size.
    pub partition_size: usize,
    /// Format.
    pub format: FormatKind,
    /// Mean σ over the class's workloads.
    pub mean_sigma: f64,
}

/// The union of the paper's three workload sweeps, used by Figs. 7, 8, 12
/// and 14.
pub fn all_class_workloads(cfg: &ExperimentConfig) -> Vec<Workload> {
    let mut out = Workload::paper_suite();
    out.extend(Workload::paper_random_sweep(cfg.sweep_dim));
    out.extend(Workload::paper_band_sweep(cfg.sweep_dim));
    out
}

/// Aggregates measurements into Fig.-7 rows.
pub fn aggregate(ms: &[Measurement]) -> Vec<Fig07Row> {
    let mut rows = Vec::new();
    for class in [
        WorkloadClass::SuiteSparse,
        WorkloadClass::Random,
        WorkloadClass::Band,
    ] {
        for &p in &super::FIGURE_PARTITION_SIZES {
            for format in super::FIGURE_FORMATS {
                let sigmas: Vec<f64> = ms
                    .iter()
                    .filter(|m| m.class == class && m.partition_size == p && m.format == format)
                    .map(Measurement::sigma)
                    .collect();
                if sigmas.is_empty() {
                    continue;
                }
                rows.push(Fig07Row {
                    class,
                    partition_size: p,
                    format,
                    mean_sigma: sigmas.iter().sum::<f64>() / sigmas.len() as f64,
                });
            }
        }
    }
    rows
}

/// Runs the full Fig.-7 campaign.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Fig07Row>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig07Row>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig07Row>, CampaignError> {
    let ms = runner.characterize_with(
        &all_class_workloads(cfg),
        &super::FIGURE_FORMATS,
        &super::FIGURE_PARTITION_SIZES,
        cfg,
        instruments,
    )?;
    Ok(aggregate(&ms))
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(
        cfg,
        &all_class_workloads(cfg),
        &super::FIGURE_FORMATS,
        &super::FIGURE_PARTITION_SIZES,
    )
    .with_note("figure=fig07")
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig07Row]) -> String {
    let mut t = TextTable::new(&["class", "p", "format", "mean_sigma"]);
    for r in rows {
        t.row(&[
            r.class.to_string(),
            r.partition_size.to_string(),
            r.format.to_string(),
            f3(r.mean_sigma),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig07Row> {
        aggregate(crate::testsupport::campaign())
    }

    fn mean(rows: &[Fig07Row], class: WorkloadClass, p: usize, f: FormatKind) -> f64 {
        rows.iter()
            .find(|r| r.class == class && r.partition_size == p && r.format == f)
            .unwrap()
            .mean_sigma
    }

    #[test]
    fn covers_classes_sizes_formats() {
        assert_eq!(rows().len(), 3 * 3 * 8);
    }

    #[test]
    fn dense_is_exactly_one_everywhere() {
        for r in rows().iter().filter(|r| r.format == FormatKind::Dense) {
            assert!((r.mean_sigma - 1.0).abs() < 1e-12, "{r:?}");
        }
    }

    #[test]
    fn ell_sigma_decreases_as_partition_size_increases() {
        // §6.1: "the computation latency of ELL decreases as the partition
        // size increases" (relative to dense) because the six-wide squares
        // shrink relative to the partition.
        let rows = rows();
        for class in [WorkloadClass::SuiteSparse, WorkloadClass::Band] {
            let s8 = mean(&rows, class, 8, FormatKind::Ell);
            let s32 = mean(&rows, class, 32, FormatKind::Ell);
            assert!(s32 < s8, "{class}: ELL σ p=8 {s8} vs p=32 {s32}");
        }
    }

    #[test]
    fn csc_is_worst_in_every_class_and_size() {
        let rows = rows();
        for r in &rows {
            if r.format == FormatKind::Csc {
                for other in super::super::FIGURE_FORMATS {
                    let o = mean(&rows, r.class, r.partition_size, other);
                    assert!(r.mean_sigma >= o - 1e-9, "{:?} vs {other}", r);
                }
            }
        }
    }
}
