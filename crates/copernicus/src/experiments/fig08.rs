//! Fig. 8 — the balance ratio: memory latency vs compute latency per
//! format, workload and partition size (marker size in the paper encodes
//! the partition size; points below the diagonal are compute-bound).

use crate::measure::{ExperimentConfig, Measurement};
use crate::table::{f3, TextTable};
use crate::CampaignError;
use copernicus_workloads::WorkloadClass;
use sparsemat::FormatKind;

/// One scatter point of Fig. 8.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig08Row {
    /// Workload class (sub-figure a/b/c).
    pub class: WorkloadClass,
    /// Workload label.
    pub workload: String,
    /// Format.
    pub format: FormatKind,
    /// Partition size (the marker size).
    pub partition_size: usize,
    /// Total memory-read cycles.
    pub mem_cycles: u64,
    /// Total compute cycles.
    pub compute_cycles: u64,
    /// Mean per-partition balance ratio (memory / compute; 1 is perfect).
    pub balance_ratio: f64,
}

impl Fig08Row {
    /// Whether the point sits on the memory-bound side (ratio > 1).
    pub fn is_memory_bound(&self) -> bool {
        self.balance_ratio > 1.0
    }
}

/// Converts a measurement campaign into Fig.-8 scatter points.
pub fn rows_from(ms: &[Measurement]) -> Vec<Fig08Row> {
    ms.iter().map(to_row).collect()
}

fn to_row(m: &Measurement) -> Fig08Row {
    Fig08Row {
        class: m.class,
        workload: m.workload.clone(),
        format: m.format,
        partition_size: m.partition_size,
        mem_cycles: m.mem_cycles(),
        compute_cycles: m.compute_cycles(),
        balance_ratio: m.balance_ratio(),
    }
}

/// Runs the Fig.-8 campaign over all three workload classes.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Fig08Row>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig08Row>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig08Row>, CampaignError> {
    let ms = runner.characterize_with(
        &super::fig07::all_class_workloads(cfg),
        &super::FIGURE_FORMATS,
        &super::FIGURE_PARTITION_SIZES,
        cfg,
        instruments,
    )?;
    Ok(rows_from(&ms))
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(
        cfg,
        &super::fig07::all_class_workloads(cfg),
        &super::FIGURE_FORMATS,
        &super::FIGURE_PARTITION_SIZES,
    )
    .with_note("figure=fig08")
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig08Row]) -> String {
    let mut t = TextTable::new(&[
        "class",
        "workload",
        "format",
        "p",
        "mem_cycles",
        "compute_cycles",
        "balance",
    ]);
    for r in rows {
        t.row(&[
            r.class.to_string(),
            r.workload.clone(),
            r.format.to_string(),
            r.partition_size.to_string(),
            r.mem_cycles.to_string(),
            r.compute_cycles.to_string(),
            f3(r.balance_ratio),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig08Row> {
        crate::testsupport::campaign().iter().map(to_row).collect()
    }

    fn mean_balance(rows: &[Fig08Row], f: FormatKind, p: usize) -> f64 {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.format == f && r.partition_size == p)
            .map(|r| r.balance_ratio)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn dense_drifts_memory_bound_as_partitions_grow() {
        // §6.2: the dense balance ratio "moves toward a memory-bound as
        // partition size increases."
        let rows = rows();
        let b8 = mean_balance(&rows, FormatKind::Dense, 8);
        let b32 = mean_balance(&rows, FormatKind::Dense, 32);
        assert!(b32 > b8, "dense balance p=8 {b8} vs p=32 {b32}");
    }

    #[test]
    fn csc_is_deeply_compute_bound() {
        // CSC's rescans swamp its tiny transfers.
        let rows = rows();
        assert!(mean_balance(&rows, FormatKind::Csc, 16) < 0.3);
    }

    #[test]
    fn dense_balance_exceeds_most_sparse_formats() {
        // §6.2: "for all types of matrices the balance ratio of dense format
        // is higher than most of the sparse formats" — zeros inflate both
        // sides but memory more.
        let rows = rows();
        let dense = mean_balance(&rows, FormatKind::Dense, 16);
        let below = [
            FormatKind::Csr,
            FormatKind::Csc,
            FormatKind::Coo,
            FormatKind::Lil,
            FormatKind::Ell,
            FormatKind::Dia,
        ]
        .iter()
        .filter(|&&f| mean_balance(&rows, f, 16) < dense)
        .count();
        assert!(below >= 4, "only {below} formats below dense balance");
    }

    #[test]
    fn memory_bound_predicate_matches_ratio() {
        for r in rows() {
            assert_eq!(r.is_memory_bound(), r.balance_ratio > 1.0);
        }
    }
}
